//! [`MonitorClient`]: the connection half a monitored system embeds.
//!
//! The client owns a local payload arena ([`MonitorClient::interner`]) —
//! batches are built against it, encoded with a frame-local dictionary, and
//! re-interned into the *server's* arena on decode, so the two sides never
//! share id spaces.  Flow control is credit-based: the server grants a
//! window of events at connect time and re-grants as the engine accepts
//! batches; [`MonitorClient::send_batch`] blocks while the window is
//! exhausted (the remote engine is full), [`MonitorClient::try_send_batch`]
//! reports [`TrySendError::NoCredit`] instead.  A background reader thread
//! processes everything the server pushes: credits update the window,
//! verdicts buffer for [`MonitorClient::poll_verdicts`] /
//! [`MonitorClient::wait_verdicts`], stats replies fill the
//! [`MonitorClient::stats`] slot.

use crate::reactor::FrameAssembler;
use crate::wire::{
    decode_frame, encode_shutdown, encode_stats_request, write_frame, Frame, FrameEncoder,
    NackReason, StatsReply, WireError,
};
use drv_engine::VerdictEvent;
use drv_lang::{EventBatch, ObjectId, SharedInterner, Symbol, TraceContext};
use drv_telemetry::{SpanKind, Telemetry};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a send failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the connection was already torn down).
    Io(io::Error),
    /// The server closed the connection (shutdown frame, EOF, or a decode
    /// failure on our side).
    Closed,
    /// The batch is larger than the server's whole credit window and can
    /// never be sent — split it.
    BatchTooLarge {
        /// Events in the refused batch.
        len: u64,
        /// The server's announced window.
        window: u64,
    },
    /// A protocol-level failure with a typed cause — most notably
    /// [`WireError::Timeout`] when a deadline from [`ClientConfig`]
    /// expired (e.g. a server that accepted the connection but never sent
    /// its opening credit grant).
    Wire(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o: {err}"),
            ClientError::Closed => f.write_str("connection closed"),
            ClientError::BatchTooLarge { len, window } => {
                write!(f, "batch of {len} events exceeds the {window}-event window")
            }
            ClientError::Wire(err) => write!(f, "wire: {err}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

/// Deadlines for [`MonitorClient::connect_with`].  The default has none —
/// identical to [`MonitorClient::connect`] — so every bound is opt-in.
///
/// ```no_run
/// use drv_net::{ClientConfig, MonitorClient};
/// use std::time::Duration;
///
/// let config = ClientConfig::new()
///     .with_connect_timeout(Duration::from_secs(2))
///     .with_handshake_timeout(Duration::from_secs(2));
/// let client = MonitorClient::connect_with("10.0.0.7:4400", config);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientConfig {
    connect_timeout: Option<Duration>,
    handshake_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
}

impl ClientConfig {
    /// No deadlines (the [`MonitorClient::connect`] behaviour).
    #[must_use]
    pub fn new() -> Self {
        ClientConfig::default()
    }

    /// Bounds the TCP connection establishment itself (clamped ≥ 1 ms).
    /// Expiry surfaces as [`ClientError::Io`] with
    /// [`io::ErrorKind::TimedOut`].
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout.max(Duration::from_millis(1)));
        self
    }

    /// Bounds the wait for the server's opening credit grant (clamped
    /// ≥ 1 ms).  A wedged server — one that accepts the socket but never
    /// speaks — previously blocked the first `send_batch` forever; with
    /// this deadline `connect_with` fails up front with
    /// [`ClientError::Wire`]\([`WireError::Timeout`]\).
    #[must_use]
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = Some(timeout.max(Duration::from_millis(1)));
        self
    }

    /// Sets `SO_RCVTIMEO` on the reader socket (clamped ≥ 1 ms): the
    /// background reader wakes at least this often to notice a closed
    /// client instead of blocking in `read` until the peer acts.  Quiet
    /// periods do **not** kill the connection — an idle monitoring stream
    /// is legal — the reader just re-arms the read.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout.max(Duration::from_millis(1)));
        self
    }
}

/// Why a non-blocking send was refused.
#[derive(Debug)]
pub enum TrySendError {
    /// Not enough credit right now (the remote engine is applying
    /// backpressure) — retry after draining verdicts / waiting.
    NoCredit {
        /// Events the batch needs.
        needed: u64,
        /// Credit currently available.
        available: u64,
    },
    /// A hard failure (see [`ClientError`]).
    Fatal(ClientError),
}

impl fmt::Display for TrySendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::NoCredit { needed, available } => {
                write!(f, "insufficient credit: need {needed}, have {available}")
            }
            TrySendError::Fatal(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for TrySendError {}

/// A NACK the server sent (credit overrun or oversized batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nack {
    /// The refused batch.
    pub batch_id: u64,
    /// Why it was refused.
    pub reason: NackReason,
    /// The violated bound, in events.
    pub detail: u64,
}

struct CreditState {
    available: u64,
    /// The server's announced total window; 0 until the first grant.
    window: u64,
}

struct ClientShared {
    credit: Mutex<CreditState>,
    credit_signal: Condvar,
    verdicts: Mutex<VecDeque<VerdictEvent>>,
    verdict_signal: Condvar,
    stats: Mutex<Option<Box<StatsReply>>>,
    stats_signal: Condvar,
    nacks: Mutex<Vec<Nack>>,
    closed: AtomicBool,
    /// Set when the server completed the clean shutdown handshake.
    server_shutdown: AtomicBool,
    arena: SharedInterner,
}

impl ClientShared {
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        {
            let _credit = self.credit.lock();
            self.credit_signal.notify_all();
        }
        {
            let _verdicts = self.verdicts.lock();
            self.verdict_signal.notify_all();
        }
        let _stats = self.stats.lock();
        self.stats_signal.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// The background reader: reassembles frames from whatever chunk sizes the
/// transport delivers ([`FrameAssembler`] — the read path works unchanged
/// against a nonblocking or `SO_RCVTIMEO`-armed socket) and dispatches
/// them into the shared state.
fn reader_loop(shared: &ClientShared, mut stream: TcpStream) {
    let mut assembler = FrameAssembler::new();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        // Drain every complete frame before touching the socket again.
        loop {
            let decoded = match assembler.next_frame() {
                Ok(Some(raw)) => decode_frame(raw, &shared.arena),
                Ok(None) => break,
                Err(err) => Err(err),
            };
            match decoded {
                Ok((Frame::Credit { grant, window }, _)) => {
                    let mut credit = shared.credit.lock();
                    credit.available += grant;
                    credit.window = window;
                    shared.credit_signal.notify_all();
                }
                // Legacy per-verdict frames and run-compressed batches
                // carry the same triples into the same queue — servers may
                // interleave them (e.g. across a config change) without the
                // client caring.
                Ok((Frame::Verdicts(events) | Frame::VerdictBatch(events), _)) => {
                    shared.verdicts.lock().extend(events);
                    shared.verdict_signal.notify_all();
                }
                Ok((Frame::Stats(reply), _)) => {
                    *shared.stats.lock() = Some(reply);
                    shared.stats_signal.notify_all();
                }
                Ok((Frame::Nack { batch_id, reason, detail }, _)) => {
                    shared.nacks.lock().push(Nack { batch_id, reason, detail });
                }
                Ok((Frame::Shutdown, _)) => {
                    shared.server_shutdown.store(true, Ordering::Release);
                    shared.close();
                    return;
                }
                Ok((
                    Frame::Batch(_) | Frame::StatsRequest | Frame::Evict { .. }
                    | Frame::Checkpoint(_),
                    _,
                ))
                | Err(_) => {
                    // Client-bound streams never carry these (the last two
                    // are journal-file record kinds); treat like a broken
                    // connection.
                    shared.close();
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                shared.close();
                return;
            }
            Ok(n) => assembler.feed(&chunk[..n]),
            Err(err)
                if matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // A read deadline (ClientConfig::with_read_timeout) or a
                // nonblocking socket: not an error, just a chance to
                // notice a client-side close.
                if shared.is_closed() {
                    return;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                shared.close();
                return;
            }
        }
    }
}

/// Tracing state a client opts into via [`MonitorClient::enable_tracing`]:
/// the telemetry handle whose tracer selects and records, plus the seed
/// that makes trace-id derivation deterministic per client.
struct ClientTracing {
    tel: Arc<Telemetry>,
    seed: u64,
}

/// A connection to a [`MonitorServer`](crate::MonitorServer).  See the
/// module docs for the credit and verdict flows.
pub struct MonitorClient {
    stream: TcpStream,
    shared: Arc<ClientShared>,
    reader: Option<JoinHandle<()>>,
    encoder: FrameEncoder,
    next_batch_id: u64,
    peer: SocketAddr,
    tracing: Option<ClientTracing>,
}

impl MonitorClient {
    /// Connects to a monitoring server with no deadlines: establishment
    /// and the opening handshake block for as long as the OS lets them.
    /// Use [`MonitorClient::connect_with`] to bound either.
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::new()).map_err(|err| match err {
            ClientError::Io(err) => err,
            other => io::Error::other(other.to_string()),
        })
    }

    /// [`MonitorClient::connect`] with deadlines: bounds connection
    /// establishment, the opening credit handshake, and the background
    /// reader's blocking reads per `config`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure (including a connect
    /// deadline expiring, as [`io::ErrorKind::TimedOut`]);
    /// [`ClientError::Wire`]\([`WireError::Timeout`]\) when the server
    /// accepted the connection but sent no opening credit grant within the
    /// handshake deadline; [`ClientError::Closed`] when the server hung up
    /// mid-handshake.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ClientError> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                // connect_timeout takes one concrete address: try each
                // resolution, keeping the last failure.
                let mut last: Option<io::Error> = None;
                let mut connected: Option<TcpStream> = None;
                for candidate in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&candidate, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(err) => last = Some(err),
                    }
                }
                connected.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                    })
                })?
            }
        };
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        let reader_stream = stream.try_clone()?;
        if let Some(timeout) = config.read_timeout {
            reader_stream.set_read_timeout(Some(timeout))?;
        }
        let shared = Arc::new(ClientShared {
            credit: Mutex::new(CreditState { available: 0, window: 0 }),
            credit_signal: Condvar::new(),
            verdicts: Mutex::new(VecDeque::new()),
            verdict_signal: Condvar::new(),
            stats: Mutex::new(None),
            stats_signal: Condvar::new(),
            nacks: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            server_shutdown: AtomicBool::new(false),
            arena: SharedInterner::new(),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("drv-net-client-reader".to_string())
                .spawn(move || reader_loop(&shared, reader_stream))
                .expect("spawning the client reader")
        };
        let client = MonitorClient {
            stream,
            shared,
            reader: Some(reader),
            encoder: FrameEncoder::new(),
            next_batch_id: 0,
            peer,
            tracing: None,
        };
        if let Some(timeout) = config.handshake_timeout {
            // The server speaks first (the opening Credit announces the
            // window); a peer that accepted but stays silent past the
            // deadline is wedged.  Dropping `client` tears the socket down
            // and reaps the reader.
            let deadline = Instant::now() + timeout;
            let mut credit = client.shared.credit.lock();
            while credit.window == 0 && !client.shared.is_closed() {
                let now = Instant::now();
                if now >= deadline {
                    drop(credit);
                    return Err(ClientError::Wire(WireError::Timeout {
                        millis: u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX),
                    }));
                }
                client.shared.credit_signal.wait_for(&mut credit, deadline - now);
            }
            if credit.window == 0 {
                drop(credit);
                return Err(ClientError::Closed);
            }
        }
        Ok(client)
    }

    /// The server's address.
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// The client-side payload arena: build [`EventBatch`]es against this
    /// (e.g. via [`EventBatch::push_symbol`]) before sending them.  The
    /// handle is a cheap clone sharing the same arena.
    #[must_use]
    pub fn interner(&self) -> SharedInterner {
        self.shared.arena.clone()
    }

    /// `(available, window)` credit in events; `window` is 0 until the
    /// server's first grant arrives.
    #[must_use]
    pub fn credit(&self) -> (u64, u64) {
        let credit = self.shared.credit.lock();
        (credit.available, credit.window)
    }

    /// Whether the connection is down (server shutdown, EOF, or transport
    /// failure).  Buffered verdicts remain pollable.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.is_closed()
    }

    /// NACKs received so far (drained).  A client that only sends within
    /// its credit never receives any.
    #[must_use]
    pub fn take_nacks(&self) -> Vec<Nack> {
        std::mem::take(&mut *self.shared.nacks.lock())
    }

    /// Opts this client into distributed tracing: batches selected by
    /// `telemetry`'s sampler (deterministic 1-in-N by trace-id hash) are
    /// stamped with a 16-byte wire trace context and open a `client-send`
    /// span covering credit wait + encode + socket write.  Trace ids
    /// derive deterministically from `seed` and the batch counter, so two
    /// runs with the same seed sample the same batches.  With a passive
    /// handle — or for the N−1 unsampled batches — the entire path is a
    /// branch and a return, and the wire bytes stay bit-identical to an
    /// untraced client's.
    pub fn enable_tracing(&mut self, telemetry: Arc<Telemetry>, seed: u64) {
        self.tracing = Some(ClientTracing { tel: telemetry, seed });
    }

    /// The trace context for the *next* batch, when tracing is enabled and
    /// the sampler selects it.  One relaxed load and (for the selected
    /// 1-in-N) one hash — nothing else on the unsampled path.
    fn stamp_trace(&self) -> Option<TraceContext> {
        let tracing = self.tracing.as_ref()?;
        let tracer = tracing.tel.tracer();
        if !tracer.enabled() {
            return None;
        }
        // splitmix-style spread so consecutive batch ids land in unrelated
        // sampling residues; `max(1)` keeps 0 free as the tracer's
        // empty-slot sentinel.
        let trace_id = (tracing.seed ^ self.next_batch_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1);
        if !tracer.should_sample(trace_id) {
            return None;
        }
        Some(TraceContext::sampled_root(trace_id))
    }

    /// Opens the client-send span for a stamped batch: `begin` the trace
    /// and return its start timestamp.  Called only on the sampled path.
    fn trace_send_start(&self, ctx: TraceContext) -> u64 {
        let tracing = self.tracing.as_ref().expect("stamped ⇒ tracing enabled");
        let now = tracing.tel.clock().now_ns();
        tracing.tel.tracer().begin(ctx.trace_id, now);
        now
    }

    /// Closes the client-send span right before the frame hits the socket
    /// (so the record happens-before any server-side trace completion).
    fn trace_send_end(&self, ctx: TraceContext, started_ns: u64) {
        let tracing = self.tracing.as_ref().expect("stamped ⇒ tracing enabled");
        let now = tracing.tel.clock().now_ns();
        tracing
            .tel
            .tracer()
            .record(ctx.trace_id, SpanKind::ClientSend, started_ns, now, 0, 0);
    }

    /// Sends one batch, blocking while credit is insufficient (the remote
    /// engine's backpressure).  Returns the batch id.
    ///
    /// # Errors
    ///
    /// [`ClientError::BatchTooLarge`] when the batch exceeds the server's
    /// whole window; [`ClientError::Closed`] when the connection died while
    /// waiting; [`ClientError::Io`] on transport failure.
    pub fn send_batch(&mut self, batch: &EventBatch) -> Result<u64, ClientError> {
        let trace = self.stamp_trace().or_else(|| batch.trace());
        // Span only when this client records (a pre-stamped batch from a
        // span-less caller still propagates its context on the wire).
        let span = match (trace, &self.tracing) {
            (Some(ctx), Some(_)) if ctx.sampled() => Some((ctx, self.trace_send_start(ctx))),
            _ => None,
        };
        let needed = batch.len() as u64;
        if needed > 0 {
            let mut credit = self.shared.credit.lock();
            loop {
                if self.shared.is_closed() {
                    return Err(ClientError::Closed);
                }
                if credit.window > 0 && needed > credit.window {
                    return Err(ClientError::BatchTooLarge { len: needed, window: credit.window });
                }
                if credit.window > 0 && credit.available >= needed {
                    credit.available -= needed;
                    break;
                }
                self.shared
                    .credit_signal
                    .wait_for(&mut credit, Duration::from_millis(20));
            }
        }
        let frame =
            self.encoder
                .encode_batch_traced(self.next_batch_id, batch, &self.shared.arena, trace);
        self.next_batch_id += 1;
        if let Some((ctx, started_ns)) = span {
            // Recorded before the bytes can reach the server, so the span
            // happens-before any server-side completion of this trace.
            self.trace_send_end(ctx, started_ns);
        }
        write_frame(&mut self.stream, &frame)?;
        Ok(self.next_batch_id - 1)
    }

    /// Non-blocking [`MonitorClient::send_batch`].
    ///
    /// # Errors
    ///
    /// [`TrySendError::NoCredit`] while the window cannot absorb the batch
    /// (including before the first grant); [`TrySendError::Fatal`] on the
    /// hard failures of `send_batch`.
    pub fn try_send_batch(&mut self, batch: &EventBatch) -> Result<u64, TrySendError> {
        let trace = self.stamp_trace().or_else(|| batch.trace());
        let span = match (trace, &self.tracing) {
            (Some(ctx), Some(_)) if ctx.sampled() => Some((ctx, self.trace_send_start(ctx))),
            _ => None,
        };
        let needed = batch.len() as u64;
        if needed > 0 {
            let mut credit = self.shared.credit.lock();
            if self.shared.is_closed() {
                return Err(TrySendError::Fatal(ClientError::Closed));
            }
            if credit.window > 0 && needed > credit.window {
                return Err(TrySendError::Fatal(ClientError::BatchTooLarge {
                    len: needed,
                    window: credit.window,
                }));
            }
            if credit.window == 0 || credit.available < needed {
                return Err(TrySendError::NoCredit { needed, available: credit.available });
            }
            credit.available -= needed;
        }
        let frame =
            self.encoder
                .encode_batch_traced(self.next_batch_id, batch, &self.shared.arena, trace);
        self.next_batch_id += 1;
        if let Some((ctx, started_ns)) = span {
            self.trace_send_end(ctx, started_ns);
        }
        write_frame(&mut self.stream, &frame)
            .map_err(|err| TrySendError::Fatal(ClientError::Io(err)))?;
        Ok(self.next_batch_id - 1)
    }

    /// The rolling-batch producer loop, packaged: interns `events` into
    /// batches of `batch_size` against this client's arena and sends each.
    /// Returns the number of batches sent.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MonitorClient::send_batch`] failure.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn send_stream(
        &mut self,
        events: &[(ObjectId, Symbol)],
        batch_size: usize,
    ) -> Result<u64, ClientError> {
        assert!(batch_size > 0, "a batch must cover at least one event");
        let arena = self.interner();
        let mut batch = EventBatch::with_capacity(batch_size.min(events.len()));
        let mut sent = 0;
        for (object, symbol) in events {
            batch.push_symbol(*object, symbol, &arena);
            if batch.len() == batch_size {
                self.send_batch(&batch)?;
                sent += 1;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            self.send_batch(&batch)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Drains every buffered verdict without blocking.
    #[must_use]
    pub fn poll_verdicts(&self) -> Vec<VerdictEvent> {
        self.shared.verdicts.lock().drain(..).collect()
    }

    /// Blocks until at least one verdict is buffered (then drains all), the
    /// connection closes, or `timeout` elapses.
    #[must_use]
    pub fn wait_verdicts(&self, timeout: Duration) -> Vec<VerdictEvent> {
        let mut verdicts = self.shared.verdicts.lock();
        if verdicts.is_empty() && !self.shared.is_closed() {
            self.shared.verdict_signal.wait_while_for(
                &mut verdicts,
                |verdicts| verdicts.is_empty() && !self.shared.is_closed(),
                timeout,
            );
        }
        verdicts.drain(..).collect()
    }

    /// Requests a stats snapshot and waits up to `timeout` for the reply:
    /// the server's flat engine counters plus its entire telemetry
    /// registry (engine, net and store metrics), decoded off the versioned
    /// Stats payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] when the reply never arrived (timeout or a
    /// dead connection — including a reply whose payload version this
    /// client does not speak, which kills the connection with a typed
    /// [`WireError::BadStatsVersion`](crate::wire::WireError::BadStatsVersion)
    /// on the reader); [`ClientError::Io`] when the request could not be
    /// written.
    pub fn stats(&mut self, timeout: Duration) -> Result<StatsReply, ClientError> {
        *self.shared.stats.lock() = None;
        write_frame(&mut self.stream, &encode_stats_request())?;
        let mut slot = self.shared.stats.lock();
        self.shared.stats_signal.wait_while_for(
            &mut slot,
            |slot| slot.is_none() && !self.shared.is_closed(),
            timeout,
        );
        slot.take().map(|reply| *reply).ok_or(ClientError::Closed)
    }

    /// The clean goodbye: sends a Shutdown frame (the server evicts this
    /// connection's objects and answers with its own Shutdown) and waits
    /// for the handshake to complete.  Verdicts still buffered locally can
    /// be polled off the returned flag's shared state beforehand — drain
    /// with [`MonitorClient::poll_verdicts`] *before* calling this if the
    /// tail matters.
    ///
    /// # Errors
    ///
    /// The write error, when even the goodbye could not be sent.
    pub fn shutdown(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_shutdown())?;
        self.stream.flush()?;
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        Ok(())
    }
}

impl Drop for MonitorClient {
    fn drop(&mut self) {
        if let Some(reader) = self.reader.take() {
            // Unblock the reader (it may be mid-read) and reap it.
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            let _ = reader.join();
        }
    }
}

impl fmt::Debug for MonitorClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (available, window) = self.credit();
        f.debug_struct("MonitorClient")
            .field("peer", &self.peer)
            .field("credit", &available)
            .field("window", &window)
            .field("closed", &self.shared.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Regression: a server that accepts the TCP connection but never
    /// sends its opening credit grant used to wedge the client forever
    /// (the first `send_batch` waited on a window that never came).  The
    /// handshake deadline turns that into an up-front typed timeout.
    #[test]
    fn mute_listener_times_out_with_a_typed_error() {
        // No accept() needed: the kernel backlog completes the handshake,
        // and nothing ever speaks on the socket.
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let config = ClientConfig::new()
            .with_connect_timeout(Duration::from_secs(5))
            .with_handshake_timeout(Duration::from_millis(200))
            .with_read_timeout(Duration::from_millis(50));
        let started = Instant::now();
        let err = MonitorClient::connect_with(addr, config)
            .expect_err("a mute server must not yield a usable client");
        assert!(
            matches!(err, ClientError::Wire(WireError::Timeout { millis: 200 })),
            "expected the typed handshake timeout, got: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the deadline was not honoured"
        );
    }
}
