//! [`MonitorClient`]: the connection half a monitored system embeds.
//!
//! The client owns a local payload arena ([`MonitorClient::interner`]) —
//! batches are built against it, encoded with a frame-local dictionary, and
//! re-interned into the *server's* arena on decode, so the two sides never
//! share id spaces.  Flow control is credit-based: the server grants a
//! window of events at connect time and re-grants as the engine accepts
//! batches; [`MonitorClient::send_batch`] blocks while the window is
//! exhausted (the remote engine is full), [`MonitorClient::try_send_batch`]
//! reports [`TrySendError::NoCredit`] instead.  A background reader thread
//! processes everything the server pushes: credits update the window,
//! verdicts buffer for [`MonitorClient::poll_verdicts`] /
//! [`MonitorClient::wait_verdicts`], stats replies fill the
//! [`MonitorClient::stats`] slot.

use crate::wire::{
    encode_shutdown, encode_stats_request, read_frame, write_frame, Frame, FrameEncoder,
    NackReason, StatsReply,
};
use drv_engine::VerdictEvent;
use drv_lang::{EventBatch, ObjectId, SharedInterner, Symbol};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Why a send failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the connection was already torn down).
    Io(io::Error),
    /// The server closed the connection (shutdown frame, EOF, or a decode
    /// failure on our side).
    Closed,
    /// The batch is larger than the server's whole credit window and can
    /// never be sent — split it.
    BatchTooLarge {
        /// Events in the refused batch.
        len: u64,
        /// The server's announced window.
        window: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o: {err}"),
            ClientError::Closed => f.write_str("connection closed"),
            ClientError::BatchTooLarge { len, window } => {
                write!(f, "batch of {len} events exceeds the {window}-event window")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// Why a non-blocking send was refused.
#[derive(Debug)]
pub enum TrySendError {
    /// Not enough credit right now (the remote engine is applying
    /// backpressure) — retry after draining verdicts / waiting.
    NoCredit {
        /// Events the batch needs.
        needed: u64,
        /// Credit currently available.
        available: u64,
    },
    /// A hard failure (see [`ClientError`]).
    Fatal(ClientError),
}

impl fmt::Display for TrySendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::NoCredit { needed, available } => {
                write!(f, "insufficient credit: need {needed}, have {available}")
            }
            TrySendError::Fatal(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for TrySendError {}

/// A NACK the server sent (credit overrun or oversized batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nack {
    /// The refused batch.
    pub batch_id: u64,
    /// Why it was refused.
    pub reason: NackReason,
    /// The violated bound, in events.
    pub detail: u64,
}

struct CreditState {
    available: u64,
    /// The server's announced total window; 0 until the first grant.
    window: u64,
}

struct ClientShared {
    credit: Mutex<CreditState>,
    credit_signal: Condvar,
    verdicts: Mutex<VecDeque<VerdictEvent>>,
    verdict_signal: Condvar,
    stats: Mutex<Option<Box<StatsReply>>>,
    stats_signal: Condvar,
    nacks: Mutex<Vec<Nack>>,
    closed: AtomicBool,
    /// Set when the server completed the clean shutdown handshake.
    server_shutdown: AtomicBool,
    arena: SharedInterner,
}

impl ClientShared {
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        {
            let _credit = self.credit.lock();
            self.credit_signal.notify_all();
        }
        {
            let _verdicts = self.verdicts.lock();
            self.verdict_signal.notify_all();
        }
        let _stats = self.stats.lock();
        self.stats_signal.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

fn reader_loop(shared: &ClientShared, mut stream: TcpStream) {
    loop {
        match read_frame(&mut stream, &shared.arena) {
            Ok(Frame::Credit { grant, window }) => {
                let mut credit = shared.credit.lock();
                credit.available += grant;
                credit.window = window;
                shared.credit_signal.notify_all();
            }
            Ok(Frame::Verdicts(events)) => {
                shared.verdicts.lock().extend(events);
                shared.verdict_signal.notify_all();
            }
            Ok(Frame::Stats(reply)) => {
                *shared.stats.lock() = Some(reply);
                shared.stats_signal.notify_all();
            }
            Ok(Frame::Nack { batch_id, reason, detail }) => {
                shared.nacks.lock().push(Nack { batch_id, reason, detail });
            }
            Ok(Frame::Shutdown) => {
                shared.server_shutdown.store(true, Ordering::Release);
                shared.close();
                return;
            }
            Ok(Frame::Batch(_) | Frame::StatsRequest | Frame::Evict { .. } | Frame::Checkpoint(_))
            | Err(_) => {
                // Client-bound streams never carry these (the last two are
                // journal-file record kinds); treat like a broken
                // connection.
                shared.close();
                return;
            }
        }
    }
}

/// A connection to a [`MonitorServer`](crate::MonitorServer).  See the
/// module docs for the credit and verdict flows.
pub struct MonitorClient {
    stream: TcpStream,
    shared: Arc<ClientShared>,
    reader: Option<JoinHandle<()>>,
    encoder: FrameEncoder,
    next_batch_id: u64,
    peer: SocketAddr,
}

impl MonitorClient {
    /// Connects to a monitoring server.
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        let reader_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            credit: Mutex::new(CreditState { available: 0, window: 0 }),
            credit_signal: Condvar::new(),
            verdicts: Mutex::new(VecDeque::new()),
            verdict_signal: Condvar::new(),
            stats: Mutex::new(None),
            stats_signal: Condvar::new(),
            nacks: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            server_shutdown: AtomicBool::new(false),
            arena: SharedInterner::new(),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("drv-net-client-reader".to_string())
                .spawn(move || reader_loop(&shared, reader_stream))
                .expect("spawning the client reader")
        };
        Ok(MonitorClient {
            stream,
            shared,
            reader: Some(reader),
            encoder: FrameEncoder::new(),
            next_batch_id: 0,
            peer,
        })
    }

    /// The server's address.
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// The client-side payload arena: build [`EventBatch`]es against this
    /// (e.g. via [`EventBatch::push_symbol`]) before sending them.  The
    /// handle is a cheap clone sharing the same arena.
    #[must_use]
    pub fn interner(&self) -> SharedInterner {
        self.shared.arena.clone()
    }

    /// `(available, window)` credit in events; `window` is 0 until the
    /// server's first grant arrives.
    #[must_use]
    pub fn credit(&self) -> (u64, u64) {
        let credit = self.shared.credit.lock();
        (credit.available, credit.window)
    }

    /// Whether the connection is down (server shutdown, EOF, or transport
    /// failure).  Buffered verdicts remain pollable.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.is_closed()
    }

    /// NACKs received so far (drained).  A client that only sends within
    /// its credit never receives any.
    #[must_use]
    pub fn take_nacks(&self) -> Vec<Nack> {
        std::mem::take(&mut *self.shared.nacks.lock())
    }

    /// Sends one batch, blocking while credit is insufficient (the remote
    /// engine's backpressure).  Returns the batch id.
    ///
    /// # Errors
    ///
    /// [`ClientError::BatchTooLarge`] when the batch exceeds the server's
    /// whole window; [`ClientError::Closed`] when the connection died while
    /// waiting; [`ClientError::Io`] on transport failure.
    pub fn send_batch(&mut self, batch: &EventBatch) -> Result<u64, ClientError> {
        let needed = batch.len() as u64;
        if needed > 0 {
            let mut credit = self.shared.credit.lock();
            loop {
                if self.shared.is_closed() {
                    return Err(ClientError::Closed);
                }
                if credit.window > 0 && needed > credit.window {
                    return Err(ClientError::BatchTooLarge { len: needed, window: credit.window });
                }
                if credit.window > 0 && credit.available >= needed {
                    credit.available -= needed;
                    break;
                }
                self.shared
                    .credit_signal
                    .wait_for(&mut credit, Duration::from_millis(20));
            }
        }
        let frame = self
            .encoder
            .encode_batch(self.next_batch_id, batch, &self.shared.arena);
        self.next_batch_id += 1;
        write_frame(&mut self.stream, &frame)?;
        Ok(self.next_batch_id - 1)
    }

    /// Non-blocking [`MonitorClient::send_batch`].
    ///
    /// # Errors
    ///
    /// [`TrySendError::NoCredit`] while the window cannot absorb the batch
    /// (including before the first grant); [`TrySendError::Fatal`] on the
    /// hard failures of `send_batch`.
    pub fn try_send_batch(&mut self, batch: &EventBatch) -> Result<u64, TrySendError> {
        let needed = batch.len() as u64;
        if needed > 0 {
            let mut credit = self.shared.credit.lock();
            if self.shared.is_closed() {
                return Err(TrySendError::Fatal(ClientError::Closed));
            }
            if credit.window > 0 && needed > credit.window {
                return Err(TrySendError::Fatal(ClientError::BatchTooLarge {
                    len: needed,
                    window: credit.window,
                }));
            }
            if credit.window == 0 || credit.available < needed {
                return Err(TrySendError::NoCredit { needed, available: credit.available });
            }
            credit.available -= needed;
        }
        let frame = self
            .encoder
            .encode_batch(self.next_batch_id, batch, &self.shared.arena);
        self.next_batch_id += 1;
        write_frame(&mut self.stream, &frame)
            .map_err(|err| TrySendError::Fatal(ClientError::Io(err)))?;
        Ok(self.next_batch_id - 1)
    }

    /// The rolling-batch producer loop, packaged: interns `events` into
    /// batches of `batch_size` against this client's arena and sends each.
    /// Returns the number of batches sent.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MonitorClient::send_batch`] failure.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn send_stream(
        &mut self,
        events: &[(ObjectId, Symbol)],
        batch_size: usize,
    ) -> Result<u64, ClientError> {
        assert!(batch_size > 0, "a batch must cover at least one event");
        let arena = self.interner();
        let mut batch = EventBatch::with_capacity(batch_size.min(events.len()));
        let mut sent = 0;
        for (object, symbol) in events {
            batch.push_symbol(*object, symbol, &arena);
            if batch.len() == batch_size {
                self.send_batch(&batch)?;
                sent += 1;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            self.send_batch(&batch)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Drains every buffered verdict without blocking.
    #[must_use]
    pub fn poll_verdicts(&self) -> Vec<VerdictEvent> {
        self.shared.verdicts.lock().drain(..).collect()
    }

    /// Blocks until at least one verdict is buffered (then drains all), the
    /// connection closes, or `timeout` elapses.
    #[must_use]
    pub fn wait_verdicts(&self, timeout: Duration) -> Vec<VerdictEvent> {
        let mut verdicts = self.shared.verdicts.lock();
        if verdicts.is_empty() && !self.shared.is_closed() {
            self.shared.verdict_signal.wait_while_for(
                &mut verdicts,
                |verdicts| verdicts.is_empty() && !self.shared.is_closed(),
                timeout,
            );
        }
        verdicts.drain(..).collect()
    }

    /// Requests a stats snapshot and waits up to `timeout` for the reply:
    /// the server's flat engine counters plus its entire telemetry
    /// registry (engine, net and store metrics), decoded off the versioned
    /// Stats payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] when the reply never arrived (timeout or a
    /// dead connection — including a reply whose payload version this
    /// client does not speak, which kills the connection with a typed
    /// [`WireError::BadStatsVersion`](crate::wire::WireError::BadStatsVersion)
    /// on the reader); [`ClientError::Io`] when the request could not be
    /// written.
    pub fn stats(&mut self, timeout: Duration) -> Result<StatsReply, ClientError> {
        *self.shared.stats.lock() = None;
        write_frame(&mut self.stream, &encode_stats_request())?;
        let mut slot = self.shared.stats.lock();
        self.shared.stats_signal.wait_while_for(
            &mut slot,
            |slot| slot.is_none() && !self.shared.is_closed(),
            timeout,
        );
        slot.take().map(|reply| *reply).ok_or(ClientError::Closed)
    }

    /// The clean goodbye: sends a Shutdown frame (the server evicts this
    /// connection's objects and answers with its own Shutdown) and waits
    /// for the handshake to complete.  Verdicts still buffered locally can
    /// be polled off the returned flag's shared state beforehand — drain
    /// with [`MonitorClient::poll_verdicts`] *before* calling this if the
    /// tail matters.
    ///
    /// # Errors
    ///
    /// The write error, when even the goodbye could not be sent.
    pub fn shutdown(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_shutdown())?;
        self.stream.flush()?;
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        Ok(())
    }
}

impl Drop for MonitorClient {
    fn drop(&mut self) {
        if let Some(reader) = self.reader.take() {
            // Unblock the reader (it may be mid-read) and reap it.
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            let _ = reader.join();
        }
    }
}

impl fmt::Debug for MonitorClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (available, window) = self.credit();
        f.debug_struct("MonitorClient")
            .field("peer", &self.peer)
            .field("credit", &available)
            .field("window", &window)
            .field("closed", &self.shared.is_closed())
            .finish()
    }
}
