//! The readiness core of the server: a std-only poller over `epoll(7)` /
//! `poll(2)`, a cross-thread waker, and the incremental [`FrameAssembler`].
//!
//! In the same offline-compat-shim spirit as `crates/compat`, the kernel
//! interface is a hand-declared sliver of the C ABI (`mod sys`) rather than
//! a dependency: `epoll_create1` / `epoll_ctl` / `epoll_wait` on Linux,
//! POSIX `poll(2)` elsewhere on unix (and on Linux when
//! `DRV_NET_FORCE_POLL=1`, so CI exercises both backends), and a degraded
//! everything-always-ready tick poller on non-unix targets so the crate
//! still compiles there.  The `unsafe` in this crate is confined to that
//! module — four foreign calls with fixed-size arguments — and the rest of
//! the crate stays `deny(unsafe_code)`.
//!
//! The [`FrameAssembler`] is the read half of the reactor contract: sockets
//! are nonblocking, so a frame arrives in as many partial reads as the
//! kernel felt like; the assembler accumulates raw bytes, validates the
//! 16-byte header as soon as it is complete (so a malformed or oversized
//! claim is a typed [`WireError`] *before* any payload buffering), and
//! yields whole frames zero-copy for [`decode_frame_capped`] to intern
//! straight into the engine arena.  It never allocates from a *claimed*
//! length — its buffer only ever holds bytes the peer actually sent.
//!
//! [`decode_frame_capped`]: crate::wire::decode_frame_capped

use crate::wire::{parse_header, WireError, HEADER_LEN};
use std::io;
use std::time::Duration;

/// The raw descriptor type the poller speaks (`c_int` on unix; a dummy on
/// targets where the fallback poller ignores it).
pub(crate) type SysFd = i32;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable — or in an error/hang-up state the next `read` will surface.
    pub readable: bool,
    /// Writable — or in an error state the next `write` will surface.
    pub writable: bool,
}

// ---------------------------------------------------------------------------
// sys: the hand-declared C ABI sliver (the crate's only unsafe code).
// ---------------------------------------------------------------------------

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::SysFd;
    use std::io;
    use std::os::raw::c_int;

    /// `struct pollfd` — POSIX, identical layout everywhere we run.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: SysFd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }

    /// `poll(2)` over a slice; `timeout_ms < 0` blocks.
    pub fn sys_poll(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: the pointer/length pair comes from a live slice, and
        // `PollFd` is the exact `struct pollfd` layout.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::SysFd;
        use std::io;
        use std::os::raw::c_int;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const CTL_ADD: c_int = 1;
        pub const CTL_DEL: c_int = 2;
        pub const CTL_MOD: c_int = 3;
        const EPOLL_CLOEXEC: c_int = 0o200_0000;

        /// `struct epoll_event` — packed on x86-64, natural elsewhere
        /// (the kernel ABI quirk every epoll binding carries).
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        pub fn create() -> io::Result<SysFd> {
            // SAFETY: no pointers; the flag is the kernel's CLOEXEC constant.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(fd)
            }
        }

        pub fn ctl(epfd: SysFd, op: c_int, fd: SysFd, events: u32, data: u64) -> io::Result<()> {
            let mut event = EpollEvent { events, data };
            // SAFETY: `event` is a live, correctly-laid-out epoll_event;
            // the kernel copies it before the call returns (DEL ignores it
            // but pre-2.6.9 kernels demand it be non-null, so pass it
            // unconditionally).
            let rc = unsafe { epoll_ctl(epfd, op, fd, &mut event) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub fn wait(epfd: SysFd, events: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
            // SAFETY: pointer/length from a live slice the kernel fills.
            let rc = unsafe {
                epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(rc as usize)
            }
        }

        pub fn close_fd(fd: SysFd) {
            // SAFETY: the poller owns this descriptor; closing at drop.
            unsafe {
                close(fd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Poller: one readiness multiplexer, three backends.
// ---------------------------------------------------------------------------

enum Backend {
    /// `epoll(7)`: O(ready) wakeups — the Linux production path.
    #[cfg(target_os = "linux")]
    Epoll { epfd: SysFd, buf: Vec<sys::epoll::EpollEvent> },
    /// `poll(2)`: O(registered) per wait — portable unix, and the Linux
    /// differential backend under `DRV_NET_FORCE_POLL=1`.
    #[cfg(unix)]
    Poll {
        entries: Vec<(SysFd, u64, i16)>,
        scratch: Vec<sys::PollFd>,
    },
    /// Degraded non-unix fallback: every registered token reports ready on
    /// a short tick; nonblocking sockets turn that into a 2 ms scan loop.
    #[allow(dead_code)]
    Tick { tokens: Vec<u64> },
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            // Round sub-millisecond timeouts up: 0 would busy-spin.
            let ms = if t.as_millis() == 0 && !t.is_zero() { 1 } else { t.as_millis() };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

/// A readiness multiplexer: register descriptors under integer tokens, wait
/// for readable/writable reports.  Level-triggered on every backend.
pub(crate) struct Poller {
    backend: Backend,
    events: Vec<Event>,
}

impl Poller {
    /// Picks the best backend for the platform (see [`Poller::backend_name`]).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var_os("DRV_NET_FORCE_POLL").is_none_or(|v| v != "1") {
                let epfd = sys::epoll::create()?;
                return Ok(Poller {
                    backend: Backend::Epoll {
                        epfd,
                        buf: vec![sys::epoll::EpollEvent { events: 0, data: 0 }; 1024],
                    },
                    events: Vec::new(),
                });
            }
        }
        #[cfg(unix)]
        {
            Ok(Poller {
                backend: Backend::Poll { entries: Vec::new(), scratch: Vec::new() },
                events: Vec::new(),
            })
        }
        #[cfg(not(unix))]
        {
            Ok(Poller { backend: Backend::Tick { tokens: Vec::new() }, events: Vec::new() })
        }
    }

    /// Which backend this poller runs on: `"epoll"`, `"poll"` or `"tick"`.
    /// A diagnostic accessor (tests assert the selection logic; keep it
    /// available for debugging even though the hot path never asks).
    #[allow(dead_code)]
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            #[cfg(unix)]
            Backend::Poll { .. } => "poll",
            Backend::Tick { .. } => "tick",
        }
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: SysFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                sys::epoll::ctl(*epfd, sys::epoll::CTL_ADD, fd, epoll_mask(readable, writable), token)
            }
            #[cfg(unix)]
            Backend::Poll { entries, .. } => {
                entries.push((fd, token, poll_mask(readable, writable)));
                Ok(())
            }
            Backend::Tick { tokens } => {
                let _ = (fd, readable, writable);
                tokens.push(token);
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered descriptor.
    pub fn reregister(&mut self, fd: SysFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                sys::epoll::ctl(*epfd, sys::epoll::CTL_MOD, fd, epoll_mask(readable, writable), token)
            }
            #[cfg(unix)]
            Backend::Poll { entries, .. } => {
                if let Some(entry) = entries.iter_mut().find(|(entry_fd, ..)| *entry_fd == fd) {
                    entry.1 = token;
                    entry.2 = poll_mask(readable, writable);
                }
                Ok(())
            }
            Backend::Tick { .. } => Ok(()),
        }
    }

    /// Removes a descriptor (call *before* closing it).
    pub fn deregister(&mut self, fd: SysFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => sys::epoll::ctl(*epfd, sys::epoll::CTL_DEL, fd, 0, 0),
            #[cfg(unix)]
            Backend::Poll { entries, .. } => {
                entries.retain(|(entry_fd, ..)| *entry_fd != fd);
                Ok(())
            }
            Backend::Tick { .. } => Ok(()),
        }
    }

    /// Blocks until readiness or `timeout` (`None` = forever), returning
    /// the ready set.  An interrupted wait returns an empty set.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<&[Event]> {
        self.events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => {
                use sys::epoll::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
                let n = match sys::epoll::wait(*epfd, buf, timeout_ms(timeout)) {
                    Ok(n) => n,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => 0,
                    Err(err) => return Err(err),
                };
                for raw in buf.iter().take(n) {
                    // Copy out of the (possibly packed) kernel struct.
                    let mask = raw.events;
                    let token = raw.data;
                    self.events.push(Event {
                        token,
                        readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                        writable: mask & (EPOLLOUT | EPOLLERR) != 0,
                    });
                }
            }
            #[cfg(unix)]
            Backend::Poll { entries, scratch } => {
                use sys::{POLLERR, POLLHUP, POLLIN, POLLOUT};
                scratch.clear();
                scratch.extend(entries.iter().map(|(fd, _, events)| sys::PollFd {
                    fd: *fd,
                    events: *events,
                    revents: 0,
                }));
                match sys::sys_poll(scratch, timeout_ms(timeout)) {
                    Ok(_) => {}
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {
                        return Ok(&self.events);
                    }
                    Err(err) => return Err(err),
                }
                for (slot, (_, token, _)) in scratch.iter().zip(entries.iter()) {
                    let mask = slot.revents;
                    if mask != 0 {
                        self.events.push(Event {
                            token: *token,
                            readable: mask & (POLLIN | POLLHUP | POLLERR) != 0,
                            writable: mask & (POLLOUT | POLLERR) != 0,
                        });
                    }
                }
            }
            Backend::Tick { tokens } => {
                // Bounded nap, then report everything ready: correctness
                // without readiness on targets that have neither API.
                std::thread::sleep(timeout.unwrap_or(Duration::from_millis(2)).min(Duration::from_millis(2)));
                self.events.extend(tokens.iter().map(|token| Event {
                    token: *token,
                    readable: true,
                    writable: true,
                }));
            }
        }
        Ok(&self.events)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd, .. } = &self.backend {
            sys::epoll::close_fd(*epfd);
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(readable: bool, writable: bool) -> u32 {
    use sys::epoll::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    let mut mask = 0;
    if readable {
        mask |= EPOLLIN | EPOLLRDHUP;
    }
    if writable {
        mask |= EPOLLOUT;
    }
    mask
}

#[cfg(unix)]
fn poll_mask(readable: bool, writable: bool) -> i16 {
    let mut mask = 0;
    if readable {
        mask |= sys::POLLIN;
    }
    if writable {
        mask |= sys::POLLOUT;
    }
    mask
}

// ---------------------------------------------------------------------------
// Waker: wake the reactor from another thread (router pushes, shutdown).
// ---------------------------------------------------------------------------

/// The write half of the reactor's wake channel (a nonblocking socketpair
/// byte on unix).  Wakes coalesce: a full pipe already means a pending
/// wake, so the lost write is free.
pub(crate) struct Waker {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
}

/// The read half, registered in the poller under the reactor's wake token.
pub(crate) struct WakeRx {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

/// Builds the wake channel.  On non-unix targets both halves are inert —
/// the tick poller's bounded nap stands in for wakeups.
pub(crate) fn waker_pair() -> io::Result<(Waker, WakeRx)> {
    #[cfg(unix)]
    {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeRx { rx }))
    }
    #[cfg(not(unix))]
    {
        Ok((Waker {}, WakeRx {}))
    }
}

impl Waker {
    /// Wakes the reactor; never blocks, never fails.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

impl WakeRx {
    /// The descriptor to register under the wake token.
    #[cfg(unix)]
    pub fn fd(&self) -> SysFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    #[cfg(not(unix))]
    pub fn fd(&self) -> SysFd {
        -1
    }

    /// Consumes every pending wake byte (level-triggered registration).
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            loop {
                match (&self.rx).read(&mut sink) {
                    Ok(0) => return,
                    Ok(_) => {}
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FrameAssembler: partial reads → whole frames, header-validated early.
// ---------------------------------------------------------------------------

/// Incremental frame reassembly for nonblocking reads.
///
/// Feed raw socket bytes with [`FrameAssembler::feed`]; pull complete
/// frames with [`FrameAssembler::next_frame`].  The 16-byte header is
/// validated the moment it is complete, so a bad magic, unknown kind or
/// oversized length claim is a typed [`WireError`] before a single payload
/// byte is buffered — and the internal buffer is only ever sized by bytes
/// *actually received*, never by a length field (the no
/// input-driven-over-allocation contract, fuzzed in
/// `tests/wire_fuzz.rs`).
///
/// ```
/// use drv_net::reactor::FrameAssembler;
/// use drv_net::wire::encode_shutdown;
///
/// let frame = encode_shutdown();
/// let mut assembler = FrameAssembler::new();
/// // Byte-at-a-time delivery: no frame until the last byte lands.
/// for byte in &frame[..frame.len() - 1] {
///     assembler.feed(std::slice::from_ref(byte));
///     assert!(assembler.next_frame().expect("valid prefix").is_none());
/// }
/// assembler.feed(&frame[frame.len() - 1..]);
/// assert_eq!(assembler.next_frame().expect("valid frame"), Some(frame.as_slice()));
/// ```
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Start of the unconsumed region of `buf`.
    pos: usize,
    /// Total frame length (header + payload) once the header validated.
    need: Option<usize>,
    /// Feeds so far (the reassembly clock for the spread metric).
    feeds: u64,
    /// The feed count when the current frame's first byte became visible.
    frame_start: Option<u64>,
    last_spread: u64,
}

impl FrameAssembler {
    /// An empty assembler.
    #[must_use]
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact consumed space before growing: steady state keeps the
        // buffer at roughly one frame plus one read chunk.
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
        self.feeds += 1;
    }

    /// The next complete frame, if one is buffered: `Ok(Some(frame))`
    /// borrows the raw header+payload bytes (decode before the next call),
    /// `Ok(None)` means more bytes are needed.
    ///
    /// # Errors
    ///
    /// The header's [`WireError`] — the stream is unframeable from here on
    /// (resynchronising on a byte stream is guessing), so the caller should
    /// tear the connection down.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let available = self.buf.len() - self.pos;
        if self.frame_start.is_none() && available > 0 {
            self.frame_start = Some(self.feeds);
        }
        if self.need.is_none() {
            if available < HEADER_LEN {
                return Ok(None);
            }
            let header_bytes: &[u8; HEADER_LEN] = self.buf[self.pos..self.pos + HEADER_LEN]
                .try_into()
                .expect("length checked");
            let header = parse_header(header_bytes)?;
            self.need = Some(HEADER_LEN + header.len as usize);
        }
        let need = self.need.expect("just ensured");
        if available < need {
            return Ok(None);
        }
        let start = self.pos;
        self.pos += need;
        self.need = None;
        self.last_spread = self
            .feeds
            .saturating_sub(self.frame_start.take().unwrap_or(self.feeds))
            + 1;
        Ok(Some(&self.buf[start..start + need]))
    }

    /// How many `feed` calls the most recent frame spanned (1 = it arrived
    /// whole) — the partial-read reassembly spread, exported as the
    /// `net_reactor_reassembly_reads` histogram.
    #[must_use]
    pub fn last_spread(&self) -> u64 {
        self.last_spread
    }

    /// Bytes currently buffered and not yet consumed as frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The buffer's allocated capacity — exposed so the fuzz suite can
    /// assert allocation tracks *received* bytes, never claimed lengths.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poller_reports_a_known_backend() {
        let poller = Poller::new().expect("a poller on every supported platform");
        assert!(
            ["epoll", "poll", "tick"].contains(&poller.backend_name()),
            "unknown backend: {}",
            poller.backend_name()
        );
    }

    #[test]
    fn waker_wakes_and_coalesces() {
        let (waker, rx) = waker_pair().expect("socket pair");
        // Many wakes must collapse into at least one readable byte and
        // never an error, even with the pipe saturated.
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut poller = Poller::new().expect("poller");
        poller.register(rx.fd(), 7, true, false).expect("register");
        let events = poller.wait(Some(std::time::Duration::from_secs(5))).expect("wait");
        assert!(events.iter().any(|event| event.token == 7 && event.readable));
        rx.drain();
    }
}
