//! # drv-net
//!
//! The network subsystem: events over sockets, verdicts back.  Everything
//! the repo monitored before this crate originated in-process; `drv-net`
//! adds the missing distributed edge — a binary wire format for
//! [`EventBatch`](drv_lang::EventBatch)es, a TCP [`MonitorServer`] over the
//! service-mode [`MonitoringEngine`](drv_engine::MonitoringEngine), and the
//! [`MonitorClient`] a monitored system embeds.  Std-only: `std::net`
//! sockets driven by a hand-rolled readiness [`reactor`], no external
//! dependencies.
//!
//! ## The reactor (one I/O thread, any number of connections)
//!
//! The server's thread count is **flat**: one reactor thread owns every
//! socket — nonblocking, multiplexed by a readiness poller (`epoll` on
//! Linux, `poll(2)` on other unix; see [`reactor`]) — and one router
//! thread fans verdicts out.  Three rules define the event loop:
//!
//! * **Readiness loop** — the reactor sleeps in the poller until a socket
//!   has bytes, a peer connects, or the waker fires (the router queued
//!   output, or shutdown was requested).  An idle server makes no
//!   syscalls and spins nothing.
//! * **Reassembly buffers** — TCP delivers arbitrary chunks, so each
//!   connection accumulates partial reads in a
//!   [`FrameAssembler`](reactor::FrameAssembler); a frame is decoded
//!   (bounds-checked, straight into the engine's arena) only once its
//!   declared length has fully arrived, and the buffer grows with *bytes
//!   received*, never with lengths merely claimed.
//! * **Write-interest rules** — output goes through bounded
//!   per-connection outbound queues drained by the reactor; a socket is
//!   registered for write-readiness only while unflushed output exists.
//!   A queue that stays full past the grace period
//!   ([`ServerConfig::with_stall_grace`]) marks a stalled consumer: it is
//!   disconnected (a `stalled_disconnects` eviction) rather than allowed
//!   to head-of-line block every other connection or buffer unboundedly.
//!
//! ## The wire format ([`wire`])
//!
//! Length-prefixed, CRC-checked frames:
//!
//! ```text
//!  ┌──────────── header, 16 bytes ────────────┐┌── payload ──┐
//!  │ magic  version kind  reserved  len   crc ││ kind-specific│
//!  │ u32    u8      u8    u16       u32   u32 ││ bytes        │
//!  └──────────────────────────────────────────┘└──────────────┘
//!  kinds: Batch · Credit · Nack · Verdict · Stats · Shutdown · VerdictBatch
//! ```
//!
//! A `Batch` payload carries the struct-of-arrays rows of an `EventBatch`
//! plus a dictionary of the *distinct* invocation/response payloads the
//! rows reference.  **The arena-interning rule:** decoding interns each
//! dictionary entry exactly once into the interner it is handed — the
//! server passes the engine's own arena, so a decoded batch is directly
//! submittable and a payload repeated across a million events is interned
//! once, not a million times.
//!
//! Verdicts travel the other way as `VerdictBatch` frames (the default;
//! [`ServerConfig::with_batched_verdicts`] restores the legacy per-row
//! `Verdict` frames): a *run table* of `(object, base_seq, len)` entries
//! plus 5-byte `(tag, run-index)` rows, so a run of consecutive
//! same-object verdicts costs one table entry instead of repeating the
//! 16-byte `(object, seq)` pair per row.  The router stably groups each
//! frame's rows by object before encoding — per-object `seq` order is the
//! only delivery contract, and grouping is what makes the runs maximal.
//!
//! Malformed, truncated, corrupted or oversized input decodes to a typed
//! [`WireError`] — never a panic, never an allocation sized by
//! unvalidated input (`tests/wire_fuzz.rs`).
//!
//! ## The backpressure protocol
//!
//! Flow control is *credit-based*, in events: the server opens each
//! connection with a window `W` ([`ServerConfig::with_window`]), a batch
//! consumes its event count, and credit returns **with the verdicts** (one
//! event per verdict delivered to the owning connection) — the window
//! bounds a connection's submitted-but-unchecked events end to end.  The
//! engine's [`SubmitError::Full`](drv_engine::SubmitError::Full) therefore
//! never turns into unbounded server-side buffering: a full engine stops
//! producing verdicts, grants dry up, and the client stalls while the
//! server holds exactly one in-flight batch per connection — parked
//! wakeup-silent until the engine's capacity hook wakes the reactor (no
//! retry polling; `tests/parked_wakeups.rs` asserts zero wakeups across a
//! parked window).  A client that overruns its window gets a `Nack` and
//! the batch is dropped *before* touching the engine, so per-object order
//! survives refusals.
//!
//! ## End-to-end order
//!
//! Per-object verdict streams over the wire are bit-identical to an
//! in-process [`sequential_reference`](drv_engine::sequential_reference)
//! run: TCP preserves the client's batch order, the reactor reassembles
//! and submits frames in arrival order, the engine's shards are
//! per-object FIFO, the router forwards the subscription to the owning
//! connection keeping each object's verdicts in seq order (frames may
//! group rows by object — grouping, never reordering within an object),
//! and the outbound queue drains FIFO.  `tests/differential.rs` proves it
//! at 1/2/4 workers × batch 1/16/256, under forced credit stalls and
//! mid-stream disconnects, over both verdict framings.
//!
//! ## Quick start (loopback)
//!
//! ```
//! use drv_core::CheckerMonitorFactory;
//! use drv_engine::EngineConfig;
//! use drv_lang::{EventBatch, Invocation, ObjectId, ProcId, Response, Symbol};
//! use drv_net::{MonitorClient, MonitorServer, ServerConfig};
//! use drv_spec::Register;
//! use std::sync::Arc;
//!
//! let server = MonitorServer::bind(
//!     ("127.0.0.1", 0),
//!     EngineConfig::new(2).with_max_pending(1024),
//!     Arc::new(CheckerMonitorFactory::linearizability(Register::new(), 2)),
//!     ServerConfig::new(),
//! )
//! .expect("bind loopback");
//!
//! let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
//! let arena = client.interner();
//! let mut batch = EventBatch::new();
//! batch.push_symbol(ObjectId(1), &Symbol::invoke(ProcId(0), Invocation::Write(7)), &arena);
//! batch.push_symbol(ObjectId(1), &Symbol::respond(ProcId(0), Response::Ack), &arena);
//! client.send_batch(&batch).expect("send");
//!
//! let mut verdicts = Vec::new();
//! while verdicts.len() < 2 {
//!     verdicts.extend(client.wait_verdicts(std::time::Duration::from_secs(5)));
//! }
//! assert!(verdicts.iter().all(|event| event.verdict.is_yes()));
//! client.shutdown().expect("clean goodbye");
//! let report = server.shutdown().expect("no worker panicked");
//! assert_eq!(report.aggregate().yes, 1);
//! ```

// Unsafe is denied everywhere except the reactor's syscall shim
// (`reactor::sys`), the one module that must speak FFI to reach
// poll/epoll — std exposes no readiness API.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod client;
pub mod reactor;
pub mod server;
pub mod wire;

pub use bridge::{stream_abd, BridgeReport};
pub use client::{ClientConfig, ClientError, MonitorClient, Nack, TrySendError};
pub use reactor::FrameAssembler;
pub use server::{MonitorServer, ServerConfig, ServerStats};
pub use wire::{
    Frame, FrameKind, NackReason, ReadError, StatsReply, WireBatch, WireError, WireStats,
};
