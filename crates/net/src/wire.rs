//! The frame layer: length-prefixed, CRC-checked binary frames carrying
//! [`EventBatch`]es, credits, verdicts, stats and shutdowns over a byte
//! stream.
//!
//! ## Frame layout
//!
//! ```text
//!  ┌──────────── header, 16 bytes ────────────┐┌── payload ──┐
//!  │ magic  version kind  reserved  len   crc ││ kind-specific│
//!  │ u32    u8      u8    u16       u32   u32 ││ bytes        │
//!  └──────────────────────────────────────────┘└──────────────┘
//! ```
//!
//! * `magic` = [`MAGIC`] — rejects non-protocol peers immediately.
//! * `version` = [`VERSION`] — incompatible peers are told apart from
//!   corrupted ones.
//! * `kind` — one [`FrameKind`] discriminant.
//! * `len` — payload length in bytes, capped at [`MAX_PAYLOAD`]; the cap is
//!   enforced *before* any buffer is sized from the field, so a corrupted
//!   length cannot trigger a multi-gigabyte allocation.
//! * `crc` — CRC-32 (IEEE) over the payload bytes; a frame whose payload was
//!   damaged in transit decodes to [`WireError::CrcMismatch`], never to a
//!   wrong batch.
//!
//! ## Batch payload and the arena-interning rule
//!
//! A [`FrameKind::Batch`] payload is the struct-of-arrays rows of an
//! [`EventBatch`] plus a *dictionary* of the distinct invocation/response
//! payloads the rows reference:
//!
//! ```text
//!  batch_id  u64
//!  row_count u32   (up front, so size caps apply before anything interns)
//!  inv_dict  u32 count, then count encoded Invocations (drv_lang::wire)
//!  resp_dict u32 count, then count encoded Responses
//!  rows      row_count × (object u64, proc u32, tag u8, dict u32)
//!  [ext]     OPTIONAL: tag u8 = EXT_TRACE_CONTEXT, len u8 ≥ 16,
//!            then len bytes (the 16-byte TraceContext; extras skipped)
//! ```
//!
//! The trailing extension block is the *versioned optional trace-context
//! carrier*: absent entirely on an unstamped batch (legacy frames and the
//! common unsampled case are byte-identical to the pre-extension layout),
//! and when present it is explicitly consumed — an unknown tag, an
//! undersized length or truncated context bytes decode to the typed
//! [`WireError::BadTraceContext`] (lengths are bounds-checked before any
//! read, and a refused frame interns nothing, like every other refusal).
//!
//! Rows reference payloads by dictionary index, so a batch of 10 000 events
//! over 12 distinct payloads carries 12 encoded payloads.  Decoding interns
//! each dictionary entry **once** into the supplied [`SharedInterner`] —
//! when that interner is the engine's arena ([`MonitoringEngine::
//! interner`](drv_engine::MonitoringEngine::interner)), the decoded batch is
//! directly submittable: one intern per distinct payload, not per event.
//!
//! Because the arena is append-only, decode refuses to intern anything
//! from a frame that fails the structural caps: `row_count` is validated
//! against the caller's limit ([`decode_frame_capped`] — servers pass
//! their credit window) and a dictionary larger than the row count (every
//! legitimate entry is referenced by at least one row) is rejected as
//! [`WireError::DictOverflow`] *before* the first intern, so a peer
//! cannot grow server memory with dictionary-only frames.
//!
//! ## Verdict batch payload
//!
//! The return leg mirrors the batch leg: a [`FrameKind::VerdictBatch`]
//! payload run-compresses a span of the verdict stream —
//!
//! ```text
//!  run_count u32   row_count u32
//!  runs  run_count × (object u64, base_seq u64, len u32)
//!  rows  row_count × (tag u8, index u32)
//! ```
//!
//! Consecutive verdicts of one object share a run-table entry, so the
//! `(object, seq)` pair the per-verdict [`FrameKind::Verdict`] layout
//! repeats in every 21-byte row is paid once per run; each row is 5 bytes
//! and `seq` reconstructs as `base_seq + offset`.  Decode enforces the same
//! discipline as batch decode: counts validated against the remaining
//! payload before any allocation, a run table larger than the row count
//! rejected as [`WireError::DictOverflow`], lengths that do not sum to the
//! row count rejected as [`WireError::BadRunTable`] — all before a single
//! event is surfaced.
//!
//! Every decode error is a typed [`WireError`]; malformed, truncated or
//! oversized input can neither panic nor over-allocate
//! (`tests/wire_fuzz.rs`).

use drv_core::Verdict;
use drv_engine::VerdictEvent;
use drv_lang::wire::{
    put_invocation, put_response, put_string, put_u32, put_u64, put_u64_seq, take_invocation,
    take_response, CodecError, Reader,
};
use drv_lang::{
    EventAction, EventBatch, EventRecord, InvocationId, ObjectId, ProcId, ResponseId,
    SharedInterner, TraceContext,
};
use drv_telemetry::metrics::BUCKETS;
use drv_telemetry::{HistogramSnapshot, Snapshot};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: `"DRVF"` little-endian.
pub const MAGIC: u32 = 0x4656_5244;
/// Wire protocol version.
pub const VERSION: u8 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Hard cap on a frame's payload length (16 MiB): the over-allocation guard
/// for the length field itself.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;
/// Version byte leading a non-empty [`FrameKind::Stats`] payload.  The
/// pre-telemetry flat layout was (an unversioned) 1; version 2 appends the
/// encoded registry snapshot.  A reply whose version this implementation
/// does not speak decodes to [`WireError::BadStatsVersion`], never to
/// garbled counters.
pub const STATS_VERSION: u8 = 2;
/// Batch-payload extension tag: a version-1 trace context follows (one
/// length byte, then at least [`TraceContext::WIRE_LEN`] bytes — the length
/// byte is the forward-compatibility hinge: a future revision may append
/// fields, which this decoder skips).  A batch without a stamped context
/// carries no extension block at all.
pub const EXT_TRACE_CONTEXT: u8 = 1;

/// The discriminant of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: an [`EventBatch`] of monitored traffic.
    Batch = 1,
    /// Server → client: a credit grant (flow control, counted in events).
    Credit = 2,
    /// Server → client: a batch was rejected (and dropped) — resend after
    /// the condition clears.
    Nack = 3,
    /// Server → client: a run of decided verdicts.
    Verdict = 4,
    /// Empty payload: a stats request (client → server).  Non-empty: the
    /// snapshot reply (server → client).
    Stats = 5,
    /// Clean end-of-stream (either direction).
    Shutdown = 6,
    /// A journal record: the object was retired (evicted / TTL-swept) at
    /// this point of the durable stream.  `drv-store` writes these; the TCP
    /// server treats one arriving over a connection as a protocol error.
    Evict = 7,
    /// A journal record: an opaque per-object checker checkpoint
    /// (`drv-store` owns the inner layout).  Like [`FrameKind::Evict`],
    /// never valid over a live connection.
    Checkpoint = 8,
    /// Server → client: a run-compressed batch of decided verdicts (run
    /// table + 5-byte rows; see the module docs).  Carries the same
    /// `(object, seq, verdict)` triples as [`FrameKind::Verdict`] at a
    /// fraction of the bytes — grouping changes, order and content never
    /// do.
    VerdictBatch = 9,
}

impl FrameKind {
    fn from_u8(value: u8) -> Option<FrameKind> {
        Some(match value {
            1 => FrameKind::Batch,
            2 => FrameKind::Credit,
            3 => FrameKind::Nack,
            4 => FrameKind::Verdict,
            5 => FrameKind::Stats,
            6 => FrameKind::Shutdown,
            7 => FrameKind::Evict,
            8 => FrameKind::Checkpoint,
            9 => FrameKind::VerdictBatch,
            _ => return None,
        })
    }
}

/// Why a server refused a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NackReason {
    /// The batch exceeded the connection's remaining credit (a protocol
    /// violation: wait for [`FrameKind::Credit`] before sending).
    CreditExceeded = 1,
    /// The batch alone is larger than the connection's whole credit window
    /// and could never be accepted — split it.
    BatchTooLarge = 2,
}

impl NackReason {
    fn from_u8(value: u8) -> Option<NackReason> {
        Some(match value {
            1 => NackReason::CreditExceeded,
            2 => NackReason::BatchTooLarge,
            _ => return None,
        })
    }
}

/// A decoded batch frame: the id echoes back in acknowledgements/NACKs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireBatch {
    /// Sender-chosen id (monotone per connection in the provided client).
    pub batch_id: u64,
    /// The events, payload ids interned into the decode-time arena.
    pub events: EventBatch,
}

/// The engine-level counters a [`FrameKind::Stats`] reply carries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Worker threads of the serving engine.
    pub workers: u32,
    /// Shards of the serving engine.
    pub shards: u32,
    /// Events processed so far.
    pub events: u64,
    /// Shard-claim batches drained so far.
    pub batches: u64,
    /// Work-stealing migrations.
    pub steals: u64,
    /// Objects retired (evictions + TTL sweeps).
    pub evicted: u64,
    /// Returns from the worker park (flat while idle).
    pub park_wakeups: u64,
    /// Submitted-but-unprocessed events at snapshot time.
    pub backlog: u64,
    /// Live client connections at snapshot time.
    pub connections: u32,
}

/// A full [`FrameKind::Stats`] reply: the flat engine counters plus the
/// server's entire telemetry registry at the same instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// The engine-level counters (the pre-telemetry reply, kept flat so
    /// dashboards need no registry knowledge for the headline numbers).
    pub engine: WireStats,
    /// Every registered counter, gauge and histogram of the serving
    /// process — engine, net and store metrics alike.
    pub telemetry: Snapshot,
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A batch of monitored traffic.
    Batch(WireBatch),
    /// A credit grant: `grant` fresh events of budget; `window` restates the
    /// connection's total window so clients can reject oversized batches
    /// locally.
    Credit {
        /// Newly granted events.
        grant: u64,
        /// The connection's total credit window.
        window: u64,
    },
    /// A refused batch.
    Nack {
        /// The refused batch's id.
        batch_id: u64,
        /// Why it was refused.
        reason: NackReason,
        /// Reason-specific detail (the violated bound, in events).
        detail: u64,
    },
    /// A run of decided verdicts, per-object in `seq` order.
    Verdicts(Vec<VerdictEvent>),
    /// A run-compressed verdict batch ([`FrameKind::VerdictBatch`]),
    /// decoded back to the flat triples — byte layout differs from
    /// [`Frame::Verdicts`], the carried events do not.
    VerdictBatch(Vec<VerdictEvent>),
    /// A stats request (empty [`FrameKind::Stats`] payload).
    StatsRequest,
    /// A stats snapshot reply (engine counters + registry snapshot).
    Stats(Box<StatsReply>),
    /// Clean end-of-stream.
    Shutdown,
    /// A journal retirement record (see [`FrameKind::Evict`]).
    Evict {
        /// The retired object.
        object: ObjectId,
    },
    /// A journal checkpoint record: the CRC-validated inner payload,
    /// decoded by `drv-store`.
    Checkpoint(Vec<u8>),
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first 4 bytes are not [`MAGIC`]: not this protocol.
    BadMagic(u32),
    /// A protocol version this implementation does not speak.
    BadVersion(u8),
    /// An unknown [`FrameKind`] discriminant.
    UnknownKind(u8),
    /// The header's payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The input ended inside the header.
    TruncatedHeader {
        /// Bytes present (always < [`HEADER_LEN`]).
        have: usize,
    },
    /// The input ended inside the payload.
    TruncatedPayload {
        /// The header's claimed payload length.
        need: u32,
        /// Payload bytes actually present.
        have: usize,
    },
    /// The payload's CRC-32 does not match the header's.
    CrcMismatch {
        /// CRC the header declared.
        declared: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// A payload field failed to decode.
    Payload(CodecError),
    /// A batch row references a dictionary index that does not exist.
    BadDictIndex {
        /// The offending index.
        index: u32,
        /// Entries the dictionary has.
        len: u32,
    },
    /// A batch declares more rows than the decoder's cap (a server's
    /// credit window) admits; nothing of the frame was interned.
    TooManyRows {
        /// The batch's id (for the NACK reply).
        batch_id: u64,
        /// Rows the frame declared.
        rows: u32,
        /// The decoder's cap.
        limit: u32,
    },
    /// A batch's dictionaries hold more entries than it has rows — a
    /// legitimate encoder emits only referenced payloads, so this is a
    /// memory-growth probe; nothing was interned.  (A `VerdictBatch` whose
    /// run table holds more runs than rows is the same probe: every run
    /// covers at least one row.)
    DictOverflow {
        /// Total dictionary entries declared.
        entries: u64,
        /// Rows the frame declared.
        rows: u32,
    },
    /// A `VerdictBatch` run table whose lengths do not sum to the frame's
    /// declared row count — the frame is internally inconsistent and
    /// nothing of it was surfaced.
    BadRunTable {
        /// Rows the frame declared.
        declared_rows: u32,
        /// What the run lengths actually sum to.
        summed: u64,
    },
    /// A non-empty [`FrameKind::Stats`] payload led with a version byte
    /// this implementation does not speak (see [`STATS_VERSION`]).
    BadStatsVersion(u8),
    /// A stats reply's histogram declared a bucket-array length other than
    /// the fixed [`BUCKETS`] the log₂ layout mandates.
    BadStatsHistogram {
        /// Buckets the reply declared.
        buckets: u64,
    },
    /// A batch's trailing extension block is malformed: an unknown
    /// extension tag, a length below the fixed context size, or context
    /// bytes the payload does not actually hold.  Nothing of the frame was
    /// interned.
    BadTraceContext {
        /// What exactly was wrong.
        what: &'static str,
    },
    /// Bytes remained after the payload's last field.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
    /// A deadline elapsed before the peer produced the awaited bytes — a
    /// hung or wedged endpoint, surfaced typed instead of blocking forever
    /// (see [`ClientConfig`](crate::client::ClientConfig)).
    Timeout {
        /// How long the caller waited, in milliseconds.
        millis: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(magic) => write!(f, "bad frame magic {magic:#010x}"),
            WireError::BadVersion(version) => write!(f, "unsupported wire version {version}"),
            WireError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::Oversized(len) => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::TruncatedHeader { have } => {
                write!(f, "truncated header: {have} of {HEADER_LEN} bytes")
            }
            WireError::TruncatedPayload { need, have } => {
                write!(f, "truncated payload: {have} of {need} bytes")
            }
            WireError::CrcMismatch { declared, computed } => {
                write!(f, "payload CRC mismatch: declared {declared:#010x}, computed {computed:#010x}")
            }
            WireError::Payload(err) => write!(f, "payload decode: {err}"),
            WireError::BadDictIndex { index, len } => {
                write!(f, "row references dictionary entry {index} of {len}")
            }
            WireError::TooManyRows { batch_id, rows, limit } => {
                write!(f, "batch {batch_id} declares {rows} rows over the {limit}-row cap")
            }
            WireError::DictOverflow { entries, rows } => {
                write!(f, "{entries} dictionary entries for {rows} rows")
            }
            WireError::BadRunTable { declared_rows, summed } => {
                write!(f, "verdict run table sums {summed} rows, frame declares {declared_rows}")
            }
            WireError::BadStatsVersion(version) => {
                write!(f, "unsupported stats payload version {version} (expected {STATS_VERSION})")
            }
            WireError::BadStatsHistogram { buckets } => {
                write!(f, "stats histogram declares {buckets} buckets (expected {BUCKETS})")
            }
            WireError::BadTraceContext { what } => {
                write!(f, "malformed trace-context extension: {what}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the payload's last field")
            }
            WireError::Timeout { millis } => {
                write!(f, "peer produced nothing for {millis} ms")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(err: CodecError) -> Self {
        WireError::Payload(err)
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    static TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// Frames `payload` under `kind`: header (magic, version, kind, length,
/// CRC) followed by the payload bytes.
///
/// # Panics
///
/// Panics when `payload` exceeds [`MAX_PAYLOAD`] — encoders size batches
/// far below the cap.
#[must_use]
pub fn seal_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload < 4 GiB");
    assert!(len <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut frame, MAGIC);
    frame.push(VERSION);
    frame.push(kind as u8);
    frame.extend_from_slice(&[0, 0]); // reserved
    put_u32(&mut frame, len);
    put_u32(&mut frame, crc32(payload));
    frame.extend_from_slice(payload);
    frame
}

/// A reusable batch-frame encoder: keeps the dictionary maps and scratch
/// buffer warm across frames so a steady producer allocates nothing per
/// batch once warm.  Dictionary lookups are dense `Vec`s indexed by the
/// arena id (epoch-stamped so `clear` is O(1)), not hash maps — the
/// per-row cost is an array index.
#[derive(Debug, Default)]
pub struct FrameEncoder {
    /// `inv_dict[id] = (epoch, dict index)`; valid when epoch matches.
    inv_dict: Vec<(u64, u32)>,
    resp_dict: Vec<(u64, u32)>,
    epoch: u64,
    payload: Vec<u8>,
    dict: Vec<u8>,
    rows: Vec<u8>,
}

impl FrameEncoder {
    /// A fresh encoder.
    #[must_use]
    pub fn new() -> Self {
        FrameEncoder::default()
    }

    /// Encodes `batch` (whose payload ids live in `arena`) as one sealed
    /// [`FrameKind::Batch`] frame: rows by dictionary index, each distinct
    /// payload encoded once.
    ///
    /// # Panics
    ///
    /// Panics when a payload id is unknown to `arena` (the batch was built
    /// against a different interner) or the encoded frame would exceed
    /// [`MAX_PAYLOAD`].
    #[must_use]
    pub fn encode_batch(
        &mut self,
        batch_id: u64,
        batch: &EventBatch,
        arena: &SharedInterner,
    ) -> Vec<u8> {
        self.encode_batch_traced(batch_id, batch, arena, batch.trace())
    }

    /// [`FrameEncoder::encode_batch`] with an explicit trace context,
    /// overriding whatever the batch itself carries — how a client stamps
    /// a *borrowed* batch at send time without cloning it.  `None` encodes
    /// the legacy extension-free framing.
    ///
    /// # Panics
    ///
    /// As [`FrameEncoder::encode_batch`].
    #[must_use]
    pub fn encode_batch_traced(
        &mut self,
        batch_id: u64,
        batch: &EventBatch,
        arena: &SharedInterner,
        trace: Option<TraceContext>,
    ) -> Vec<u8> {
        self.epoch += 1;
        let epoch = self.epoch;
        self.dict.clear();
        self.rows.clear();
        let mut inv_payloads: Vec<InvocationId> = Vec::new();
        let mut resp_payloads: Vec<ResponseId> = Vec::new();
        self.rows.reserve(batch.len() * 17);
        let mut row = [0u8; 17];
        for record in batch.iter() {
            row[0..8].copy_from_slice(&record.object.0.to_le_bytes());
            let proc = u32::try_from(record.proc.0).expect("< 2^32 procs");
            row[8..12].copy_from_slice(&proc.to_le_bytes());
            let (tag, index) = match record.action {
                EventAction::Invoke(id) => {
                    let slot = id.0 as usize;
                    if self.inv_dict.len() <= slot {
                        self.inv_dict.resize(slot + 1, (0, 0));
                    }
                    let entry = &mut self.inv_dict[slot];
                    if entry.0 != epoch {
                        *entry =
                            (epoch, u32::try_from(inv_payloads.len()).expect("dict fits u32"));
                        inv_payloads.push(id);
                    }
                    (0u8, entry.1)
                }
                EventAction::Respond(id) => {
                    let slot = id.0 as usize;
                    if self.resp_dict.len() <= slot {
                        self.resp_dict.resize(slot + 1, (0, 0));
                    }
                    let entry = &mut self.resp_dict[slot];
                    if entry.0 != epoch {
                        *entry =
                            (epoch, u32::try_from(resp_payloads.len()).expect("dict fits u32"));
                        resp_payloads.push(id);
                    }
                    (1u8, entry.1)
                }
            };
            row[12] = tag;
            row[13..17].copy_from_slice(&index.to_le_bytes());
            self.rows.extend_from_slice(&row);
        }
        put_u32(&mut self.dict, u32::try_from(inv_payloads.len()).expect("dict fits u32"));
        for id in &inv_payloads {
            put_invocation(&mut self.dict, &arena.resolve_invocation(*id));
        }
        put_u32(&mut self.dict, u32::try_from(resp_payloads.len()).expect("dict fits u32"));
        for id in &resp_payloads {
            put_response(&mut self.dict, &arena.resolve_response(*id));
        }
        self.payload.clear();
        put_u64(&mut self.payload, batch_id);
        put_u32(&mut self.payload, u32::try_from(batch.len()).expect("< 2^32 events"));
        self.payload.extend_from_slice(&self.dict);
        self.payload.extend_from_slice(&self.rows);
        // Versioned optional extension block: only stamped (sampled)
        // batches carry it, so unstamped traffic stays bit-identical to
        // the legacy framing.
        if let Some(ctx) = trace {
            self.payload.push(EXT_TRACE_CONTEXT);
            self.payload.push(TraceContext::WIRE_LEN as u8);
            self.payload.extend_from_slice(&ctx.to_bytes());
        }
        seal_frame(FrameKind::Batch, &self.payload)
    }
}

/// Encodes a credit grant.
#[must_use]
pub fn encode_credit(grant: u64, window: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    put_u64(&mut payload, grant);
    put_u64(&mut payload, window);
    seal_frame(FrameKind::Credit, &payload)
}

/// Encodes a batch refusal.
#[must_use]
pub fn encode_nack(batch_id: u64, reason: NackReason, detail: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(17);
    put_u64(&mut payload, batch_id);
    payload.push(reason as u8);
    put_u64(&mut payload, detail);
    seal_frame(FrameKind::Nack, &payload)
}

/// Encodes a run of verdicts.
///
/// # Panics
///
/// Panics on 2^32 or more events per frame (senders chunk far below).
#[must_use]
pub fn encode_verdicts(events: &[VerdictEvent]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + events.len() * 21);
    put_u32(&mut payload, u32::try_from(events.len()).expect("< 2^32 verdicts"));
    let mut row = [0u8; 21];
    for event in events {
        row[0..8].copy_from_slice(&event.object.0.to_le_bytes());
        row[8..16].copy_from_slice(&event.seq.to_le_bytes());
        let (tag, index) = match event.verdict {
            Verdict::Yes => (0u8, 0u32),
            Verdict::No => (1, 0),
            Verdict::Maybe(i) => (2, i),
        };
        row[16] = tag;
        row[17..21].copy_from_slice(&index.to_le_bytes());
        payload.extend_from_slice(&row);
    }
    seal_frame(FrameKind::Verdict, &payload)
}

/// Encodes a run-compressed [`FrameKind::VerdictBatch`] frame:
///
/// ```text
///  run_count u32   row_count u32
///  runs  run_count × (object u64, base_seq u64, len u32)
///  rows  row_count × (tag u8, index u32)
/// ```
///
/// The encoder splits `events` into maximal runs of same-object,
/// consecutive-`seq` verdicts, so the 16 bytes of `(object, seq)` that the
/// legacy [`encode_verdicts`] repeats per row are paid once per run — on
/// live traffic a row costs 5 bytes instead of 21.  Splitting is lossless:
/// any input (object changes, seq gaps, even out-of-order seqs) round-trips
/// to exactly the same event sequence.
///
/// # Panics
///
/// Panics on 2^32 or more events per frame (senders chunk far below).
#[must_use]
pub fn encode_verdict_batch(events: &[VerdictEvent]) -> Vec<u8> {
    let mut runs: Vec<(ObjectId, u64, u32)> = Vec::new();
    for event in events {
        match runs.last_mut() {
            Some((object, base, len))
                if *object == event.object
                    && *len < u32::MAX
                    && event.seq == base.wrapping_add(u64::from(*len)) =>
            {
                *len += 1;
            }
            _ => runs.push((event.object, event.seq, 1)),
        }
    }
    let mut payload = Vec::with_capacity(8 + runs.len() * 20 + events.len() * 5);
    put_u32(&mut payload, u32::try_from(runs.len()).expect("< 2^32 runs"));
    put_u32(&mut payload, u32::try_from(events.len()).expect("< 2^32 verdicts"));
    for (object, base, len) in &runs {
        put_u64(&mut payload, object.0);
        put_u64(&mut payload, *base);
        put_u32(&mut payload, *len);
    }
    let mut row = [0u8; 5];
    for event in events {
        let (tag, index) = match event.verdict {
            Verdict::Yes => (0u8, 0u32),
            Verdict::No => (1, 0),
            Verdict::Maybe(i) => (2, i),
        };
        row[0] = tag;
        row[1..5].copy_from_slice(&index.to_le_bytes());
        payload.extend_from_slice(&row);
    }
    seal_frame(FrameKind::VerdictBatch, &payload)
}

/// Encodes a stats request (empty [`FrameKind::Stats`] payload).
#[must_use]
pub fn encode_stats_request() -> Vec<u8> {
    seal_frame(FrameKind::Stats, &[])
}

/// Encodes a stats snapshot reply: the version byte ([`STATS_VERSION`]),
/// the flat engine counters, then the registry snapshot — counters and
/// gauges as `(name, value)` pairs, histograms as `(name, bucket seq,
/// sum)` (the count is the bucket sum, so it is not re-encoded).
///
/// # Panics
///
/// Panics when the encoded snapshot exceeds [`MAX_PAYLOAD`] (a registry
/// would need hundreds of thousands of metrics).
#[must_use]
pub fn encode_stats(reply: &StatsReply) -> Vec<u8> {
    let stats = &reply.engine;
    let snapshot = &reply.telemetry;
    let mut payload = Vec::with_capacity(
        64 + snapshot.counters.len() * 24
            + snapshot.gauges.len() * 24
            + snapshot.histograms.len() * (32 + BUCKETS * 8),
    );
    payload.push(STATS_VERSION);
    put_u32(&mut payload, stats.workers);
    put_u32(&mut payload, stats.shards);
    put_u64(&mut payload, stats.events);
    put_u64(&mut payload, stats.batches);
    put_u64(&mut payload, stats.steals);
    put_u64(&mut payload, stats.evicted);
    put_u64(&mut payload, stats.park_wakeups);
    put_u64(&mut payload, stats.backlog);
    put_u32(&mut payload, stats.connections);
    put_u32(&mut payload, u32::try_from(snapshot.counters.len()).expect("< 2^32 counters"));
    for (name, value) in &snapshot.counters {
        put_string(&mut payload, name);
        put_u64(&mut payload, *value);
    }
    put_u32(&mut payload, u32::try_from(snapshot.gauges.len()).expect("< 2^32 gauges"));
    for (name, value) in &snapshot.gauges {
        put_string(&mut payload, name);
        put_u64(&mut payload, *value as u64);
    }
    put_u32(&mut payload, u32::try_from(snapshot.histograms.len()).expect("< 2^32 histograms"));
    for (name, hist) in &snapshot.histograms {
        put_string(&mut payload, name);
        put_u64_seq(&mut payload, &hist.buckets);
        put_u64(&mut payload, hist.sum);
    }
    seal_frame(FrameKind::Stats, &payload)
}

/// Encodes a shutdown notice.
#[must_use]
pub fn encode_shutdown() -> Vec<u8> {
    seal_frame(FrameKind::Shutdown, &[])
}

/// Encodes a journal retirement record (see [`FrameKind::Evict`]).
#[must_use]
pub fn encode_evict(object: ObjectId) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8);
    put_u64(&mut payload, object.0);
    seal_frame(FrameKind::Evict, &payload)
}

/// Encodes a journal checkpoint record around a store-owned inner payload
/// (see [`FrameKind::Checkpoint`]).
///
/// # Panics
///
/// Panics when `payload` exceeds [`MAX_PAYLOAD`], like [`seal_frame`].
#[must_use]
pub fn encode_checkpoint(payload: &[u8]) -> Vec<u8> {
    seal_frame(FrameKind::Checkpoint, payload)
}

/// A validated frame header.
pub(crate) struct Header {
    kind: FrameKind,
    pub(crate) len: u32,
    crc: u32,
}

/// Validates the fixed-size header — the ONE copy of the header contract,
/// shared by the buffer and stream decoders and the reactor's
/// [`FrameAssembler`](crate::reactor::FrameAssembler).
pub(crate) fn parse_header(bytes: &[u8; HEADER_LEN]) -> Result<Header, WireError> {
    let mut header = Reader::new(bytes);
    let magic = header.u32("magic").expect("fixed-size header");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = header.u8("version").expect("fixed-size header");
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind_byte = header.u8("kind").expect("fixed-size header");
    let kind = FrameKind::from_u8(kind_byte).ok_or(WireError::UnknownKind(kind_byte))?;
    let _reserved = header.take(2, "reserved").expect("fixed-size header");
    let len = header.u32("payload length").expect("fixed-size header");
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let crc = header.u32("crc").expect("fixed-size header");
    Ok(Header { kind, len, crc })
}

/// Decodes one frame from the front of `bytes`, interning batch payloads
/// into `arena`.  Returns the frame and the bytes it consumed.
///
/// # Errors
///
/// A typed [`WireError`] on any malformed, truncated, corrupted or
/// oversized input — never a panic, never an allocation sized by
/// unvalidated input.
pub fn decode_frame(bytes: &[u8], arena: &SharedInterner) -> Result<(Frame, usize), WireError> {
    decode_frame_capped(bytes, arena, u32::MAX)
}

/// [`decode_frame`] with a row cap: a batch declaring more than `max_rows`
/// rows is rejected as [`WireError::TooManyRows`] **before anything is
/// interned into `arena`** — servers pass their credit window, so a peer
/// cannot grow the engine arena beyond what its credit admits.
///
/// # Errors
///
/// Like [`decode_frame`], plus [`WireError::TooManyRows`].
pub fn decode_frame_capped(
    bytes: &[u8],
    arena: &SharedInterner,
    max_rows: u32,
) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::TruncatedHeader { have: bytes.len() });
    }
    let header = parse_header(bytes[..HEADER_LEN].try_into().expect("length checked"))?;
    let available = bytes.len() - HEADER_LEN;
    if available < header.len as usize {
        return Err(WireError::TruncatedPayload { need: header.len, have: available });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + header.len as usize];
    let computed = crc32(payload);
    if computed != header.crc {
        return Err(WireError::CrcMismatch { declared: header.crc, computed });
    }
    let frame = decode_payload(header.kind, payload, arena, max_rows)?;
    Ok((frame, HEADER_LEN + header.len as usize))
}

fn decode_payload(
    kind: FrameKind,
    payload: &[u8],
    arena: &SharedInterner,
    max_rows: u32,
) -> Result<Frame, WireError> {
    let mut reader = Reader::new(payload);
    let frame = match kind {
        FrameKind::Batch => Frame::Batch(decode_batch(&mut reader, arena, max_rows)?),
        FrameKind::Credit => Frame::Credit {
            grant: reader.u64("credit grant")?,
            window: reader.u64("credit window")?,
        },
        FrameKind::Nack => {
            let batch_id = reader.u64("nack batch id")?;
            let reason_byte = reader.u8("nack reason")?;
            let reason = NackReason::from_u8(reason_byte).ok_or(WireError::Payload(
                CodecError::BadTag { what: "nack reason", tag: reason_byte },
            ))?;
            Frame::Nack { batch_id, reason, detail: reader.u64("nack detail")? }
        }
        FrameKind::Verdict => {
            // Each verdict row is 21 bytes, consumed as one slice.
            let count = reader.count(21, "verdict rows")?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let row = reader.take(21, "verdict row")?;
                let object =
                    ObjectId(u64::from_le_bytes(row[0..8].try_into().expect("8 bytes")));
                let seq = u64::from_le_bytes(row[8..16].try_into().expect("8 bytes"));
                let index = u32::from_le_bytes(row[17..21].try_into().expect("4 bytes"));
                let verdict = match row[16] {
                    0 => Verdict::Yes,
                    1 => Verdict::No,
                    2 => Verdict::Maybe(index),
                    tag => {
                        return Err(WireError::Payload(CodecError::BadTag {
                            what: "verdict",
                            tag,
                        }))
                    }
                };
                events.push(VerdictEvent { object, seq, verdict });
            }
            Frame::Verdicts(events)
        }
        FrameKind::VerdictBatch => {
            // Size caps first, exactly like batch decode: the run count is
            // bounded by remaining/20, the row count by remaining/5, and
            // every allocation below is sized only after the backing bytes
            // were actually taken off the payload.
            let runs = reader.count(20, "verdict runs")?;
            let rows = reader.count(5, "verdict batch rows")?;
            if runs > rows {
                // Every legitimate run covers ≥ 1 row — a fatter run table
                // is the same memory-growth probe as a dictionary overflow.
                return Err(WireError::DictOverflow { entries: runs as u64, rows: rows as u32 });
            }
            let run_bytes = reader.take(runs * 20, "verdict run table")?;
            let mut table: Vec<(ObjectId, u64, u32)> = Vec::with_capacity(runs);
            let mut summed = 0u64;
            for chunk in run_bytes.chunks_exact(20) {
                let object =
                    ObjectId(u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes")));
                let base = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
                let len = u32::from_le_bytes(chunk[16..20].try_into().expect("4 bytes"));
                summed += u64::from(len);
                table.push((object, base, len));
            }
            if summed != rows as u64 {
                return Err(WireError::BadRunTable { declared_rows: rows as u32, summed });
            }
            let row_bytes = reader.take(rows * 5, "verdict batch rows")?;
            // Validate every tag before surfacing anything.
            for chunk in row_bytes.chunks_exact(5) {
                if chunk[0] > 2 {
                    return Err(WireError::Payload(CodecError::BadTag {
                        what: "verdict",
                        tag: chunk[0],
                    }));
                }
            }
            let mut events = Vec::with_capacity(rows);
            let mut cursor = row_bytes.chunks_exact(5);
            for (object, base, len) in table {
                for offset in 0..u64::from(len) {
                    let chunk = cursor.next().expect("lengths sum to the row count");
                    let index = u32::from_le_bytes(chunk[1..5].try_into().expect("4 bytes"));
                    let verdict = match chunk[0] {
                        0 => Verdict::Yes,
                        1 => Verdict::No,
                        _ => Verdict::Maybe(index),
                    };
                    // Wrapping, like the legacy frame's arbitrary per-row
                    // seq field: a hostile base near u64::MAX yields odd
                    // seqs, never a panic.
                    events.push(VerdictEvent { object, seq: base.wrapping_add(offset), verdict });
                }
            }
            Frame::VerdictBatch(events)
        }
        FrameKind::Stats if payload.is_empty() => Frame::StatsRequest,
        FrameKind::Stats => Frame::Stats(Box::new(decode_stats_reply(&mut reader)?)),
        FrameKind::Shutdown => Frame::Shutdown,
        FrameKind::Evict => Frame::Evict { object: ObjectId(reader.u64("evicted object")?) },
        FrameKind::Checkpoint => {
            // Opaque to this layer: hand the whole (length- and
            // CRC-validated) payload to the store's decoder.
            let len = reader.remaining();
            Frame::Checkpoint(reader.take(len, "checkpoint payload")?.to_vec())
        }
    };
    if !reader.is_empty() {
        return Err(WireError::TrailingBytes { extra: reader.remaining() });
    }
    Ok(frame)
}

/// Decodes a non-empty [`FrameKind::Stats`] payload: the version byte
/// first (so layout drift across releases surfaces as the typed
/// [`WireError::BadStatsVersion`], not as garbled counters), then the flat
/// engine stats, then the registry snapshot.  Every collection length is
/// bounds-checked against the remaining payload before allocation
/// ([`Reader::count`]), and each histogram must carry exactly [`BUCKETS`]
/// buckets.
fn decode_stats_reply(reader: &mut Reader<'_>) -> Result<StatsReply, WireError> {
    let version = reader.u8("stats version")?;
    if version != STATS_VERSION {
        return Err(WireError::BadStatsVersion(version));
    }
    let engine = WireStats {
        workers: reader.u32("stats workers")?,
        shards: reader.u32("stats shards")?,
        events: reader.u64("stats events")?,
        batches: reader.u64("stats batches")?,
        steals: reader.u64("stats steals")?,
        evicted: reader.u64("stats evicted")?,
        park_wakeups: reader.u64("stats park wakeups")?,
        backlog: reader.u64("stats backlog")?,
        connections: reader.u32("stats connections")?,
    };
    // Each counter/gauge entry is ≥ 12 bytes (4-byte name length + 8-byte
    // value); each histogram ≥ 4 + 4 + 8 (empty name, bucket count, sum).
    let counter_count = reader.count(12, "stats counters")?;
    let mut counters = Vec::with_capacity(counter_count);
    for _ in 0..counter_count {
        let name = reader.string("counter name")?;
        counters.push((name, reader.u64("counter value")?));
    }
    let gauge_count = reader.count(12, "stats gauges")?;
    let mut gauges = Vec::with_capacity(gauge_count);
    for _ in 0..gauge_count {
        let name = reader.string("gauge name")?;
        gauges.push((name, reader.u64("gauge value")? as i64));
    }
    let hist_count = reader.count(16, "stats histograms")?;
    let mut histograms = Vec::with_capacity(hist_count);
    for _ in 0..hist_count {
        let name = reader.string("histogram name")?;
        let bucket_seq = reader.u64_seq("histogram buckets")?;
        if bucket_seq.len() != BUCKETS {
            return Err(WireError::BadStatsHistogram { buckets: bucket_seq.len() as u64 });
        }
        let mut hist = HistogramSnapshot::default();
        hist.buckets.copy_from_slice(&bucket_seq);
        // The count is definitionally the bucket sum — derived, not
        // trusted off the wire.
        hist.count = hist.buckets.iter().fold(0u64, |acc, &n| acc.wrapping_add(n));
        hist.sum = reader.u64("histogram sum")?;
        histograms.push((name, hist));
    }
    Ok(StatsReply { engine, telemetry: Snapshot { counters, gauges, histograms } })
}

/// Decodes a batch payload, interning each dictionary entry once into
/// `arena` (the arena-interning rule of the module docs).  The structural
/// caps — row count vs `max_rows`, dictionary entries vs rows — are
/// enforced **before** the first intern, so a refused frame leaves the
/// (append-only) arena untouched.
fn decode_batch(
    reader: &mut Reader<'_>,
    arena: &SharedInterner,
    max_rows: u32,
) -> Result<WireBatch, WireError> {
    let batch_id = reader.u64("batch id")?;
    // Each row is 8 + 4 + 1 + 4 = 17 bytes; the declared count can never
    // exceed remaining/17 in a valid frame (the dictionaries only add).
    let rows = reader.count(17, "batch rows")?;
    if rows as u64 > u64::from(max_rows) {
        return Err(WireError::TooManyRows {
            batch_id,
            rows: rows as u32,
            limit: max_rows,
        });
    }
    // Every encoded invocation/response is ≥ 1 byte.  Both dictionaries
    // are PARSED (into locals) before anything is interned: the arena is
    // append-only, so a frame refused by any later check — the combined
    // DictOverflow below, a truncated entry, a bad row — must leave it
    // untouched, or refusals would still grow server memory.
    let inv_count = reader.count(1, "invocation dictionary")?;
    if inv_count > rows {
        return Err(WireError::DictOverflow { entries: inv_count as u64, rows: rows as u32 });
    }
    let mut invocations = Vec::with_capacity(inv_count);
    for _ in 0..inv_count {
        invocations.push(take_invocation(reader)?);
    }
    let resp_count = reader.count(1, "response dictionary")?;
    if inv_count + resp_count > rows {
        return Err(WireError::DictOverflow {
            entries: (inv_count + resp_count) as u64,
            rows: rows as u32,
        });
    }
    let mut responses = Vec::with_capacity(resp_count);
    for _ in 0..resp_count {
        responses.push(take_response(reader)?);
    }
    // All row bytes in one bounds check (rows*17 cannot overflow: rows was
    // validated against remaining/17), then two passes: validate every tag
    // and dictionary index FIRST, intern only once the whole frame is
    // known-good, then build.
    let row_bytes = reader.take(rows * 17, "batch rows")?;
    for chunk in row_bytes.chunks_exact(17) {
        let index = u32::from_le_bytes(chunk[13..17].try_into().expect("4 bytes"));
        let len = match chunk[12] {
            0 => inv_count,
            1 => resp_count,
            tag => {
                return Err(WireError::Payload(CodecError::BadTag { what: "row action", tag }))
            }
        };
        if index as usize >= len {
            return Err(WireError::BadDictIndex { index, len: len as u32 });
        }
    }
    // The optional trace-context extension trails the rows.  Validate it
    // here — still before the intern step below — so a malformed context
    // refuses the frame without growing the arena, same as every other
    // refusal.  A declared length beyond the fixed context size is fine
    // (a newer peer may extend the block); the extra bytes are consumed
    // and ignored.
    let trace = if reader.is_empty() {
        None
    } else {
        let tag = reader.u8("extension tag")?;
        if tag != EXT_TRACE_CONTEXT {
            return Err(WireError::BadTraceContext { what: "unknown extension tag" });
        }
        let len = reader.u8("extension length")? as usize;
        if len < TraceContext::WIRE_LEN {
            return Err(WireError::BadTraceContext { what: "extension shorter than a context" });
        }
        let bytes = reader.take(len, "trace context")?;
        Some(TraceContext::from_bytes(
            bytes[..TraceContext::WIRE_LEN].try_into().expect("length checked"),
        ))
    };
    let inv_ids: Vec<InvocationId> =
        invocations.iter().map(|invocation| arena.invocation(invocation)).collect();
    let resp_ids: Vec<ResponseId> =
        responses.iter().map(|response| arena.response(response)).collect();
    let mut events = EventBatch::with_capacity(rows);
    for chunk in row_bytes.chunks_exact(17) {
        let object = ObjectId(u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes")));
        let proc = ProcId(u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes")) as usize);
        let index = u32::from_le_bytes(chunk[13..17].try_into().expect("4 bytes")) as usize;
        let action = match chunk[12] {
            0 => EventAction::Invoke(inv_ids[index]),
            _ => EventAction::Respond(resp_ids[index]),
        };
        events.push(EventRecord { object, proc, action });
    }
    events.set_trace(trace);
    Ok(WireBatch { batch_id, events })
}

/// How reading a frame off a byte stream can end.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// An I/O error (includes mid-frame EOF).
    Io(io::Error),
    /// The bytes arrived but did not decode.
    Wire(WireError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Closed => f.write_str("peer closed the stream"),
            ReadError::Io(err) => write!(f, "i/o: {err}"),
            ReadError::Wire(err) => write!(f, "wire: {err}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Reads exactly `buf.len()` bytes; distinguishes EOF-at-start (clean
/// close) from EOF-mid-buffer (truncation).
fn read_full(stream: &mut impl Read, buf: &mut [u8]) -> Result<(), ReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(ReadError::Closed),
            Ok(0) => {
                return Err(ReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended {filled} bytes into a frame"),
                )))
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(ReadError::Io(err)),
        }
    }
    Ok(())
}

/// Reads one frame from `stream`, interning batch payloads into `arena`.
///
/// # Errors
///
/// [`ReadError::Closed`] on a clean close between frames, [`ReadError::Io`]
/// on transport errors (including mid-frame EOF), [`ReadError::Wire`] on
/// malformed bytes.
pub fn read_frame(stream: &mut impl Read, arena: &SharedInterner) -> Result<Frame, ReadError> {
    read_frame_capped(stream, arena, u32::MAX)
}

/// Reads one whole raw frame (validated header + payload bytes) off
/// `stream` without decoding the payload — for callers whose decode
/// parameters depend on state that may change while the read blocks (the
/// server computes its row cap from the *current* credit only once the
/// frame has actually arrived).  Feed the result to
/// [`decode_frame_capped`].
///
/// # Errors
///
/// [`ReadError::Closed`] on a clean close between frames, [`ReadError::Io`]
/// on transport errors (including mid-frame EOF), [`ReadError::Wire`] on a
/// malformed header or truncated payload.
pub fn read_raw_frame(stream: &mut impl Read) -> Result<Vec<u8>, ReadError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    read_full(stream, &mut header_bytes)?;
    // Validate the header before trusting its length field.
    let header = parse_header(&header_bytes).map_err(ReadError::Wire)?;
    let len = header.len;
    let mut frame = vec![0u8; HEADER_LEN + len as usize];
    frame[..HEADER_LEN].copy_from_slice(&header_bytes);
    match read_full(stream, &mut frame[HEADER_LEN..]) {
        Ok(()) => Ok(frame),
        Err(ReadError::Closed) if len > 0 => {
            Err(ReadError::Wire(WireError::TruncatedPayload { need: len, have: 0 }))
        }
        Err(err) => Err(err),
    }
}

/// [`read_frame`] with the row cap of [`decode_frame_capped`]: batches
/// declaring more rows than `max_rows` are consumed off the stream but
/// rejected as [`WireError::TooManyRows`] before anything interns.
///
/// # Errors
///
/// Like [`read_frame`].
pub fn read_frame_capped(
    stream: &mut impl Read,
    arena: &SharedInterner,
    max_rows: u32,
) -> Result<Frame, ReadError> {
    let frame = read_raw_frame(stream)?;
    let (decoded, consumed) = decode_frame_capped(&frame, arena, max_rows).map_err(ReadError::Wire)?;
    debug_assert_eq!(consumed, frame.len());
    Ok(decoded)
}

/// Writes one pre-sealed frame to `stream`.
///
/// # Errors
///
/// Propagates the transport error.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drv_lang::{Invocation, Response, Symbol};

    fn sample_batch(arena: &SharedInterner) -> EventBatch {
        let mut batch = EventBatch::new();
        batch.push_symbol(ObjectId(7), &Symbol::invoke(ProcId(0), Invocation::Write(1)), arena);
        batch.push_symbol(ObjectId(7), &Symbol::respond(ProcId(0), Response::Ack), arena);
        batch.push_symbol(ObjectId(9), &Symbol::invoke(ProcId(1), Invocation::Read), arena);
        batch.push_symbol(ObjectId(9), &Symbol::respond(ProcId(1), Response::Value(1)), arena);
        batch.push_symbol(ObjectId(7), &Symbol::invoke(ProcId(1), Invocation::Read), arena);
        batch
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn batch_frames_round_trip_across_arenas() {
        let sender = SharedInterner::new();
        let batch = sample_batch(&sender);
        let frame = FrameEncoder::new().encode_batch(42, &batch, &sender);
        let receiver = SharedInterner::new();
        // Pre-populate the receiver arena so ids differ from the sender's.
        let _ = receiver.invocation(&Invocation::Inc);
        let (decoded, consumed) = decode_frame(&frame, &receiver).expect("valid frame");
        assert_eq!(consumed, frame.len());
        let Frame::Batch(wire_batch) = decoded else { panic!("not a batch") };
        assert_eq!(wire_batch.batch_id, 42);
        assert_eq!(wire_batch.events.len(), batch.len());
        // Same symbols after resolving through each side's own arena.
        let mut sent = drv_lang::InternerMirror::new();
        sent.sync(&sender);
        let mut got = drv_lang::InternerMirror::new();
        got.sync(&receiver);
        for index in 0..batch.len() {
            assert_eq!(
                wire_batch.events.get(index).resolve(&got),
                batch.get(index).resolve(&sent),
                "row {index}"
            );
            assert_eq!(wire_batch.events.get(index).object, batch.get(index).object);
        }
        // The dictionary interned each distinct payload once: 2 invocations
        // (write 1, read), 2 responses (ack, value 1) — plus the pre-seeded
        // Inc.
        assert_eq!(receiver.versions(), (3, 2));
    }

    #[test]
    fn control_frames_round_trip() {
        let arena = SharedInterner::new();
        let frames = [
            (encode_credit(64, 256), Frame::Credit { grant: 64, window: 256 }),
            (
                encode_nack(9, NackReason::CreditExceeded, 100),
                Frame::Nack { batch_id: 9, reason: NackReason::CreditExceeded, detail: 100 },
            ),
            (
                encode_verdicts(&[
                    VerdictEvent { object: ObjectId(1), seq: 0, verdict: Verdict::Yes },
                    VerdictEvent { object: ObjectId(1), seq: 1, verdict: Verdict::No },
                    VerdictEvent { object: ObjectId(2), seq: 0, verdict: Verdict::Maybe(3) },
                ]),
                Frame::Verdicts(vec![
                    VerdictEvent { object: ObjectId(1), seq: 0, verdict: Verdict::Yes },
                    VerdictEvent { object: ObjectId(1), seq: 1, verdict: Verdict::No },
                    VerdictEvent { object: ObjectId(2), seq: 0, verdict: Verdict::Maybe(3) },
                ]),
            ),
            (
                encode_verdict_batch(&[
                    VerdictEvent { object: ObjectId(1), seq: 0, verdict: Verdict::Yes },
                    VerdictEvent { object: ObjectId(1), seq: 1, verdict: Verdict::No },
                    VerdictEvent { object: ObjectId(2), seq: 0, verdict: Verdict::Maybe(3) },
                ]),
                Frame::VerdictBatch(vec![
                    VerdictEvent { object: ObjectId(1), seq: 0, verdict: Verdict::Yes },
                    VerdictEvent { object: ObjectId(1), seq: 1, verdict: Verdict::No },
                    VerdictEvent { object: ObjectId(2), seq: 0, verdict: Verdict::Maybe(3) },
                ]),
            ),
            (encode_stats_request(), Frame::StatsRequest),
            (
                encode_stats(&StatsReply {
                    engine: WireStats { workers: 2, shards: 8, events: 100, ..WireStats::default() },
                    telemetry: Snapshot::default(),
                }),
                Frame::Stats(Box::new(StatsReply {
                    engine: WireStats { workers: 2, shards: 8, events: 100, ..WireStats::default() },
                    telemetry: Snapshot::default(),
                })),
            ),
            (encode_shutdown(), Frame::Shutdown),
        ];
        for (bytes, expected) in frames {
            let (frame, consumed) = decode_frame(&bytes, &arena).expect("valid frame");
            assert_eq!(consumed, bytes.len());
            assert_eq!(frame, expected);
        }
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let arena = SharedInterner::new();
        let mut frame = encode_credit(1, 2);
        *frame.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            decode_frame(&frame, &arena),
            Err(WireError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn header_validation_rejects_garbage() {
        let arena = SharedInterner::new();
        let good = encode_shutdown();
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 1;
        assert!(matches!(decode_frame(&bad_magic, &arena), Err(WireError::BadMagic(_))));
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_eq!(decode_frame(&bad_version, &arena), Err(WireError::BadVersion(99)));
        let mut bad_kind = good.clone();
        bad_kind[5] = 200;
        assert_eq!(decode_frame(&bad_kind, &arena), Err(WireError::UnknownKind(200)));
        let mut oversized = good.clone();
        oversized[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(decode_frame(&oversized, &arena), Err(WireError::Oversized(MAX_PAYLOAD + 1)));
        assert!(matches!(
            decode_frame(&good[..HEADER_LEN - 1], &arena),
            Err(WireError::TruncatedHeader { .. })
        ));
    }

    #[test]
    fn bad_dict_index_is_typed_not_a_panic() {
        let sender = SharedInterner::new();
        let batch = sample_batch(&sender);
        let mut frame = FrameEncoder::new().encode_batch(0, &batch, &sender);
        // The last row's dict index is the final 4 bytes; point it at 200.
        let len = frame.len();
        frame[len - 4..].copy_from_slice(&200u32.to_le_bytes());
        // Re-seal the CRC so only the index is wrong.
        let crc = crc32(&frame[HEADER_LEN..]);
        frame[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame, &SharedInterner::new()),
            Err(WireError::BadDictIndex { index: 200, .. })
        ));
    }

    #[test]
    fn row_cap_rejects_before_interning() {
        let sender = SharedInterner::new();
        let batch = sample_batch(&sender);
        let frame = FrameEncoder::new().encode_batch(9, &batch, &sender);
        let receiver = SharedInterner::new();
        assert_eq!(
            decode_frame_capped(&frame, &receiver, 2),
            Err(WireError::TooManyRows { batch_id: 9, rows: 5, limit: 2 })
        );
        // Nothing of the refused frame reached the arena.
        assert_eq!(receiver.versions(), (0, 0));
        // At the cap exactly, the frame decodes.
        assert!(decode_frame_capped(&frame, &receiver, 5).is_ok());
    }

    #[test]
    fn trace_context_extension_round_trips() {
        let sender = SharedInterner::new();
        let mut batch = sample_batch(&sender);
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF_CAFE, parent_span: 7, flags: 1 };
        batch.set_trace(Some(ctx));
        let frame = FrameEncoder::new().encode_batch(3, &batch, &sender);
        let receiver = SharedInterner::new();
        let (decoded, consumed) = decode_frame(&frame, &receiver).expect("stamped frame decodes");
        assert_eq!(consumed, frame.len());
        match decoded {
            Frame::Batch(wire) => {
                assert_eq!(wire.events.trace(), Some(ctx));
                assert_eq!(wire.events.len(), batch.len());
            }
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn unstamped_batches_stay_bit_identical_to_legacy_framing() {
        let sender = SharedInterner::new();
        let batch = sample_batch(&sender);
        let plain = FrameEncoder::new().encode_batch(3, &batch, &sender);
        // A stamped frame is exactly the legacy frame plus the 18-byte
        // extension (tag + length + 16 context bytes) before the CRC is
        // recomputed: the legacy prefix is untouched.
        let mut stamped_batch = sample_batch(&sender);
        stamped_batch.set_trace(Some(TraceContext::sampled_root(9)));
        let stamped = FrameEncoder::new().encode_batch(3, &stamped_batch, &sender);
        assert_eq!(stamped.len(), plain.len() + 2 + TraceContext::WIRE_LEN);
        assert_eq!(&stamped[HEADER_LEN..plain.len()], &plain[HEADER_LEN..]);
        // And a plain frame still decodes to a context-free batch.
        let (decoded, _) = decode_frame(&plain, &SharedInterner::new()).expect("legacy decodes");
        match decoded {
            Frame::Batch(wire) => assert_eq!(wire.events.trace(), None),
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn longer_trace_extensions_from_newer_peers_are_tolerated() {
        // A future peer may grow the extension block; today's decoder takes
        // the declared length and reads only the prefix it understands.
        let sender = SharedInterner::new();
        let mut batch = sample_batch(&sender);
        batch.set_trace(Some(TraceContext { trace_id: 42, parent_span: 0, flags: 1 }));
        let mut frame = FrameEncoder::new().encode_batch(1, &batch, &sender);
        // Inflate the declared extension length and append 4 extra bytes.
        let len_at = frame.len() - TraceContext::WIRE_LEN - 1;
        frame[len_at] = (TraceContext::WIRE_LEN + 4) as u8;
        frame.extend_from_slice(&[0xAA; 4]);
        let payload_len = (frame.len() - HEADER_LEN) as u32;
        frame[8..12].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&frame[HEADER_LEN..]);
        frame[12..16].copy_from_slice(&crc.to_le_bytes());
        let (decoded, _) = decode_frame(&frame, &SharedInterner::new()).expect("wider ext ok");
        match decoded {
            Frame::Batch(wire) => {
                assert_eq!(wire.events.trace().map(|c| c.trace_id), Some(42));
            }
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_trace_extensions_refuse_without_interning() {
        let sender = SharedInterner::new();
        let mut batch = sample_batch(&sender);
        batch.set_trace(Some(TraceContext::sampled_root(5)));
        let good = FrameEncoder::new().encode_batch(1, &batch, &sender);
        let ext_at = good.len() - 2 - TraceContext::WIRE_LEN;
        let reseal = |mut bytes: Vec<u8>| -> Vec<u8> {
            let payload_len = (bytes.len() - HEADER_LEN) as u32;
            bytes[8..12].copy_from_slice(&payload_len.to_le_bytes());
            let crc = crc32(&bytes[HEADER_LEN..]);
            bytes[12..16].copy_from_slice(&crc.to_le_bytes());
            bytes
        };
        // Unknown extension tag.
        let mut bad_tag = good.clone();
        bad_tag[ext_at] = 99;
        let bad_tag = reseal(bad_tag);
        // Declared length below the fixed context size.
        let mut short_len = good.clone();
        short_len[ext_at + 1] = (TraceContext::WIRE_LEN - 1) as u8;
        let short_len = reseal(short_len);
        // Declared length beyond what the payload holds.
        let truncated = reseal(good[..good.len() - 4].to_vec());
        for (frame, what) in [
            (bad_tag, "unknown tag"),
            (short_len, "short length"),
        ] {
            let arena = SharedInterner::new();
            assert!(
                matches!(decode_frame(&frame, &arena), Err(WireError::BadTraceContext { .. })),
                "{what} must refuse with a typed error"
            );
            assert_eq!(arena.versions(), (0, 0), "{what} must not intern");
        }
        let arena = SharedInterner::new();
        assert!(
            matches!(decode_frame(&truncated, &arena), Err(WireError::Payload(_))),
            "truncated context bytes must refuse with a typed error"
        );
        assert_eq!(arena.versions(), (0, 0), "truncation must not intern");
    }

    #[test]
    fn dictionary_only_frames_cannot_grow_the_arena() {
        // Hand-build a batch payload claiming 0 rows but a 1-entry
        // invocation dictionary: a memory-growth probe (real encoders only
        // ship referenced payloads).  It must be refused before interning.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // batch id
        put_u32(&mut payload, 0); // rows
        put_u32(&mut payload, 1); // invocation dict count
        drv_lang::wire::put_invocation(&mut payload, &Invocation::Custom("grow".into(), 0));
        put_u32(&mut payload, 0); // response dict count
        let frame = seal_frame(FrameKind::Batch, &payload);
        let arena = SharedInterner::new();
        assert_eq!(
            decode_frame(&frame, &arena),
            Err(WireError::DictOverflow { entries: 1, rows: 0 })
        );
        assert_eq!(arena.versions(), (0, 0), "the probe must not intern");
    }

    #[test]
    fn refused_frames_never_intern_regardless_of_where_they_fail() {
        // The combined-dictionary overflow (rows=1, 1 invocation + 1
        // response) fails AFTER the invocation entry was parsed — it must
        // still leave the arena untouched.
        let mut payload = Vec::new();
        put_u64(&mut payload, 2); // batch id
        put_u32(&mut payload, 1); // rows
        put_u32(&mut payload, 1); // invocation dict count
        drv_lang::wire::put_invocation(&mut payload, &Invocation::Custom("grow".into(), 0));
        put_u32(&mut payload, 1); // response dict count
        drv_lang::wire::put_response(&mut payload, &Response::Ack);
        payload.extend_from_slice(&[0u8; 17]); // one row
        let frame = seal_frame(FrameKind::Batch, &payload);
        let arena = SharedInterner::new();
        assert_eq!(
            decode_frame(&frame, &arena),
            Err(WireError::DictOverflow { entries: 2, rows: 1 })
        );
        assert_eq!(arena.versions(), (0, 0));
        // A bad row (dict index out of range) also refuses pre-intern.
        let sender = SharedInterner::new();
        let batch = sample_batch(&sender);
        let mut bad = FrameEncoder::new().encode_batch(0, &batch, &sender);
        let len = bad.len();
        bad[len - 4..].copy_from_slice(&200u32.to_le_bytes());
        let crc = crc32(&bad[HEADER_LEN..]);
        bad[12..16].copy_from_slice(&crc.to_le_bytes());
        let arena = SharedInterner::new();
        assert!(matches!(decode_frame(&bad, &arena), Err(WireError::BadDictIndex { .. })));
        assert_eq!(arena.versions(), (0, 0), "a bad row must refuse before interning");
    }

    #[test]
    fn verdict_batch_run_compression_is_lossless() {
        // Seq gaps, object alternation, and out-of-order seqs all split
        // runs; the round trip is exact regardless.
        let awkward = vec![
            VerdictEvent { object: ObjectId(5), seq: 0, verdict: Verdict::Yes },
            VerdictEvent { object: ObjectId(5), seq: 1, verdict: Verdict::Yes },
            VerdictEvent { object: ObjectId(5), seq: 7, verdict: Verdict::No }, // gap
            VerdictEvent { object: ObjectId(6), seq: 0, verdict: Verdict::Maybe(1) },
            VerdictEvent { object: ObjectId(5), seq: 8, verdict: Verdict::Yes },
            VerdictEvent { object: ObjectId(5), seq: 2, verdict: Verdict::Yes }, // backwards
        ];
        let frame = encode_verdict_batch(&awkward);
        let (decoded, consumed) =
            decode_frame(&frame, &SharedInterner::new()).expect("valid frame");
        assert_eq!(consumed, frame.len());
        assert_eq!(decoded, Frame::VerdictBatch(awkward));
        // A long run amortizes: 256 consecutive verdicts of one object cost
        // one 20-byte run entry + 5 bytes/row, vs 21 bytes/row legacy.
        let long: Vec<VerdictEvent> = (0..256)
            .map(|seq| VerdictEvent { object: ObjectId(1), seq, verdict: Verdict::Yes })
            .collect();
        let batched = encode_verdict_batch(&long);
        let legacy = encode_verdicts(&long);
        assert!(batched.len() * 3 < legacy.len(), "{} vs {}", batched.len(), legacy.len());
        let (redecoded, _) = decode_frame(&batched, &SharedInterner::new()).expect("valid");
        assert_eq!(redecoded, Frame::VerdictBatch(long));
        // Empty batches round-trip too.
        let empty = encode_verdict_batch(&[]);
        assert_eq!(
            decode_frame(&empty, &SharedInterner::new()).expect("valid").0,
            Frame::VerdictBatch(Vec::new())
        );
    }

    #[test]
    fn verdict_batch_structural_probes_are_typed_errors() {
        let events = [
            VerdictEvent { object: ObjectId(1), seq: 0, verdict: Verdict::Yes },
            VerdictEvent { object: ObjectId(1), seq: 1, verdict: Verdict::No },
        ];
        let good = encode_verdict_batch(&events);
        let arena = SharedInterner::new();
        let reseal = |frame: &mut Vec<u8>| {
            let crc = crc32(&frame[HEADER_LEN..]);
            frame[12..16].copy_from_slice(&crc.to_le_bytes());
        };
        // Row-count inflation (re-sealed CRC): the declared count no longer
        // fits the remaining bytes — refused before allocation.
        let mut inflated = good.clone();
        inflated[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&1000u32.to_le_bytes());
        reseal(&mut inflated);
        assert!(matches!(
            decode_frame(&inflated, &arena),
            Err(WireError::Payload(CodecError::LengthOverflow { .. }))
        ));
        // More runs than rows: the run-table analogue of DictOverflow.
        let mut payload = Vec::new();
        put_u32(&mut payload, 2); // runs
        put_u32(&mut payload, 1); // rows
        for _ in 0..2 {
            put_u64(&mut payload, 1);
            put_u64(&mut payload, 0);
            put_u32(&mut payload, 1);
        }
        payload.extend_from_slice(&[0u8; 5]);
        // Pad so the lenient per-field caps pass and the structural check
        // is what fires.
        payload.extend_from_slice(&[0u8; 64]);
        let frame = seal_frame(FrameKind::VerdictBatch, &payload);
        assert_eq!(
            decode_frame(&frame, &arena),
            Err(WireError::DictOverflow { entries: 2, rows: 1 })
        );
        // Run lengths that do not sum to the row count.
        let mut mismatched = good.clone();
        // The single run's len field is the last 4 bytes of the run table.
        let len_at = HEADER_LEN + 8 + 16;
        mismatched[len_at..len_at + 4].copy_from_slice(&1u32.to_le_bytes());
        reseal(&mut mismatched);
        assert_eq!(
            decode_frame(&mismatched, &arena),
            Err(WireError::BadRunTable { declared_rows: 2, summed: 1 })
        );
        // A bad verdict tag is the same typed error as the legacy frame's.
        let mut bad_tag = good.clone();
        let tag_at = HEADER_LEN + 8 + 20; // first row's tag byte
        bad_tag[tag_at] = 9;
        reseal(&mut bad_tag);
        assert_eq!(
            decode_frame(&bad_tag, &arena),
            Err(WireError::Payload(CodecError::BadTag { what: "verdict", tag: 9 }))
        );
        // Truncation inside the run table is typed, not a panic.
        assert!(decode_frame(&good[..good.len() - 12], &arena).is_err());
    }

    #[test]
    fn populated_stats_replies_round_trip() {
        let tel = drv_telemetry::Telemetry::new();
        tel.registry().counter("net_batches").add(17);
        tel.registry().gauge("engine_queue_depth").add(-3);
        let h = tel.registry().histogram("net_decode_ns");
        h.record(0);
        h.record(900);
        h.record(70_000);
        let reply = StatsReply {
            engine: WireStats { workers: 4, shards: 16, events: 9000, ..WireStats::default() },
            telemetry: tel.snapshot(),
        };
        let frame = encode_stats(&reply);
        let (decoded, consumed) =
            decode_frame(&frame, &SharedInterner::new()).expect("valid frame");
        assert_eq!(consumed, frame.len());
        let Frame::Stats(got) = decoded else { panic!("not a stats reply") };
        assert_eq!(*got, reply, "the snapshot survives the wire verbatim");
        let hist = got.telemetry.histogram("net_decode_ns").expect("histogram");
        assert_eq!(hist.count, 3, "count re-derives from the bucket sum");
        assert_eq!(hist.sum, 70_900);
    }

    #[test]
    fn stats_version_mismatch_is_a_typed_error() {
        let mut frame = encode_stats(&StatsReply::default());
        // The version byte is the first payload byte; claim version 9 and
        // re-seal the CRC so only the version is wrong.
        frame[HEADER_LEN] = 9;
        let crc = crc32(&frame[HEADER_LEN..]);
        frame[12..16].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&frame, &SharedInterner::new()),
            Err(WireError::BadStatsVersion(9))
        );
    }

    #[test]
    fn stats_histograms_must_carry_the_fixed_bucket_count() {
        // Hand-build a version-2 payload whose one histogram declares 3
        // buckets: the log₂ layout mandates exactly BUCKETS.
        let flat = encode_stats(&StatsReply::default());
        let mut payload = flat[HEADER_LEN..].to_vec();
        // Replace the trailing (0 counters, 0 gauges, 0 histograms) tail:
        // the last 4 bytes are the histogram count.
        let len = payload.len();
        payload.truncate(len - 4);
        put_u32(&mut payload, 1);
        put_string(&mut payload, "short");
        put_u64_seq(&mut payload, &[1, 2, 3]);
        put_u64(&mut payload, 6);
        let frame = seal_frame(FrameKind::Stats, &payload);
        assert_eq!(
            decode_frame(&frame, &SharedInterner::new()),
            Err(WireError::BadStatsHistogram { buckets: 3 })
        );
    }

    #[test]
    fn stream_reader_distinguishes_clean_close_from_truncation() {
        let arena = SharedInterner::new();
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty, &arena), Err(ReadError::Closed)));
        let frame = encode_credit(1, 2);
        let mut truncated = &frame[..frame.len() - 3];
        match read_frame(&mut truncated, &arena) {
            Err(ReadError::Io(err)) => assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected mid-frame EOF, got {other:?}"),
        }
        let mut whole: &[u8] = &frame;
        assert!(matches!(read_frame(&mut whole, &arena), Ok(Frame::Credit { grant: 1, window: 2 })));
    }
}
