//! Connection-churn soaks for the reactor: hundreds of connect/disconnect
//! cycles mid-stream, a deliberately slow consumer, and the flat-thread
//! guarantee.  The acceptance bar stays the differential one — surviving
//! connections' wire verdict streams must remain bit-identical to the
//! in-process [`sequential_reference`] no matter how much the connection
//! table thrashes around them.

use drv_adversary::{merge_random, register_object_stream, RegisterStreamShape};
use drv_core::{CheckerMonitorFactory, ObjectMonitorFactory, RoutingMonitorFactory, Verdict};
use drv_engine::{sequential_reference, EngineConfig, VerdictEvent};
use drv_lang::{EventBatch, Invocation, ObjectId, ProcId, Response, SharedInterner, Symbol};
use drv_net::{MonitorClient, MonitorServer, ServerConfig};
use drv_spec::Register;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROCESSES: usize = 2;
const DEADLINE: Duration = Duration::from_secs(60);

fn mixed_factory() -> Arc<RoutingMonitorFactory> {
    let lin = Arc::new(CheckerMonitorFactory::linearizability(Register::new(), PROCESSES))
        as Arc<dyn ObjectMonitorFactory>;
    let sc = Arc::new(CheckerMonitorFactory::sequential_consistency(
        Register::new(),
        PROCESSES,
    )) as Arc<dyn ObjectMonitorFactory>;
    Arc::new(RoutingMonitorFactory::new("mixed LIN/SC", move |object: ObjectId| {
        if object.0.is_multiple_of(2) {
            Arc::clone(&lin)
        } else {
            Arc::clone(&sc)
        }
    }))
}

fn merged_stream(seed: u64, objects: u64, ops: usize) -> Vec<(ObjectId, Symbol)> {
    let shape = RegisterStreamShape::differential();
    let mut rng = StdRng::seed_from_u64(seed);
    let per_object: Vec<(ObjectId, Vec<Symbol>)> = (0..objects)
        .map(|i| (ObjectId(seed * 64 + i), register_object_stream(&mut rng, ops, &shape)))
        .collect();
    merge_random(&mut rng, per_object)
}

fn streams_of(events: &[VerdictEvent], context: &str) -> BTreeMap<ObjectId, Vec<Verdict>> {
    let mut streams: BTreeMap<ObjectId, Vec<Verdict>> = BTreeMap::new();
    for event in events {
        let stream = streams.entry(event.object).or_default();
        assert_eq!(
            event.seq,
            stream.len() as u64,
            "{context}: {} verdicts out of order",
            event.object
        );
        stream.push(event.verdict);
    }
    streams
}

fn drain_exactly(client: &MonitorClient, expected: usize, context: &str) -> Vec<VerdictEvent> {
    let mut received = Vec::new();
    let start = Instant::now();
    while received.len() < expected {
        assert!(
            start.elapsed() < DEADLINE,
            "{context}: only {} of {expected} verdicts after {DEADLINE:?}",
            received.len()
        );
        received.extend(client.wait_verdicts(Duration::from_millis(100)));
        assert!(!client.is_closed() || received.len() >= expected, "{context}: closed early");
    }
    assert_eq!(received.len(), expected, "{context}: too many verdicts");
    received
}

/// 200 connect/disconnect cycles — a mix of clean shutdowns, hard drops,
/// and connect-then-vanish ghosts — thrash the reactor's connection table
/// while one survivor streams its whole workload in slices.  The
/// survivor's wire verdict stream must equal the sequential reference
/// exactly, and every churned connection must be accounted for.
#[test]
fn reconnect_storm_preserves_surviving_streams() {
    const CYCLES: u64 = 200;
    let survivor_events = merged_stream(1, 4, 40);
    let expected = sequential_reference(mixed_factory().as_ref(), &survivor_events);
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(2).with_max_pending(2048),
        mixed_factory(),
        ServerConfig::new(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut survivor = MonitorClient::connect(addr).expect("connect survivor");
    let mut received: Vec<VerdictEvent> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x5708);
    // Interleave: a slice of the survivor's stream, then one churn cycle.
    let slice = survivor_events.len().div_ceil(CYCLES as usize).max(1);
    let mut sent = 0usize;
    for cycle in 0..CYCLES {
        let end = (sent + slice).min(survivor_events.len());
        if sent < end {
            survivor
                .send_stream(&survivor_events[sent..end], 8)
                .expect("survivor slice");
            sent = end;
        }
        received.extend(survivor.poll_verdicts());
        // Churned connections use odd high object ids — disjoint from the
        // survivor's (seed-1 ids are < 64 * 2), so ownership routing keeps
        // their verdicts (delivered or dropped) out of the survivor's way.
        let mut churn = MonitorClient::connect(addr).expect("churn connect");
        match cycle % 3 {
            0 => {
                // Clean handshake after a tiny stream.
                let object = ObjectId(1_000_000 + cycle);
                let events = vec![
                    (object, Symbol::invoke(ProcId(0), Invocation::Write(cycle))),
                    (object, Symbol::respond(ProcId(0), Response::Ack)),
                ];
                churn.send_stream(&events, 2).expect("churn stream");
                churn.shutdown().expect("churn goodbye");
            }
            1 => {
                // Hard drop mid-stream, no handshake — possibly with its
                // verdicts still undelivered.
                let object = ObjectId(2_000_000 + cycle);
                let events: Vec<(ObjectId, Symbol)> = (0..rng.gen_range(1..6u64))
                    .map(|i| (object, Symbol::invoke(ProcId(0), Invocation::Write(i))))
                    .collect();
                churn.send_stream(&events, 4).expect("churn prefix");
                drop(churn);
            }
            _ => {
                // Ghost: connects and vanishes without a single frame.
                drop(churn);
            }
        }
    }
    assert_eq!(sent, survivor_events.len(), "the survivor must send everything");
    let mut tail = drain_exactly(
        &survivor,
        survivor_events.len() - received.len(),
        "survivor tail",
    );
    received.append(&mut tail);
    let streamed = streams_of(&received, "survivor");
    assert_eq!(streamed, expected, "the storm altered the survivor's streams");
    survivor.shutdown().expect("survivor goodbye");
    let stats = server.stats();
    assert_eq!(stats.accepted, CYCLES + 1, "every churn cycle must have connected");
    let report = server.shutdown().expect("no worker panicked");
    for (object, verdicts) in &expected {
        assert_eq!(
            report.verdicts(*object),
            Some(&verdicts[..]),
            "{object}: reported streams differ"
        );
    }
}

/// A consumer that never reads does not buffer unboundedly: once its
/// bounded outbound queue has been full past the stall grace, the router
/// disconnects it (`stalled_disconnects`), and a healthy connection
/// streaming concurrently stays exactly ≡ the sequential reference.
#[test]
fn slow_consumer_is_disconnected_not_buffered() {
    use drv_net::wire::{write_frame, FrameEncoder};

    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(2).with_max_pending(4096),
        mixed_factory(),
        // verdict_chunk 1 + a tiny outbound queue: the verdict traffic for
        // 128k events (~5.4 MB in 1-verdict frames) dwarfs what loopback
        // kernel buffers can autotune to (~4.3 MB measured) plus 8 queued
        // frames, so the queue must wedge while the consumer refuses to
        // read.
        ServerConfig::new()
            .with_window(128 * 1024)
            .with_verdict_chunk(1)
            .with_outbound(8)
            .with_stall_grace(Duration::from_millis(300)),
    )
    .expect("bind");
    let addr = server.local_addr();

    // The slow consumer: a raw socket that submits a window's worth of
    // events and then never reads a byte.  Invoke/respond pairs spread
    // over 512 objects keep every per-object history short and well
    // formed (checker cost stays flat); the byte volume is what matters.
    let mut slow = std::net::TcpStream::connect(addr).expect("connect slow");
    let arena = SharedInterner::new();
    let mut encoder = FrameEncoder::new();
    for chunk in 0..64u64 {
        let mut batch = EventBatch::new();
        for i in 0..1024u64 {
            let pair = chunk * 1024 + i;
            let object = ObjectId(9_000_000 + pair % 512);
            batch.push_symbol(object, &Symbol::invoke(ProcId(0), Invocation::Write(pair)), &arena);
            batch.push_symbol(object, &Symbol::respond(ProcId(0), Response::Ack), &arena);
        }
        write_frame(&mut slow, &encoder.encode_batch(chunk, &batch, &arena))
            .expect("feed the slow consumer's events");
    }

    // Meanwhile a healthy client streams and drains normally.
    let healthy_events = merged_stream(3, 4, 30);
    let expected = sequential_reference(mixed_factory().as_ref(), &healthy_events);
    let mut healthy = MonitorClient::connect(addr).expect("connect healthy");
    healthy.send_stream(&healthy_events, 16).expect("healthy stream");
    let received = drain_exactly(&healthy, healthy_events.len(), "healthy");
    assert_eq!(
        streams_of(&received, "healthy"),
        expected,
        "a stalled neighbour perturbed the healthy stream"
    );

    // The router must declare the stall within grace + slack.
    let start = Instant::now();
    while server.stats().stalled_disconnects == 0 {
        assert!(
            start.elapsed() < DEADLINE,
            "the slow consumer was never disconnected: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert!(stats.dropped_verdicts > 0, "a stalled consumer's tail must be dropped");
    drop(slow);
    healthy.shutdown().expect("healthy goodbye");
    let report = server.shutdown().expect("no worker panicked");
    assert!(report.stats.evicted >= 1, "the stalled connection's object must be evicted");
}
