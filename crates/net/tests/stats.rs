//! The Stats round trip, end to end: a live server answers a stats
//! request with a versioned payload carrying its flat engine counters AND
//! its whole telemetry registry — proven through [`MonitorClient::stats`]
//! and again over a raw socket (bytes on the wire, decoded by hand), plus
//! the periodic snapshot hook.

use drv_core::CheckerMonitorFactory;
use drv_engine::{EngineConfig, MonitoringEngine};
use drv_lang::{Invocation, ObjectId, ProcId, Response, SharedInterner, Symbol};
use drv_net::wire::{
    decode_frame, encode_stats_request, read_raw_frame, write_frame, Frame, HEADER_LEN,
    STATS_VERSION,
};
use drv_net::{MonitorClient, MonitorServer, ServerConfig};
use drv_spec::Register;
use drv_telemetry::Telemetry;
use parking_lot::Mutex;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const OBJECTS: u64 = 4;
const OPS: u64 = 25;

/// A server over a fully instrumented engine (timing + flight ring on).
fn instrumented_server() -> MonitorServer {
    let engine = Arc::new(MonitoringEngine::with_telemetry(
        EngineConfig::new(2).with_max_pending(4096),
        Arc::new(CheckerMonitorFactory::linearizability(Register::new(), 2)),
        Telemetry::new(),
    ));
    MonitorServer::with_engine(("127.0.0.1", 0), engine, ServerConfig::new())
        .expect("bind loopback")
}

/// Write-k / read-k-back register traffic: `2 * OBJECTS * OPS` events.
fn stream() -> Vec<(ObjectId, Symbol)> {
    let mut events = Vec::new();
    for op in 0..OPS {
        for object in 0..OBJECTS {
            let (invocation, response) = if op % 2 == 0 {
                (Invocation::Write(op), Response::Ack)
            } else {
                (Invocation::Read, Response::Value(op - 1))
            };
            events.push((ObjectId(object), Symbol::invoke(ProcId(0), invocation)));
            events.push((ObjectId(object), Symbol::respond(ProcId(0), response)));
        }
    }
    events
}

#[test]
fn client_stats_returns_the_live_registry_snapshot() {
    let server = instrumented_server();
    let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
    let events = stream();
    client.send_stream(&events, 64).expect("stream events");
    let mut received = 0usize;
    while received < events.len() {
        let verdicts = client.wait_verdicts(Duration::from_secs(5));
        assert!(!verdicts.is_empty(), "verdicts must keep flowing");
        received += verdicts.len();
    }
    let reply = client.stats(Duration::from_secs(5)).expect("stats reply");
    let n = events.len() as u64;
    assert_eq!(reply.engine.workers, 2);
    assert_eq!(reply.engine.events, n, "every event was checked before the request");
    assert_eq!(reply.engine.connections, 1);
    // The registry rode the same frame: engine- and net-layer cells agree
    // with the flat counters they are the source of truth for.
    let snap = &reply.telemetry;
    assert_eq!(snap.counter("engine_events"), Some(n));
    assert_eq!(snap.counter("net_events"), Some(n));
    assert!(snap.counter("net_batches").unwrap() > 0);
    assert!(snap.counter("net_rx_bytes").unwrap() > 0);
    assert_eq!(snap.gauge("engine_queue_depth"), Some(0), "quiesced");
    // The serving engine timed its work (Telemetry::new → timing on).
    assert!(snap.histogram("net_decode_ns").unwrap().count > 0);
    assert!(snap.histogram("engine_check_ns").unwrap().count > 0);
    // The server-side text exposition covers the same registry.
    let text = server.prometheus();
    assert!(text.contains("# TYPE net_events counter"));
    assert!(text.contains("# TYPE net_decode_ns histogram"));
    client.shutdown().expect("clean goodbye");
    server.shutdown().expect("no worker panicked");
}

#[test]
fn raw_socket_stats_frames_decode_with_the_version_byte() {
    let server = instrumented_server();
    let mut socket = TcpStream::connect(server.local_addr()).expect("connect raw");
    write_frame(&mut socket, &encode_stats_request()).expect("request");
    // The server greets with a Credit frame; skim raw frames until the
    // non-empty Stats reply shows up.
    let scratch = SharedInterner::new();
    let reply = loop {
        let raw = read_raw_frame(&mut socket).expect("a server frame");
        let (frame, consumed) = decode_frame(&raw, &scratch).expect("decodable frame");
        assert_eq!(consumed, raw.len());
        match frame {
            Frame::Stats(reply) => {
                // The first payload byte is the layout version — the wire
                // contract the decoder enforces with BadStatsVersion.
                assert_eq!(raw[HEADER_LEN], STATS_VERSION);
                break reply;
            }
            Frame::Credit { .. } => continue,
            other => panic!("unexpected frame before the stats reply: {other:?}"),
        }
    };
    assert_eq!(reply.engine.workers, 2);
    assert_eq!(reply.engine.connections, 1);
    assert!(
        reply.telemetry.counter("net_accepted").unwrap() >= 1,
        "the registry snapshot decodes off the raw bytes"
    );
    drop(socket);
    server.shutdown().expect("no worker panicked");
}

#[test]
fn periodic_snapshot_hook_delivers_fresh_snapshots() {
    let server = instrumented_server();
    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let seen = Arc::clone(&seen);
        server.spawn_snapshot_hook(Duration::from_millis(20), move |snap| {
            seen.lock().push(snap.counter("net_events").unwrap_or(0));
        });
    }
    let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
    let events = stream();
    client.send_stream(&events, 32).expect("stream events");
    let mut received = 0usize;
    while received < events.len() {
        received += client.wait_verdicts(Duration::from_secs(5)).len();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while {
        let seen = seen.lock();
        seen.len() < 3 || seen.last().copied().unwrap_or(0) < events.len() as u64
    } {
        assert!(std::time::Instant::now() < deadline, "hook never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }
    client.shutdown().expect("clean goodbye");
    server.shutdown().expect("no worker panicked");
    let seen: Vec<u64> = seen.lock().clone();
    assert!(seen.len() >= 2, "the hook must have fired repeatedly: {seen:?}");
    assert!(seen.windows(2).all(|w| w[0] <= w[1]), "snapshots are monotone");
    // The server also renders the registry as Prometheus text on demand
    // (exercised via the snapshot the hook handed out).
}
