//! The reactor's scaling claim, measured directly off procfs: the server's
//! thread count is the same with 1 connection and with 16 — connections
//! are poller registrations, not threads.
//!
//! This test lives in its own binary on purpose: `/proc/self/task` is
//! process-wide, so it must not share a process with other tests that
//! start their own servers concurrently.

#![cfg(target_os = "linux")]

use drv_core::CheckerMonitorFactory;
use drv_engine::EngineConfig;
use drv_net::{MonitorClient, MonitorServer, ServerConfig};
use drv_spec::Register;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(30);

fn server_threads() -> usize {
    let mut count = 0;
    for entry in std::fs::read_dir("/proc/self/task").expect("procfs") {
        let comm = entry.expect("task entry").path().join("comm");
        if let Ok(name) = std::fs::read_to_string(comm) {
            if matches!(name.trim_end(), "drv-net-io" | "drv-net-router") {
                count += 1;
            }
        }
    }
    count
}

/// Polls `server_threads` until it reports `want` (threads name themselves
/// asynchronously at startup, and exit asynchronously at shutdown).
fn await_threads(want: usize, context: &str) {
    let start = Instant::now();
    while server_threads() != want {
        assert!(
            start.elapsed() < DEADLINE,
            "{context}: expected {want} server threads, stuck at {}",
            server_threads()
        );
        std::thread::yield_now();
    }
}

#[test]
fn server_thread_count_is_flat_in_connections() {
    assert_eq!(server_threads(), 0, "stray server threads before bind");
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(1).with_max_pending(256),
        Arc::new(CheckerMonitorFactory::linearizability(Register::new(), 2)),
        ServerConfig::new(),
    )
    .expect("bind");
    let addr = server.local_addr();
    await_threads(2, "after bind");
    let one = MonitorClient::connect(addr).expect("first connection");
    let mut fleet = Vec::new();
    for _ in 0..15 {
        fleet.push(MonitorClient::connect(addr).expect("fleet connection"));
    }
    // Wait until the server has registered all 16, then re-count.
    let start = Instant::now();
    while server.stats().active < 16 {
        assert!(start.elapsed() < DEADLINE, "connections never registered");
        std::thread::yield_now();
    }
    assert_eq!(
        server_threads(),
        2,
        "server thread count grew with connection count"
    );
    drop(fleet);
    drop(one);
    server.shutdown().expect("no worker panicked");
    await_threads(0, "after shutdown");
}
