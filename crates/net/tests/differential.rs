//! The network path's acceptance bar: verdict streams received **over the
//! wire** are bit-identical to the in-process
//! [`sequential_reference`] — at 1/2/4 engine workers, at batch sizes
//! 1/16/256, under forced credit stalls (a window far smaller than the
//! stream) and under mid-stream client disconnects.
//!
//! The reference side reuses the engine's own contract (one verdict per
//! ingested symbol, per-object in order), so equality here proves the
//! whole added stack — encode → TCP → decode-into-arena → submit →
//! subscribe → route → encode → TCP → decode — moves no verdict and drops
//! no event.

use drv_adversary::{merge_random, register_object_stream, RegisterStreamShape};
use drv_consistency::{CheckerConfig, IncrementalChecker};
use drv_core::{CheckerMonitorFactory, ObjectMonitorFactory, RoutingMonitorFactory, Verdict};
use drv_engine::{sequential_reference, EngineConfig};
use drv_lang::{EventBatch, Invocation, ObjectId, ProcId, Response, Symbol};
use drv_net::{MonitorClient, MonitorServer, ServerConfig};
use drv_spec::Register;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client processes per object.
const PROCESSES: usize = 2;

/// How long any single wait may take before the test is declared hung.
const DEADLINE: Duration = Duration::from_secs(60);

/// `DRV_ENGINE_TEST_VERDICT_BATCH=0` pins the suite to the legacy per-row
/// verdict frames; any other value (or unset) leaves the run-compressed
/// `VerdictBatch` default on.  Either way the carried verdicts must be
/// bit-identical — only the byte layout may differ.
fn server_config() -> ServerConfig {
    let legacy = std::env::var("DRV_ENGINE_TEST_VERDICT_BATCH").is_ok_and(|value| value == "0");
    ServerConfig::new().with_batched_verdicts(!legacy)
}

/// Whether the batched wire path was explicitly forced on (so suites can
/// additionally assert the batched frames actually flowed).
fn verdict_batch_forced() -> bool {
    std::env::var("DRV_ENGINE_TEST_VERDICT_BATCH").is_ok_and(|value| value != "0")
}

fn mixed_factory() -> Arc<RoutingMonitorFactory> {
    let lin = Arc::new(CheckerMonitorFactory::linearizability(Register::new(), PROCESSES))
        as Arc<dyn ObjectMonitorFactory>;
    let sc = Arc::new(CheckerMonitorFactory::sequential_consistency(
        Register::new(),
        PROCESSES,
    )) as Arc<dyn ObjectMonitorFactory>;
    Arc::new(RoutingMonitorFactory::new("mixed LIN/SC", move |object: ObjectId| {
        if object.0.is_multiple_of(2) {
            Arc::clone(&lin)
        } else {
            Arc::clone(&sc)
        }
    }))
}

/// A merged multi-object stream for one seed — the workspace's shared
/// generator, differential shape (overlap + stale reads, so both YES and
/// NO verdicts cross the wire), randomly merged.
fn merged_stream(seed: u64, objects: u64, ops: usize) -> Vec<(ObjectId, Symbol)> {
    let shape = RegisterStreamShape::differential();
    let mut rng = StdRng::seed_from_u64(seed);
    let per_object: Vec<(ObjectId, Vec<Symbol>)> = (0..objects)
        .map(|i| (ObjectId(seed * 64 + i), register_object_stream(&mut rng, ops, &shape)))
        .collect();
    merge_random(&mut rng, per_object)
}

/// Rebuilds per-object verdict streams from wire deliveries, asserting the
/// per-object `seq` order the protocol promises.
fn streams_of(events: &[drv_engine::VerdictEvent], context: &str) -> BTreeMap<ObjectId, Vec<Verdict>> {
    let mut streams: BTreeMap<ObjectId, Vec<Verdict>> = BTreeMap::new();
    for event in events {
        let stream = streams.entry(event.object).or_default();
        assert_eq!(
            event.seq,
            stream.len() as u64,
            "{context}: {} verdicts out of order",
            event.object
        );
        stream.push(event.verdict);
    }
    streams
}

/// Drains the client into `received` until `expected` verdicts arrived in
/// total (or the deadline).
fn drain_into(
    client: &MonitorClient,
    received: &mut Vec<drv_engine::VerdictEvent>,
    expected: usize,
    context: &str,
) {
    let start = Instant::now();
    while received.len() < expected {
        assert!(
            start.elapsed() < DEADLINE,
            "{context}: only {} of {expected} verdicts after {DEADLINE:?}",
            received.len()
        );
        received.extend(client.wait_verdicts(Duration::from_millis(100)));
        assert!(!client.is_closed() || received.len() >= expected, "{context}: closed early");
    }
    assert_eq!(received.len(), expected, "{context}: too many verdicts");
}

/// Drains the client until `expected` verdicts arrived (or the deadline).
fn drain_exactly(
    client: &MonitorClient,
    expected: usize,
    context: &str,
) -> Vec<drv_engine::VerdictEvent> {
    let mut received = Vec::new();
    drain_into(client, &mut received, expected, context);
    received
}

/// The matrix: every worker count × batch size × a small credit window, one
/// client streaming seeded multi-object traffic; live wire verdicts AND the
/// end-of-run report must equal the sequential reference.
#[test]
fn wire_verdicts_equal_sequential_reference() {
    for &workers in &[1usize, 2, 4] {
        for &batch_size in &[1usize, 16, 256] {
            let seed = (workers * 1000 + batch_size) as u64;
            let events = merged_stream(seed, 4, 6);
            let expected = sequential_reference(mixed_factory().as_ref(), &events);
            let server = MonitorServer::bind(
                ("127.0.0.1", 0),
                EngineConfig::new(workers).with_max_pending(512),
                mixed_factory(),
                // A window of 300 forces credit waiting at batch 256 while
                // still admitting one max-size batch.
                server_config().with_window(300),
            )
            .expect("bind");
            let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
            client
                .send_stream(&events, batch_size)
                .expect("stream everything");
            let context = format!("workers {workers}, batch {batch_size}");
            let received = drain_exactly(&client, events.len(), &context);
            let streamed = streams_of(&received, &context);
            let streamed: BTreeMap<ObjectId, Vec<Verdict>> = streamed.into_iter().collect();
            assert_eq!(streamed, expected, "{context}: wire streams differ");
            assert!(client.take_nacks().is_empty(), "{context}: spurious NACKs");
            if verdict_batch_forced() {
                let frames = server
                    .telemetry()
                    .snapshot()
                    .counter("net_verdict_frames")
                    .unwrap_or(0);
                assert!(frames > 0, "{context}: forced batched path sent no verdict frames");
            }
            client.shutdown().expect("clean goodbye");
            let report = server.shutdown().expect("no worker panicked");
            for (object, verdicts) in &expected {
                assert_eq!(
                    report.verdicts(*object),
                    Some(&verdicts[..]),
                    "{context}, {object}: reported streams differ"
                );
            }
        }
    }
}

/// Forced credit stalls: a tiny window (8 events) against a long stream
/// through a tiny-`max_pending` engine — the client must repeatedly run dry
/// and wait for re-grants, and nothing may move a verdict.  Also proves the
/// `try_send_batch` NoCredit path.
#[test]
fn forced_credit_exhaustion_preserves_streams() {
    let events = merged_stream(99, 3, 8);
    let expected = sequential_reference(mixed_factory().as_ref(), &events);
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(2).with_max_pending(8),
        mixed_factory(),
        server_config().with_window(8),
    )
    .expect("bind");
    let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
    let arena = client.interner();
    let mut no_credit = 0u64;
    let mut received = Vec::new();
    let mut batch = EventBatch::new();
    for (object, symbol) in &events {
        batch.push_symbol(*object, symbol, &arena);
        if batch.len() == 4 {
            // Nonblocking first: count genuine NoCredit rejections (credit
            // only returns as verdicts are delivered, so the drains below
            // are what un-wedges the window).
            loop {
                match client.try_send_batch(&batch) {
                    Ok(_) => break,
                    Err(drv_net::TrySendError::NoCredit { .. }) => {
                        no_credit += 1;
                        received.extend(client.wait_verdicts(Duration::from_millis(1)));
                    }
                    Err(drv_net::TrySendError::Fatal(err)) => panic!("fatal send: {err}"),
                }
            }
            batch.clear();
        }
    }
    if !batch.is_empty() {
        client.send_batch(&batch).expect("tail batch");
    }
    drain_into(&client, &mut received, events.len(), "credit stall");
    assert_eq!(streams_of(&received, "credit stall"), expected);
    assert!(no_credit > 0, "an 8-event window never ran out of credit");
    assert!(client.take_nacks().is_empty(), "well-behaved client was NACKed");
    client.shutdown().expect("clean goodbye");
    let report = server.shutdown().expect("no worker panicked");
    let stats = report.stats;
    assert_eq!(stats.events, events.len() as u64);
}

/// Mid-stream disconnects: one client sends its whole stream, a second
/// client drops (without the shutdown handshake) after a prefix.  The
/// surviving client's wire verdicts and the server's end-of-run report must
/// match the reference over exactly the events each connection delivered —
/// and the dropped connection's objects must have been evicted.
#[test]
fn mid_stream_disconnect_keeps_other_connections_exact() {
    let full = merged_stream(7, 3, 6);
    let doomed_all = merged_stream(8, 3, 6);
    let prefix_len = doomed_all.len() / 2;
    let doomed_prefix = &doomed_all[..prefix_len];
    // Reference: the surviving stream in full, plus the prefix the doomed
    // connection actually delivered.
    let mut reference_events = full.clone();
    reference_events.extend_from_slice(doomed_prefix);
    let expected = sequential_reference(mixed_factory().as_ref(), &reference_events);

    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(2).with_max_pending(1024),
        mixed_factory(),
        server_config(),
    )
    .expect("bind");
    let mut survivor = MonitorClient::connect(server.local_addr()).expect("connect survivor");
    let mut doomed = MonitorClient::connect(server.local_addr()).expect("connect doomed");
    doomed.send_stream(doomed_prefix, 16).expect("prefix");
    // Make sure the prefix reached the engine before the hard drop: its
    // verdicts coming back is proof of processing.
    let _ = drain_exactly(&doomed, prefix_len, "doomed prefix");
    drop(doomed); // hard disconnect, no handshake
    survivor.send_stream(&full, 16).expect("full stream");
    let received = drain_exactly(&survivor, full.len(), "survivor");
    let streamed = streams_of(&received, "survivor");
    for (object, verdicts) in &streamed {
        assert_eq!(
            expected.get(object),
            Some(verdicts),
            "survivor {object}: wire streams differ"
        );
    }
    // Wait for the eviction markers of the dropped connection to retire.
    let start = Instant::now();
    while server.backlog() > 0 {
        assert!(start.elapsed() < DEADLINE, "eviction markers never drained");
        std::thread::yield_now();
    }
    survivor.shutdown().expect("clean goodbye");
    let report = server.shutdown().expect("no worker panicked");
    assert_eq!(
        report.objects.len(),
        expected.len(),
        "report object set differs (evicted epochs must be merged back in)"
    );
    for (object, verdicts) in &expected {
        assert_eq!(
            report.verdicts(*object),
            Some(&verdicts[..]),
            "{object}: reported streams differ"
        );
    }
    assert!(report.stats.evicted >= 3, "dropped connection's objects were not evicted");
}

/// Two concurrent clients with disjoint object spaces: each receives
/// exactly its own objects' verdicts (ownership routing), both equal to the
/// reference.
#[test]
fn verdicts_route_to_the_owning_connection() {
    let stream_a = merged_stream(21, 3, 5);
    let stream_b = merged_stream(22, 3, 5);
    let mut combined = stream_a.clone();
    combined.extend_from_slice(&stream_b);
    let expected = sequential_reference(mixed_factory().as_ref(), &combined);
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(2).with_max_pending(1024),
        mixed_factory(),
        server_config(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handles: Vec<std::thread::JoinHandle<BTreeMap<ObjectId, Vec<Verdict>>>> =
        [stream_a.clone(), stream_b.clone()]
            .into_iter()
            .enumerate()
            .map(|(index, events)| {
                std::thread::spawn(move || {
                    let mut client = MonitorClient::connect(addr).expect("connect");
                    client.send_stream(&events, 8).expect("stream");
                    let context = format!("client {index}");
                    let received = drain_exactly(&client, events.len(), &context);
                    client.shutdown().expect("clean goodbye");
                    streams_of(&received, &context)
                })
            })
            .collect();
    let streams: Vec<BTreeMap<ObjectId, Vec<Verdict>>> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();
    let a_objects: std::collections::BTreeSet<ObjectId> =
        stream_a.iter().map(|(object, _)| *object).collect();
    let b_objects: std::collections::BTreeSet<ObjectId> =
        stream_b.iter().map(|(object, _)| *object).collect();
    assert!(a_objects.is_disjoint(&b_objects), "test seeds must not collide");
    for (streamed, objects) in streams.iter().zip([&a_objects, &b_objects]) {
        assert_eq!(
            &streamed.keys().copied().collect::<std::collections::BTreeSet<_>>(),
            objects,
            "a client received verdicts it does not own"
        );
        for (object, verdicts) in streamed {
            assert_eq!(expected.get(object), Some(verdicts), "{object}");
        }
    }
    let report = server.shutdown().expect("no worker panicked");
    assert_eq!(report.objects.len(), expected.len());
}

/// The live ABD bridge end-to-end: a message-passing simulation (including
/// one with a crashed minority) streamed over the wire must produce exactly
/// the verdict stream of checking `run_abd`'s post-hoc history — and the
/// histories an ABD cluster produces are linearizable, so the final verdict
/// is YES.
#[test]
fn abd_bridge_matches_post_hoc_history() {
    use drv_abd::{NetConfig, Workload};
    use drv_net::stream_abd;

    for (seed, crash) in [(42u64, None), (43, Some((1usize, 40u64)))] {
        let n = 3;
        let config = {
            let base = NetConfig::new(n, seed);
            match crash {
                Some((node, time)) => base.crash(node, time),
                None => base,
            }
        };
        let workload = Workload::mixed(n, 2);
        let object = ObjectId(777);
        // The reference: the post-hoc history through a sequential checker.
        let reference_events =
            drv_net::bridge::reference_stream(object, config.clone(), &workload);
        let mut checker =
            IncrementalChecker::new(Register::new(), CheckerConfig::linearizability(), n);
        let mut expected = Vec::new();
        for (_, symbol) in &reference_events {
            checker.push_symbol(symbol);
            expected.push(Verdict::from(checker.check_outcome()));
        }

        let factory = Arc::new(CheckerMonitorFactory::linearizability(Register::new(), n));
        let server = MonitorServer::bind(
            ("127.0.0.1", 0),
            EngineConfig::new(2).with_max_pending(256),
            factory,
            server_config().with_window(64),
        )
        .expect("bind");
        let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
        let report = stream_abd(&mut client, object, config, &workload, 7).expect("bridge");
        assert_eq!(
            report.invocations + report.responses,
            reference_events.len(),
            "seed {seed}: bridge stream length differs from run_abd history"
        );
        let received = drain_exactly(&client, reference_events.len(), "abd bridge");
        let streamed = streams_of(&received, "abd bridge");
        assert_eq!(streamed.get(&object), Some(&expected), "seed {seed}");
        if crash.is_none() {
            assert_eq!(expected.last(), Some(&Verdict::Yes), "ABD must linearize");
            assert_eq!(report.incomplete, 0);
        }
        client.shutdown().expect("clean goodbye");
        let engine_report = server.shutdown().expect("no worker panicked");
        assert_eq!(engine_report.verdicts(object), Some(&expected[..]), "seed {seed}");
    }
}

/// Oversized batches are refused with a typed NACK (and dropped before the
/// engine), and the connection keeps working afterwards.
#[test]
fn oversized_batch_is_nacked_not_fatal() {
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(1).with_max_pending(64),
        mixed_factory(),
        server_config().with_window(4),
    )
    .expect("bind");
    let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
    let arena = client.interner();
    let mut oversized = EventBatch::new();
    for i in 0..8 {
        oversized.push_symbol(
            ObjectId(1),
            &Symbol::invoke(ProcId(0), Invocation::Write(i)),
            &arena,
        );
    }
    // The client itself refuses once it knows the window…
    let start = Instant::now();
    while client.credit().1 == 0 {
        assert!(start.elapsed() < DEADLINE, "initial grant never arrived");
        std::thread::yield_now();
    }
    assert!(matches!(
        client.send_batch(&oversized),
        Err(drv_net::ClientError::BatchTooLarge { len: 8, window: 4 })
    ));
    // …and a fitting stream still flows on the same connection.
    let events: Vec<(ObjectId, Symbol)> = vec![
        (ObjectId(1), Symbol::invoke(ProcId(0), Invocation::Write(7))),
        (ObjectId(1), Symbol::respond(ProcId(0), Response::Ack)),
    ];
    client.send_stream(&events, 2).expect("fitting batch");
    let received = drain_exactly(&client, 2, "after refusal");
    assert!(received.iter().all(|event| event.verdict.is_yes()));
    client.shutdown().expect("clean goodbye");
    let report = server.shutdown().expect("no worker panicked");
    assert_eq!(report.stats.events, 2, "the oversized batch must never reach the engine");
}

/// A protocol-violating peer (raw socket, ignores credit) receives typed
/// NACKs — `BatchTooLarge` for a batch over the window, `CreditExceeded`
/// for an overrun — and the refused batches never reach the engine.
///
/// The overrun is made deterministic by submitting events for an object
/// *owned by another connection*: verdicts (and therefore credit) route to
/// the owner, so the raw peer's window can never regenerate.
#[test]
fn raw_credit_violations_are_nacked_server_side() {
    use drv_lang::SharedInterner;
    use drv_net::wire::{read_frame, write_frame, Frame, FrameEncoder, NackReason};

    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(1).with_max_pending(64),
        mixed_factory(),
        server_config().with_window(4),
    )
    .expect("bind");
    // The legitimate owner of ObjectId(5).
    let mut owner = MonitorClient::connect(server.local_addr()).expect("connect owner");
    let owner_events = vec![
        (ObjectId(5), Symbol::invoke(ProcId(0), Invocation::Write(1))),
        (ObjectId(5), Symbol::respond(ProcId(0), Response::Ack)),
    ];
    owner.send_stream(&owner_events, 2).expect("own the object");
    let _ = drain_exactly(&owner, 2, "owner");

    let mut socket = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
    let arena = SharedInterner::new();
    let mut encoder = FrameEncoder::new();
    let batch_of = |len: u64, arena: &SharedInterner| {
        let mut batch = EventBatch::new();
        for i in 0..len {
            batch.push_symbol(ObjectId(5), &Symbol::invoke(ProcId(1), Invocation::Write(i)), arena);
        }
        batch
    };
    // An 8-event batch can never fit a 4-event window.
    write_frame(&mut socket, &encoder.encode_batch(1, &batch_of(8, &arena), &arena))
        .expect("send oversized");
    // 3 events on the *owner's* object: admitted (within the window), but
    // their verdicts — and the credit they carry — go to the owner.
    write_frame(&mut socket, &encoder.encode_batch(2, &batch_of(3, &arena), &arena))
        .expect("send first");
    // 2 more events exceed the 1 event of remaining credit: overrun.
    write_frame(&mut socket, &encoder.encode_batch(3, &batch_of(2, &arena), &arena))
        .expect("send overrun");
    let mut nacks = Vec::new();
    let local = SharedInterner::new();
    while nacks.len() < 2 {
        match read_frame(&mut socket, &local).expect("server frame") {
            Frame::Nack { batch_id, reason, detail } => nacks.push((batch_id, reason, detail)),
            Frame::Credit { .. } | Frame::Verdicts(_) | Frame::VerdictBatch(_) => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(nacks[0], (1, NackReason::BatchTooLarge, 4));
    assert_eq!(nacks[1], (3, NackReason::CreditExceeded, 1));
    drop(socket);
    owner.shutdown().expect("owner goodbye");
    let report = server.shutdown().expect("no worker panicked");
    // The owner's 2 events plus the raw peer's admitted batch of 3.
    assert_eq!(report.stats.events, 5);
}
