//! Malformed-frame hardening: seeded corruption, truncation and
//! length-inflation fuzz over the frame decoder.  The contract under test:
//! **every** bad input yields a typed [`WireError`] (or decodes, when the
//! mutation happened to keep the frame valid) — never a panic, and never an
//! allocation larger than a small multiple of the input itself.
//!
//! The generators cover every frame kind, and the mutations cover byte
//! flips anywhere (header and payload), truncation at every boundary
//! class, header length-field inflation, and garbage of arbitrary
//! prefixes.

use drv_core::Verdict;
use drv_engine::VerdictEvent;
use drv_lang::{
    EventBatch, Invocation, ObjectId, ProcId, Response, SharedInterner, Symbol, TraceContext,
};
use drv_net::wire::{
    decode_frame, encode_credit, encode_nack, encode_shutdown, encode_stats,
    encode_stats_request, encode_verdict_batch, encode_verdicts, Frame, FrameEncoder, NackReason,
    StatsReply, WireError, WireStats, HEADER_LEN, MAX_PAYLOAD,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded fuzz rounds (each round mutates every generated frame kind).
const ROUNDS: u64 = 400;

/// One valid frame of every kind, with seed-varied contents.
fn valid_frames(rng: &mut StdRng) -> Vec<Vec<u8>> {
    let arena = SharedInterner::new();
    let mut batch = EventBatch::new();
    let events = rng.gen_range(1..=20u64);
    for i in 0..events {
        let object = ObjectId(rng.gen_range(0..4u64));
        let proc = ProcId(rng.gen_range(0..3usize));
        let symbol = match rng.gen_range(0..6u32) {
            0 => Symbol::invoke(proc, Invocation::Write(i)),
            1 => Symbol::invoke(proc, Invocation::Read),
            2 => Symbol::invoke(proc, Invocation::Custom("cas".into(), i)),
            3 => Symbol::respond(proc, Response::Ack),
            4 => Symbol::respond(proc, Response::Sequence(vec![i, i + 1])),
            _ => Symbol::respond(proc, Response::MaybeValue(None)),
        };
        batch.push_symbol(object, &symbol, &arena);
    }
    let verdicts: Vec<VerdictEvent> = (0..rng.gen_range(1..=8u64))
        .map(|seq| VerdictEvent {
            object: ObjectId(rng.gen_range(0..4u64)),
            seq,
            verdict: match rng.gen_range(0..3u32) {
                0 => Verdict::Yes,
                1 => Verdict::No,
                _ => Verdict::Maybe(rng.gen_range(0..5u32)),
            },
        })
        .collect();
    // A second copy of the batch carrying the trace-context extension, so
    // every generic mutation pass (flips, truncation, inflation) also
    // exercises the extension bytes.
    let mut stamped = batch.clone();
    stamped.set_trace(Some(TraceContext {
        trace_id: rng.gen_range(1..u64::MAX),
        parent_span: rng.gen_range(0..u32::MAX),
        flags: rng.gen_range(0..4u32),
    }));
    vec![
        FrameEncoder::new().encode_batch(rng.gen_range(0..u64::MAX), &batch, &arena),
        FrameEncoder::new().encode_batch(rng.gen_range(0..u64::MAX), &stamped, &arena),
        encode_credit(rng.gen_range(0..u64::MAX), rng.gen_range(0..u64::MAX)),
        encode_nack(rng.gen_range(0..u64::MAX), NackReason::CreditExceeded, rng.gen_range(0..u64::MAX)),
        encode_verdicts(&verdicts),
        encode_verdict_batch(&verdicts),
        encode_stats_request(),
        encode_stats(&StatsReply {
            engine: WireStats {
                workers: rng.gen_range(1..8u32),
                events: rng.gen_range(0..u64::MAX),
                ..WireStats::default()
            },
            telemetry: {
                // A populated registry so the fuzz also mutates the
                // snapshot section (names, counts, bucket arrays).
                let tel = drv_telemetry::Telemetry::new();
                tel.registry().counter("net_batches").add(rng.gen_range(0..1_000u64));
                tel.registry().gauge("engine_queue_depth").add(rng.gen_range(0..100u64) as i64 - 50);
                let hist = tel.registry().histogram("net_decode_ns");
                for _ in 0..rng.gen_range(1..64u32) {
                    hist.record(rng.gen_range(0..u64::MAX));
                }
                tel.snapshot()
            },
        }),
        encode_shutdown(),
    ]
}

/// Decodes arbitrary bytes; the pass criterion is simply "returns".  A
/// panic aborts the test; a wrong-but-typed error is fine; an accidental
/// decode is fine (some mutations are no-ops or hit ignored bytes).
fn must_not_panic(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    let arena = SharedInterner::new();
    decode_frame(bytes, &arena)
}

#[test]
fn seeded_corruption_never_panics() {
    let mut typed_errors = 0u64;
    let mut survivals = 0u64;
    for seed in 0..ROUNDS {
        let mut rng = StdRng::seed_from_u64(seed);
        for frame in valid_frames(&mut rng) {
            // Byte flips: 1–4 positions anywhere in the frame.
            let mut flipped = frame.clone();
            for _ in 0..rng.gen_range(1..=4u32) {
                let pos = rng.gen_range(0..flipped.len());
                flipped[pos] ^= 1u8 << rng.gen_range(0..8u32);
            }
            match must_not_panic(&flipped) {
                Ok(_) => survivals += 1,
                Err(_) => typed_errors += 1,
            }
            // Truncation at every class of boundary: inside the header, at
            // the header edge, inside the payload.
            for cut in [
                rng.gen_range(0..HEADER_LEN.min(frame.len())),
                HEADER_LEN.min(frame.len().saturating_sub(1)),
                rng.gen_range(0..frame.len()),
            ] {
                match must_not_panic(&frame[..cut]) {
                    Ok(_) => survivals += 1,
                    Err(_) => typed_errors += 1,
                }
            }
        }
    }
    assert!(typed_errors > 0, "the fuzz never produced an invalid frame");
    // Flips that only touch payload bytes are caught by the CRC; header
    // flips by validation — a large majority must be typed errors.
    assert!(
        typed_errors > survivals,
        "suspiciously many corrupted frames decoded: {survivals} ok vs {typed_errors} errors"
    );
}

#[test]
fn inflated_length_fields_cannot_allocate() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for frame in valid_frames(&mut rng) {
        // Inflate the header's payload length to huge values: the decoder
        // must reject Oversized / TruncatedPayload before sizing anything
        // from the field.
        for inflated in [MAX_PAYLOAD + 1, u32::MAX, 1 << 30] {
            let mut bad = frame.clone();
            bad[8..12].copy_from_slice(&inflated.to_le_bytes());
            match must_not_panic(&bad) {
                Err(WireError::Oversized(len)) => assert_eq!(len, inflated),
                Err(_) => {}
                Ok(_) => panic!("a frame claiming {inflated} payload bytes decoded"),
            }
        }
        // A length within the cap but beyond the actual bytes: truncated,
        // not allocated.
        let mut bad = frame.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD - 1).to_le_bytes());
        assert!(
            matches!(must_not_panic(&bad), Err(WireError::TruncatedPayload { .. })),
            "inflated-but-capped length must read as truncation"
        );
    }
}

#[test]
fn interior_count_inflation_is_rejected_with_fixed_crc() {
    // Corrupt *interior* count fields of a batch payload and re-seal the
    // CRC, so the mutation reaches the payload decoder instead of dying at
    // the checksum: every count guard must hold on its own.
    use drv_net::wire::crc32;
    let arena = SharedInterner::new();
    let mut batch = EventBatch::new();
    for i in 0..8 {
        batch.push_symbol(
            ObjectId(1),
            &Symbol::invoke(ProcId(0), Invocation::Write(i)),
            &arena,
        );
        batch.push_symbol(ObjectId(1), &Symbol::respond(ProcId(0), Response::Ack), &arena);
    }
    let frame = FrameEncoder::new().encode_batch(7, &batch, &arena);
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut rejected = 0u64;
    for _ in 0..2000 {
        let mut bad = frame.clone();
        // Overwrite 4 aligned-ish payload bytes with a huge count.
        let payload_len = bad.len() - HEADER_LEN;
        let pos = HEADER_LEN + rng.gen_range(0..payload_len - 4);
        bad[pos..pos + 4].copy_from_slice(&rng.gen_range(1u32 << 20..u32::MAX).to_le_bytes());
        let crc = crc32(&bad[HEADER_LEN..]);
        bad[12..16].copy_from_slice(&crc.to_le_bytes());
        match must_not_panic(&bad) {
            Ok(_) => {}
            Err(_) => rejected += 1,
        }
    }
    assert!(rejected > 0, "no interior mutation was ever rejected");
}

#[test]
fn verdict_batch_probes_are_typed_with_resealed_crc() {
    // The VerdictBatch frame's structural fields — run count, row count,
    // per-run lengths, verdict tags — each corrupted *with the CRC
    // re-sealed*, so the probe reaches the payload decoder: every guard
    // must hold on its own and answer with a typed error, sized by the
    // bytes actually present (no allocation from the claimed counts).
    use drv_net::wire::crc32;
    let events: Vec<VerdictEvent> = (0..64u64)
        .map(|i| VerdictEvent {
            object: ObjectId(i / 16), // 4 runs of 16
            seq: i % 16,
            verdict: if i % 3 == 0 { Verdict::Yes } else { Verdict::Maybe(i as u32) },
        })
        .collect();
    let frame = encode_verdict_batch(&events);
    let reseal = |bytes: &mut [u8]| {
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
    };
    // Row-count inflation: claims more rows than the payload holds.
    let mut inflated = frame.clone();
    inflated[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut inflated);
    assert!(
        matches!(must_not_panic(&inflated), Err(WireError::Payload(_))),
        "row-count inflation must be a typed payload error"
    );
    // Run-count inflation past the row count: the dictionary-overflow
    // guard (more runs than rows is structurally impossible).
    let mut overflow = frame.clone();
    let rows = u32::from_le_bytes(frame[HEADER_LEN + 4..HEADER_LEN + 8].try_into().unwrap());
    overflow[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(rows + 1).to_le_bytes());
    reseal(&mut overflow);
    assert!(
        matches!(
            must_not_panic(&overflow),
            Err(WireError::DictOverflow { .. } | WireError::Payload(_))
        ),
        "run-count inflation must hit the overflow guard"
    );
    // A run length that no longer sums to the row count.
    let mut unsummed = frame.clone();
    let len_at = HEADER_LEN + 8 + 16; // first run entry's len field
    unsummed[len_at..len_at + 4].copy_from_slice(&1u32.to_le_bytes());
    reseal(&mut unsummed);
    assert!(
        matches!(must_not_panic(&unsummed), Err(WireError::BadRunTable { .. })),
        "a lying run table must be rejected as such"
    );
    // Truncation at every boundary inside the payload: typed, never a
    // panic, and whatever decodes must have been a complete valid frame.
    for cut in HEADER_LEN..frame.len() {
        let mut cut_frame = frame[..cut].to_vec();
        cut_frame[8..12].copy_from_slice(&((cut - HEADER_LEN) as u32).to_le_bytes());
        reseal(&mut cut_frame);
        assert!(
            must_not_panic(&cut_frame).is_err(),
            "a truncated verdict batch decoded at cut {cut}"
        );
    }
    // The untouched frame still round-trips — the probes above fail for
    // the right reason, not because the baseline was broken.
    let (decoded, _) = must_not_panic(&frame).expect("the baseline frame decodes");
    match decoded {
        Frame::VerdictBatch(carried) => assert_eq!(carried, events),
        other => panic!("verdict batch decoded as {other:?}"),
    }
}

#[test]
fn trace_context_probes_are_typed_with_resealed_crc() {
    // The Batch frame's trailing trace-context extension, corrupted with
    // the CRC re-sealed so every probe reaches the payload decoder:
    // truncated context bytes, inflated declared lengths, unknown tags and
    // garbage interiors must each answer with a typed error — never a
    // panic, and never an intern into the receiving arena.
    use drv_net::wire::crc32;
    let arena = SharedInterner::new();
    let mut batch = EventBatch::new();
    for i in 0..6 {
        batch.push_symbol(ObjectId(i % 2), &Symbol::invoke(ProcId(0), Invocation::Write(i)), &arena);
        batch.push_symbol(ObjectId(i % 2), &Symbol::respond(ProcId(0), Response::Ack), &arena);
    }
    batch.set_trace(Some(TraceContext { trace_id: 0xABCD_EF01, parent_span: 3, flags: 1 }));
    let frame = FrameEncoder::new().encode_batch(11, &batch, &arena);
    let ext_len = 2 + TraceContext::WIRE_LEN; // tag + len + context bytes
    let ext_at = frame.len() - ext_len;
    let reseal = |mut bytes: Vec<u8>| -> Vec<u8> {
        let payload_len = (bytes.len() - HEADER_LEN) as u32;
        bytes[8..12].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        bytes
    };
    let probe = |bytes: Vec<u8>, what: &str| {
        let receiver = SharedInterner::new();
        let result = decode_frame(&bytes, &receiver);
        assert!(result.is_err(), "{what}: a malformed extension decoded: {result:?}");
        assert_eq!(receiver.versions(), (0, 0), "{what}: a refused frame interned");
    };
    // Truncation at every boundary inside the extension block.
    for cut in ext_at + 1..frame.len() {
        probe(reseal(frame[..cut].to_vec()), "extension truncation");
    }
    // Unknown extension tags (every non-zero wrong value class).
    for tag in [0u8, 2, 7, 0xFF] {
        let mut bad = frame.clone();
        bad[ext_at] = tag;
        probe(reseal(bad), "unknown extension tag");
    }
    // Declared lengths below the fixed context size.
    for len in [0u8, 1, 8, 15] {
        let mut bad = frame.clone();
        bad[ext_at + 1] = len;
        probe(reseal(bad), "short declared length");
    }
    // A declared length far beyond what the payload holds.
    let mut inflated = frame.clone();
    inflated[ext_at + 1] = 0xFF;
    probe(reseal(inflated), "inflated declared length");
    // Garbage context bytes still decode (the 16 bytes are opaque), but
    // byte flips in tag/len stay typed; and the baseline still carries the
    // stamped context exactly.
    let receiver = SharedInterner::new();
    match decode_frame(&frame, &receiver).expect("the baseline stamped frame decodes") {
        (Frame::Batch(wire), _) => {
            assert_eq!(
                wire.events.trace(),
                Some(TraceContext { trace_id: 0xABCD_EF01, parent_span: 3, flags: 1 })
            );
        }
        (other, _) => panic!("batch decoded as {other:?}"),
    }
    // And a legacy (unstamped) batch round-trips bit-identically: decode,
    // re-encode against a mirror of the receiving arena, compare bytes.
    let mut legacy_batch = EventBatch::new();
    for i in 0..4 {
        legacy_batch.push_symbol(ObjectId(9), &Symbol::invoke(ProcId(1), Invocation::Write(i)), &arena);
    }
    let legacy = FrameEncoder::new().encode_batch(21, &legacy_batch, &arena);
    let receiver = SharedInterner::new();
    let (decoded, consumed) = decode_frame(&legacy, &receiver).expect("legacy decodes");
    assert_eq!(consumed, legacy.len());
    let Frame::Batch(wire) = decoded else { panic!("not a batch") };
    assert_eq!(wire.events.trace(), None, "no extension ⇒ no context");
    let reencoded = FrameEncoder::new().encode_batch(21, &wire.events, &receiver);
    assert_eq!(reencoded, legacy, "legacy frames must round-trip bit-identically");
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xBAAD);
    for _ in 0..2000 {
        let len = rng.gen_range(0..256usize);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        let _ = must_not_panic(&garbage);
        // Garbage behind a valid header prefix exercises deeper paths.
        let mut prefixed = encode_shutdown();
        prefixed.truncate(rng.gen_range(0..=prefixed.len()));
        prefixed.extend_from_slice(&garbage);
        let _ = must_not_panic(&prefixed);
    }
}

// ---------------------------------------------------------------------------
// Read-boundary fuzz: the reactor's reassembly path.  TCP may deliver a
// frame in any chunking whatsoever; the assembler must produce the exact
// same frame bytes regardless, fail typed (never panic) on unframeable
// streams, and size its buffer by *received* bytes only.
// ---------------------------------------------------------------------------

use drv_net::FrameAssembler;

#[test]
fn byte_at_a_time_reassembly_is_exact() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus = valid_frames(&mut rng);
        let mut assembler = FrameAssembler::new();
        let mut reassembled: Vec<Vec<u8>> = Vec::new();
        for frame in &corpus {
            for (i, byte) in frame.iter().enumerate() {
                assembler.feed(std::slice::from_ref(byte));
                loop {
                    let raw = match assembler.next_frame() {
                        Ok(Some(raw)) => raw.to_vec(),
                        Ok(None) => break,
                        Err(err) => panic!("valid corpus unframeable at byte {i}: {err}"),
                    };
                    // A frame may only complete on its own final byte, and
                    // its reassembly spread is then exactly its length in
                    // single-byte reads.
                    assert_eq!(i, frame.len() - 1, "frame completed before its last byte");
                    assert_eq!(assembler.last_spread(), frame.len() as u64);
                    reassembled.push(raw);
                }
            }
        }
        assert_eq!(reassembled, corpus, "byte-at-a-time replay altered the stream");
        assert_eq!(assembler.buffered(), 0, "residual bytes after a whole corpus");
        // And every reassembled frame still decodes identically.
        let arena = SharedInterner::new();
        for frame in &reassembled {
            decode_frame(frame, &arena).expect("reassembled frame decodes");
        }
    }
}

#[test]
fn seeded_chunk_sizes_preserve_the_frame_sequence() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xC4A0 ^ seed);
        let corpus = valid_frames(&mut rng);
        let stream: Vec<u8> = corpus.iter().flatten().copied().collect();
        let mut assembler = FrameAssembler::new();
        let mut reassembled: Vec<Vec<u8>> = Vec::new();
        let mut offset = 0usize;
        while offset < stream.len() {
            let chunk = rng.gen_range(1..=97usize).min(stream.len() - offset);
            assembler.feed(&stream[offset..offset + chunk]);
            offset += chunk;
            loop {
                let raw = match assembler.next_frame() {
                    Ok(Some(raw)) => raw.to_vec(),
                    Ok(None) => break,
                    Err(err) => panic!("valid corpus unframeable under chunking: {err}"),
                };
                assert!(assembler.last_spread() >= 1);
                reassembled.push(raw);
            }
        }
        assert_eq!(reassembled, corpus, "chunked replay altered the stream (seed {seed})");
    }
}

#[test]
fn corrupted_streams_fail_typed_through_the_assembler() {
    let mut typed_errors = 0u64;
    for seed in 0..ROUNDS / 4 {
        let mut rng = StdRng::seed_from_u64(0xBAD0 ^ seed);
        let corpus = valid_frames(&mut rng);
        let mut stream: Vec<u8> = corpus.iter().flatten().copied().collect();
        // Flip bits anywhere — headers make the assembler itself reject,
        // payload flips surface later in decode_frame's CRC check.
        for _ in 0..rng.gen_range(1..=6u32) {
            let pos = rng.gen_range(0..stream.len());
            stream[pos] ^= 1u8 << rng.gen_range(0..8u32);
        }
        let arena = SharedInterner::new();
        let mut assembler = FrameAssembler::new();
        let mut offset = 0usize;
        'stream: while offset < stream.len() {
            let chunk = rng.gen_range(1..=64usize).min(stream.len() - offset);
            assembler.feed(&stream[offset..offset + chunk]);
            offset += chunk;
            loop {
                match assembler.next_frame() {
                    Ok(Some(raw)) => {
                        if decode_frame(raw, &arena).is_err() {
                            typed_errors += 1;
                            break 'stream; // a real reader tears down here
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        typed_errors += 1;
                        break 'stream;
                    }
                }
            }
        }
    }
    assert!(typed_errors > 0, "no corruption was ever surfaced as a typed error");
}

#[test]
fn claimed_lengths_never_inflate_the_assembler() {
    // A header claiming a payload just under the cap, with almost no bytes
    // behind it: the assembler must wait, not allocate the claim.
    let mut huge = encode_shutdown();
    huge[8..12].copy_from_slice(&(MAX_PAYLOAD - 1).to_le_bytes());
    let mut assembler = FrameAssembler::new();
    assembler.feed(&huge);
    assert!(matches!(assembler.next_frame(), Ok(None)));
    assert!(
        assembler.capacity() < 4096,
        "a {}-byte length claim grew the buffer to {} bytes",
        MAX_PAYLOAD - 1,
        assembler.capacity()
    );
    // Over the cap, the claim is a typed header error instead.
    let mut oversized = encode_shutdown();
    oversized[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    let mut assembler = FrameAssembler::new();
    assembler.feed(&oversized);
    assert!(matches!(
        assembler.next_frame(),
        Err(WireError::Oversized(len)) if len == MAX_PAYLOAD + 1
    ));
}
