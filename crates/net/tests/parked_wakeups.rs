//! The wake-on-capacity acceptance bar (the network-side twin of the
//! engine's `idle_engine_performs_zero_wakeups_while_parked`): a reactor
//! with a batch parked on [`SubmitError::Full`] performs **zero** poller
//! wake-ups while the engine stays full — the 1 ms retry tick cannot come
//! back — and still un-parks promptly the moment capacity frees, because
//! the engine's capacity hook wakes it.
//!
//! [`SubmitError::Full`]: drv_engine::SubmitError::Full

use drv_core::{ObjectMonitor, ObjectMonitorFactory, Verdict};
use drv_engine::EngineConfig;
use drv_lang::{Invocation, ObjectId, ProcId, Symbol};
use drv_net::{MonitorClient, MonitorServer, ServerConfig};
use std::borrow::Cow;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(30);

/// A gate the test holds closed to wedge the engine's one worker inside a
/// monitor callback, keeping `max_pending` occupied for as long as the
/// test needs the engine to stay `Full`.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    released: Condvar,
}

impl Gate {
    fn release(&self) {
        *self.open.lock().expect("gate") = true;
        self.released.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().expect("gate");
        while !*open {
            open = self.released.wait(open).expect("gate");
        }
    }
}

struct GatedMonitor(Arc<Gate>);

impl ObjectMonitor for GatedMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("gated")
    }
    fn on_symbol(&mut self, _symbol: &Symbol) -> Verdict {
        self.0.wait_open();
        Verdict::Yes
    }
}

struct GatedFactory(Arc<Gate>);

impl ObjectMonitorFactory for GatedFactory {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("gated")
    }
    fn create(&self, _object: ObjectId) -> Box<dyn ObjectMonitor> {
        Box::new(GatedMonitor(Arc::clone(&self.0)))
    }
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    done()
}

#[test]
fn parked_reactor_performs_zero_wakeups_until_capacity_frees() {
    let gate = Arc::new(Gate::default());
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        // One worker, a 4-event bound: the gated monitor wedges the worker
        // on the first event, so the first batch occupies the bound until
        // the gate opens.
        EngineConfig::new(1).with_max_pending(4),
        Arc::new(GatedFactory(Arc::clone(&gate))),
        ServerConfig::new(),
    )
    .expect("bind");
    let mut client = MonitorClient::connect(server.local_addr()).expect("connect");
    let object = ObjectId(1);
    let wedge: Vec<(ObjectId, Symbol)> = (0..4)
        .map(|i| (object, Symbol::invoke(ProcId(0), Invocation::Write(i))))
        .collect();
    client.send_stream(&wedge, 4).expect("wedge batch");
    // This batch cannot fit while the gate is closed: the reactor must
    // park it.
    let parked: Vec<(ObjectId, Symbol)> =
        vec![(object, Symbol::invoke(ProcId(1), Invocation::Read))];
    client.send_stream(&parked, 1).expect("parked batch");
    assert!(
        wait_until(DEADLINE, || server.stats().engine_full_stalls >= 1),
        "the second batch never parked on the full engine"
    );
    // Settling grace: let the wakeups of the sends themselves drain.
    std::thread::sleep(Duration::from_millis(100));
    let before = server
        .telemetry()
        .snapshot()
        .counter("net_reactor_wakeups")
        .unwrap_or(0);
    std::thread::sleep(Duration::from_millis(300));
    let after = server
        .telemetry()
        .snapshot()
        .counter("net_reactor_wakeups")
        .unwrap_or(0);
    assert_eq!(
        after, before,
        "a reactor with a parked batch woke with no capacity freed: timed retry polling is back"
    );
    // And the park is not a deadlock: freeing capacity fires the engine's
    // capacity hook, which wakes the reactor, which resubmits — every
    // verdict still arrives.
    gate.release();
    let mut received = Vec::new();
    let start = Instant::now();
    while received.len() < 5 {
        assert!(
            start.elapsed() < DEADLINE,
            "only {} of 5 verdicts after the gate opened (lost capacity wake?)",
            received.len()
        );
        received.extend(client.wait_verdicts(Duration::from_millis(100)));
    }
    client.shutdown().expect("clean goodbye");
    let report = server.shutdown().expect("no worker panicked");
    assert_eq!(report.stats.events, 5);
}
