//! Faithful eventually-consistent behaviours.
//!
//! The eventual languages of the paper (`WEC_COUNT`, `SEC_COUNT`, `EC_LED`)
//! are satisfied by services that propagate updates with a delay, the way
//! replicated CRDT-style implementations do (references \[2, 3, 44, 45\] of
//! the paper).  The behaviours here model exactly that: updates become
//! visible to readers only after a configurable number of subsequent events,
//! so histories are *not* linearizable in general but do satisfy the eventual
//! properties.
//!
//! They are the "correct" workloads for the `WEC_COUNT`/`SEC_COUNT`/`EC_LED`
//! rows of Table 1 and the counterpart of the fault-injecting behaviours in
//! [`crate::faulty`].

use crate::behavior::Behavior;
use drv_lang::{Invocation, ProcId, Record, Response};
use std::collections::HashMap;

/// A replicated counter with delayed propagation.
///
/// Each increment becomes visible to *other* processes only after
/// `delay_events` further events have been served; a process always sees its
/// own increments immediately.  The produced histories satisfy both the
/// weakly- and strongly-eventual counter properties but are generally not
/// linearizable.
#[derive(Debug, Clone)]
pub struct ReplicatedCounter {
    /// `(completion time, incrementing process)` of every applied increment.
    incs: Vec<(u64, ProcId)>,
    clock: u64,
    delay_events: u64,
    pending: HashMap<ProcId, Invocation>,
}

impl ReplicatedCounter {
    /// Creates a counter whose increments take `delay_events` events to
    /// propagate to remote readers.
    #[must_use]
    pub fn new(delay_events: u64) -> Self {
        ReplicatedCounter {
            incs: Vec::new(),
            clock: 0,
            delay_events,
            pending: HashMap::new(),
        }
    }

    fn visible_to(&self, reader: ProcId) -> u64 {
        self.incs
            .iter()
            .filter(|(t, p)| *p == reader || t + self.delay_events <= self.clock)
            .count() as u64
    }
}

impl Behavior for ReplicatedCounter {
    fn name(&self) -> String {
        format!("replicated counter (delay {})", self.delay_events)
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        self.clock += 1;
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Inc => {
                self.incs.push((self.clock, proc));
                Response::Ack
            }
            Invocation::Read => Response::Value(self.visible_to(proc)),
            other => panic!("replicated counter cannot serve {other}"),
        }
    }
}

/// A replicated ledger with delayed propagation.
///
/// Appends are totally ordered by arrival; a `get()` returns the prefix of
/// that total order whose appends have propagated (own appends are always
/// visible).  All gets therefore return prefixes of one total order, which
/// keeps the histories eventually consistent (`EC_LED`), though generally not
/// linearizable.
#[derive(Debug, Clone)]
pub struct ReplicatedLedger {
    /// `(completion time, appending process, record)` in arrival order.
    records: Vec<(u64, ProcId, Record)>,
    clock: u64,
    delay_events: u64,
    pending: HashMap<ProcId, Invocation>,
}

impl ReplicatedLedger {
    /// Creates a ledger whose appends take `delay_events` events to propagate
    /// to remote readers.
    #[must_use]
    pub fn new(delay_events: u64) -> Self {
        ReplicatedLedger {
            records: Vec::new(),
            clock: 0,
            delay_events,
            pending: HashMap::new(),
        }
    }

    fn visible_to(&self, reader: ProcId) -> Vec<Record> {
        // The visible sequence must stay a prefix of the arrival order so
        // that all gets are mutually consistent; an own append that has not
        // propagated yet is only included if everything before it has.
        let mut out = Vec::new();
        for (t, p, r) in &self.records {
            if *p == reader || t + self.delay_events <= self.clock {
                out.push(*r);
            } else {
                break;
            }
        }
        out
    }
}

impl Behavior for ReplicatedLedger {
    fn name(&self) -> String {
        format!("replicated ledger (delay {})", self.delay_events)
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        self.clock += 1;
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Append(r) => {
                self.records.push((self.clock, proc, r));
                Response::Ack
            }
            Invocation::Get => Response::Sequence(self.visible_to(proc)),
            other => panic!("replicated ledger cannot serve {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invoke_respond<B: Behavior>(b: &mut B, proc: ProcId, inv: Invocation) -> Response {
        b.on_invoke(proc, &inv);
        b.on_respond(proc)
    }

    #[test]
    fn replicated_counter_lags_then_converges() {
        let mut counter = ReplicatedCounter::new(3);
        invoke_respond(&mut counter, ProcId(0), Invocation::Inc);
        // Remote reader does not see the increment yet…
        assert_eq!(
            invoke_respond(&mut counter, ProcId(1), Invocation::Read),
            Response::Value(0)
        );
        // …the incrementing process does…
        assert_eq!(
            invoke_respond(&mut counter, ProcId(0), Invocation::Read),
            Response::Value(1)
        );
        // …and after the delay everyone does.
        invoke_respond(&mut counter, ProcId(1), Invocation::Read);
        assert_eq!(
            invoke_respond(&mut counter, ProcId(1), Invocation::Read),
            Response::Value(1)
        );
    }

    #[test]
    fn replicated_counter_never_overshoots() {
        let mut counter = ReplicatedCounter::new(1);
        for k in 1..=5u64 {
            invoke_respond(&mut counter, ProcId(0), Invocation::Inc);
            let read = invoke_respond(&mut counter, ProcId(1), Invocation::Read);
            if let Response::Value(v) = read {
                assert!(v <= k);
            } else {
                panic!("unexpected response");
            }
        }
    }

    #[test]
    fn replicated_ledger_serves_prefixes_of_one_order() {
        let mut ledger = ReplicatedLedger::new(2);
        invoke_respond(&mut ledger, ProcId(0), Invocation::Append(1));
        invoke_respond(&mut ledger, ProcId(1), Invocation::Append(2));
        let g0 = invoke_respond(&mut ledger, ProcId(0), Invocation::Get);
        let g1 = invoke_respond(&mut ledger, ProcId(1), Invocation::Get);
        let s0 = match g0 {
            Response::Sequence(s) => s,
            _ => panic!(),
        };
        let s1 = match g1 {
            Response::Sequence(s) => s,
            _ => panic!(),
        };
        // Each view is a prefix of the other (or equal).
        let shorter = s0.len().min(s1.len());
        assert_eq!(&s0[..shorter], &s1[..shorter]);
        // Eventually every record is visible to everyone.
        for _ in 0..4 {
            invoke_respond(&mut ledger, ProcId(2), Invocation::Get);
        }
        assert_eq!(
            invoke_respond(&mut ledger, ProcId(2), Invocation::Get),
            Response::Sequence(vec![1, 2])
        );
    }

    #[test]
    fn own_appends_are_visible_when_contiguous() {
        let mut ledger = ReplicatedLedger::new(10);
        invoke_respond(&mut ledger, ProcId(0), Invocation::Append(7));
        assert_eq!(
            invoke_respond(&mut ledger, ProcId(0), Invocation::Get),
            Response::Sequence(vec![7])
        );
        // A remote append that has not propagated hides later own appends so
        // the view stays a prefix of the arrival order.
        invoke_respond(&mut ledger, ProcId(1), Invocation::Append(8));
        invoke_respond(&mut ledger, ProcId(0), Invocation::Append(9));
        assert_eq!(
            invoke_respond(&mut ledger, ProcId(0), Invocation::Get),
            Response::Sequence(vec![7])
        );
    }

    #[test]
    fn names_mention_delay() {
        assert!(ReplicatedCounter::new(4).name().contains('4'));
        assert!(ReplicatedLedger::new(2).name().contains('2'));
    }
}
