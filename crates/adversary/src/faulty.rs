//! Fault-injecting behaviours.
//!
//! The possibility entries of Table 1 are demonstrated by running the
//! monitors of `drv-core` against both correct and *incorrect* services:
//! a monitor is only interesting if it flags the incorrect ones.  The
//! behaviours in this module each violate one specific clause of one of the
//! paper's correctness properties, so tests and benches can state precisely
//! which violation a monitor is expected to catch:
//!
//! * [`StaleReadRegister`] — reads may return overwritten values
//!   (violates `LIN_REG`, and for sufficiently old values also `SC_REG`),
//! * [`LossyCounter`] — acknowledged increments are dropped
//!   (violates clause (1) of the weakly-eventual counter),
//! * [`NonMonotoneCounter`] — consecutive reads of a process may decrease
//!   (violates clause (2)),
//! * [`OverCounter`] — reads overshoot the number of increments performed
//!   (violates clause (4) of the strongly-eventual counter, and clause (3)
//!   once increments stop),
//! * [`ForgetfulLedger`] — `get()` never shows other processes' appends
//!   (violates the eventual-visibility clause of `EC_LED`),
//! * [`ForkingLedger`] — different processes observe incompatible record
//!   orders (violates the validity clause of `EC_LED` and all stronger
//!   ledger languages).
//!
//! All behaviours are deterministic: fault injection is driven by operation
//! counts, not randomness, so every run is reproducible.

use crate::behavior::Behavior;
use drv_lang::{Invocation, ProcId, Record, Response};
use std::collections::HashMap;

/// A register whose reads may return stale (already overwritten) values.
///
/// Every `stale_every`-th read returns the value that was current `lag`
/// completed writes ago.  With `lag ≥ 1` and at least two completed writes
/// the resulting histories are not linearizable.
#[derive(Debug, Clone)]
pub struct StaleReadRegister {
    history: Vec<u64>,
    pending: HashMap<ProcId, Invocation>,
    reads_served: u64,
    stale_every: u64,
    lag: usize,
}

impl StaleReadRegister {
    /// Creates a register that serves every `stale_every`-th read from `lag`
    /// writes in the past.
    #[must_use]
    pub fn new(stale_every: u64, lag: usize) -> Self {
        StaleReadRegister {
            history: vec![0],
            pending: HashMap::new(),
            reads_served: 0,
            stale_every: stale_every.max(1),
            lag: lag.max(1),
        }
    }
}

impl Behavior for StaleReadRegister {
    fn name(&self) -> String {
        format!("stale-read register (every {} reads)", self.stale_every)
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Write(x) => {
                self.history.push(x);
                Response::Ack
            }
            Invocation::Read => {
                self.reads_served += 1;
                let current = *self.history.last().expect("history is never empty");
                if self.reads_served.is_multiple_of(self.stale_every) && self.history.len() > self.lag {
                    Response::Value(self.history[self.history.len() - 1 - self.lag])
                } else {
                    Response::Value(current)
                }
            }
            other => panic!("stale-read register cannot serve {other}"),
        }
    }
}

/// A counter that silently drops every `drop_every`-th increment.
#[derive(Debug, Clone)]
pub struct LossyCounter {
    count: u64,
    incs_seen: u64,
    drop_every: u64,
    pending: HashMap<ProcId, Invocation>,
}

impl LossyCounter {
    /// Creates a counter that drops every `drop_every`-th increment.
    #[must_use]
    pub fn new(drop_every: u64) -> Self {
        LossyCounter {
            count: 0,
            incs_seen: 0,
            drop_every: drop_every.max(1),
            pending: HashMap::new(),
        }
    }
}

impl Behavior for LossyCounter {
    fn name(&self) -> String {
        format!("lossy counter (drops every {}-th inc)", self.drop_every)
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Inc => {
                self.incs_seen += 1;
                if !self.incs_seen.is_multiple_of(self.drop_every) {
                    self.count += 1;
                }
                Response::Ack
            }
            Invocation::Read => Response::Value(self.count),
            other => panic!("lossy counter cannot serve {other}"),
        }
    }
}

/// A counter whose reads oscillate: every `dip_every`-th read returns one
/// less than the previous read of the same process.
#[derive(Debug, Clone)]
pub struct NonMonotoneCounter {
    count: u64,
    reads_served: u64,
    dip_every: u64,
    last_read: HashMap<ProcId, u64>,
    pending: HashMap<ProcId, Invocation>,
}

impl NonMonotoneCounter {
    /// Creates a counter whose every `dip_every`-th read dips below the
    /// previous read of the same process.
    #[must_use]
    pub fn new(dip_every: u64) -> Self {
        NonMonotoneCounter {
            count: 0,
            reads_served: 0,
            dip_every: dip_every.max(2),
            last_read: HashMap::new(),
            pending: HashMap::new(),
        }
    }
}

impl Behavior for NonMonotoneCounter {
    fn name(&self) -> String {
        format!("non-monotone counter (dips every {} reads)", self.dip_every)
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Inc => {
                self.count += 1;
                Response::Ack
            }
            Invocation::Read => {
                self.reads_served += 1;
                let previous = self.last_read.get(&proc).copied().unwrap_or(0);
                let value = if self.reads_served.is_multiple_of(self.dip_every) && previous > 0 {
                    previous - 1
                } else {
                    self.count.max(previous)
                };
                self.last_read.insert(proc, value);
                Response::Value(value)
            }
            other => panic!("non-monotone counter cannot serve {other}"),
        }
    }
}

/// A counter whose reads overshoot the true count by a fixed amount.
#[derive(Debug, Clone)]
pub struct OverCounter {
    count: u64,
    overshoot: u64,
    pending: HashMap<ProcId, Invocation>,
}

impl OverCounter {
    /// Creates a counter overshooting every read by `overshoot`.
    #[must_use]
    pub fn new(overshoot: u64) -> Self {
        OverCounter {
            count: 0,
            overshoot,
            pending: HashMap::new(),
        }
    }
}

impl Behavior for OverCounter {
    fn name(&self) -> String {
        format!("over-counting counter (+{})", self.overshoot)
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Inc => {
                self.count += 1;
                Response::Ack
            }
            Invocation::Read => Response::Value(self.count + self.overshoot),
            other => panic!("over-counting counter cannot serve {other}"),
        }
    }
}

/// A ledger that only ever shows a process its *own* appends.
#[derive(Debug, Clone, Default)]
pub struct ForgetfulLedger {
    per_proc: HashMap<ProcId, Vec<Record>>,
    pending: HashMap<ProcId, Invocation>,
}

impl ForgetfulLedger {
    /// Creates the behaviour.
    #[must_use]
    pub fn new() -> Self {
        ForgetfulLedger::default()
    }
}

impl Behavior for ForgetfulLedger {
    fn name(&self) -> String {
        "forgetful ledger (never shows remote appends)".to_string()
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Append(r) => {
                self.per_proc.entry(proc).or_default().push(r);
                Response::Ack
            }
            Invocation::Get => {
                Response::Sequence(self.per_proc.get(&proc).cloned().unwrap_or_default())
            }
            other => panic!("forgetful ledger cannot serve {other}"),
        }
    }
}

/// A ledger that forks: even-indexed processes see records in append order,
/// odd-indexed processes see them in reverse order.
#[derive(Debug, Clone, Default)]
pub struct ForkingLedger {
    records: Vec<Record>,
    pending: HashMap<ProcId, Invocation>,
}

impl ForkingLedger {
    /// Creates the behaviour.
    #[must_use]
    pub fn new() -> Self {
        ForkingLedger::default()
    }
}

impl Behavior for ForkingLedger {
    fn name(&self) -> String {
        "forking ledger (incompatible orders)".to_string()
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.pending.insert(proc, invocation.clone());
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self.pending.remove(&proc).expect("pending invocation") {
            Invocation::Append(r) => {
                self.records.push(r);
                Response::Ack
            }
            Invocation::Get => {
                let mut view = self.records.clone();
                if proc.index() % 2 == 1 {
                    view.reverse();
                }
                Response::Sequence(view)
            }
            other => panic!("forking ledger cannot serve {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invoke_respond<B: Behavior>(b: &mut B, proc: ProcId, inv: Invocation) -> Response {
        b.on_invoke(proc, &inv);
        b.on_respond(proc)
    }

    #[test]
    fn stale_register_serves_old_values() {
        let mut reg = StaleReadRegister::new(2, 1);
        assert_eq!(invoke_respond(&mut reg, ProcId(0), Invocation::Write(1)), Response::Ack);
        assert_eq!(invoke_respond(&mut reg, ProcId(0), Invocation::Write(2)), Response::Ack);
        // First read: fresh.  Second read: stale (previous value).
        assert_eq!(invoke_respond(&mut reg, ProcId(1), Invocation::Read), Response::Value(2));
        assert_eq!(invoke_respond(&mut reg, ProcId(1), Invocation::Read), Response::Value(1));
        assert!(reg.name().contains("stale"));
    }

    #[test]
    fn lossy_counter_drops_increments() {
        let mut counter = LossyCounter::new(2);
        for _ in 0..4 {
            invoke_respond(&mut counter, ProcId(0), Invocation::Inc);
        }
        // Two of the four increments were dropped.
        assert_eq!(
            invoke_respond(&mut counter, ProcId(0), Invocation::Read),
            Response::Value(2)
        );
    }

    #[test]
    fn non_monotone_counter_dips() {
        let mut counter = NonMonotoneCounter::new(2);
        invoke_respond(&mut counter, ProcId(0), Invocation::Inc);
        invoke_respond(&mut counter, ProcId(0), Invocation::Inc);
        let first = invoke_respond(&mut counter, ProcId(1), Invocation::Read);
        let second = invoke_respond(&mut counter, ProcId(1), Invocation::Read);
        assert_eq!(first, Response::Value(2));
        assert_eq!(second, Response::Value(1));
    }

    #[test]
    fn over_counter_overshoots() {
        let mut counter = OverCounter::new(3);
        invoke_respond(&mut counter, ProcId(0), Invocation::Inc);
        assert_eq!(
            invoke_respond(&mut counter, ProcId(1), Invocation::Read),
            Response::Value(4)
        );
    }

    #[test]
    fn forgetful_ledger_hides_remote_appends() {
        let mut ledger = ForgetfulLedger::new();
        invoke_respond(&mut ledger, ProcId(0), Invocation::Append(10));
        invoke_respond(&mut ledger, ProcId(1), Invocation::Append(20));
        assert_eq!(
            invoke_respond(&mut ledger, ProcId(0), Invocation::Get),
            Response::Sequence(vec![10])
        );
        assert_eq!(
            invoke_respond(&mut ledger, ProcId(1), Invocation::Get),
            Response::Sequence(vec![20])
        );
    }

    #[test]
    fn forking_ledger_shows_incompatible_orders() {
        let mut ledger = ForkingLedger::new();
        invoke_respond(&mut ledger, ProcId(0), Invocation::Append(1));
        invoke_respond(&mut ledger, ProcId(0), Invocation::Append(2));
        assert_eq!(
            invoke_respond(&mut ledger, ProcId(0), Invocation::Get),
            Response::Sequence(vec![1, 2])
        );
        assert_eq!(
            invoke_respond(&mut ledger, ProcId(1), Invocation::Get),
            Response::Sequence(vec![2, 1])
        );
    }

    #[test]
    fn names_are_descriptive() {
        assert!(LossyCounter::new(3).name().contains("lossy"));
        assert!(NonMonotoneCounter::new(3).name().contains("non-monotone"));
        assert!(OverCounter::new(1).name().contains("over-counting"));
        assert!(ForgetfulLedger::new().name().contains("forgetful"));
        assert!(ForkingLedger::new().name().contains("forking"));
    }
}
