//! The timed adversary Aτ (Figure 6): wrapping A with announce/view code.
//!
//! The transformation of Section 6 wraps the black-box adversary A in simple
//! read/write wait-free code: before forwarding an invocation to A, the
//! process announces it in a shared array `M[i]` (the running set of all its
//! invocations so far); after receiving A's response, the process snapshots
//! `M` and returns the union of all entries as the operation's *view*.  Views
//! play the role of timestamps: the view of an operation contains the
//! invocation of every operation that precedes it and of some operations
//! concurrent with it (Theorem 6.1).
//!
//! [`TimedAdversary`] implements the wrapper.  Its four methods correspond to
//! the four groups of lines of Figure 6 and are meant to be scheduled as
//! separate events by the `drv-core` runtime:
//!
//! | Figure 6 lines | method |
//! |---|---|
//! | 01–02 (record + write `M[i]`) | [`TimedAdversary::announce`] |
//! | 03 (send to A)                | [`TimedAdversary::forward_invoke`] |
//! | 04 (receive from A)           | [`TimedAdversary::forward_respond`] |
//! | 05–07 (snapshot `M`, build and return the view) | [`TimedAdversary::snapshot_view`] |

use crate::behavior::Behavior;
use drv_lang::{Invocation, ProcId, Response};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Unique identity of an invocation event: the issuing process and the
/// 0-based index of the operation among that process's operations.
///
/// The paper assumes every invocation symbol is sent at most once (or marked
/// with its position to make it unique); the key is that marking.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct InvocationKey {
    /// The issuing process.
    pub proc: ProcId,
    /// The operation's index among the process's operations.
    pub seq: u64,
}

impl fmt::Display for InvocationKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.proc, self.seq)
    }
}

/// The view attached by Aτ to a response: the set of invocations announced in
/// `M` at the time of the snapshot, together with their payloads.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    invocations: BTreeMap<InvocationKey, Invocation>,
}

impl View {
    /// The empty view.
    #[must_use]
    pub fn new() -> Self {
        View::default()
    }

    /// Number of invocations in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Returns `true` when the view contains no invocation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Returns `true` when the view contains the invocation identified by
    /// `key`.
    #[must_use]
    pub fn contains(&self, key: &InvocationKey) -> bool {
        self.invocations.contains_key(key)
    }

    /// Inserts an invocation into the view.
    pub fn insert(&mut self, key: InvocationKey, invocation: Invocation) {
        self.invocations.insert(key, invocation);
    }

    /// Iterates over the invocations in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&InvocationKey, &Invocation)> {
        self.invocations.iter()
    }

    /// Number of invocations in the view that satisfy `pred`.
    #[must_use]
    pub fn count_matching(&self, mut pred: impl FnMut(&Invocation) -> bool) -> usize {
        self.invocations.values().filter(|inv| pred(inv)).count()
    }

    /// Set-union of two views.
    #[must_use]
    pub fn union(&self, other: &View) -> View {
        let mut out = self.clone();
        for (k, v) in &other.invocations {
            out.invocations.insert(*k, v.clone());
        }
        out
    }

    /// Returns `true` when `self ⊆ other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &View) -> bool {
        self.invocations
            .keys()
            .all(|k| other.invocations.contains_key(k))
    }

    /// Returns `true` when the views are comparable by containment (the key
    /// property guaranteed by the snapshot in Aτ).
    #[must_use]
    pub fn comparable(&self, other: &View) -> bool {
        self.is_subset_of(other) || other.is_subset_of(self)
    }

    /// The keys of the view, in order.
    #[must_use]
    pub fn keys(&self) -> Vec<InvocationKey> {
        self.invocations.keys().copied().collect()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, inv)) in self.invocations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}:{inv}")?;
        }
        write!(f, "}}")
    }
}

/// A response of the timed adversary: the inner response plus the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedResponse {
    /// The response of the wrapped adversary A.
    pub response: Response,
    /// The view computed from the snapshot of the announce array.
    pub view: View,
}

/// The Figure 6 wrapper turning any [`Behavior`] A into the timed adversary
/// Aτ.
///
/// The shared announce array `M` is modelled as a vector of per-process
/// invocation sets; `announce` and `snapshot_view` are the two shared-memory
/// events of the wrapper and are scheduled as separate atomic steps by the
/// runtime, exactly as the write and snapshot of Figure 6.
#[derive(Debug)]
pub struct TimedAdversary<B> {
    inner: B,
    announce_array: Vec<View>,
    next_seq: Vec<u64>,
}

impl<B: Behavior> TimedAdversary<B> {
    /// Wraps `inner` for a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, inner: B) -> Self {
        assert!(n > 0, "the timed adversary needs at least one process");
        TimedAdversary {
            inner,
            announce_array: vec![View::new(); n],
            next_seq: vec![0; n],
        }
    }

    /// Name of the wrapped behaviour, marked as timed.
    #[must_use]
    pub fn name(&self) -> String {
        format!("Aτ[{}]", self.inner.name())
    }

    /// Access to the wrapped behaviour.
    #[must_use]
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped behaviour (used by the runtime to query
    /// [`Behavior::next_invocation`] and [`Behavior::response_ready`]).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Figure 6, lines 01–02: assigns the invocation its unique key and
    /// writes the process's accumulated invocation set to `M[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of bounds.
    pub fn announce(&mut self, proc: ProcId, invocation: &Invocation) -> InvocationKey {
        let idx = proc.index();
        assert!(idx < self.announce_array.len(), "process index out of bounds");
        let key = InvocationKey {
            proc,
            seq: self.next_seq[idx],
        };
        self.next_seq[idx] += 1;
        self.announce_array[idx].insert(key, invocation.clone());
        key
    }

    /// Figure 6, line 03: forwards the invocation to the wrapped adversary.
    pub fn forward_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        self.inner.on_invoke(proc, invocation);
    }

    /// Figure 6, line 04: obtains the wrapped adversary's response.
    pub fn forward_respond(&mut self, proc: ProcId) -> Response {
        self.inner.on_respond(proc)
    }

    /// Figure 6, lines 05–07: snapshots `M` and returns the union of its
    /// entries as the view.
    #[must_use]
    pub fn snapshot_view(&self, _proc: ProcId) -> View {
        self.announce_array
            .iter()
            .fold(View::new(), |acc, entry| acc.union(entry))
    }

    /// Convenience: the full wrapped exchange (announce, forward, respond,
    /// view) as a single atomic block.  Executions built this way are *tight*
    /// in the sense of \[17\]: their sketch equals their input word.  Used by
    /// the impossibility constructions of Lemmas 6.2 and 6.5.
    pub fn tight_exchange(&mut self, proc: ProcId, invocation: &Invocation) -> (InvocationKey, TimedResponse) {
        let key = self.announce(proc, invocation);
        self.forward_invoke(proc, invocation);
        let response = self.forward_respond(proc);
        let view = self.snapshot_view(proc);
        (key, TimedResponse { response, view })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::AtomicObject;
    use drv_spec::Register;

    #[test]
    fn views_contain_all_preceding_invocations() {
        let mut timed = TimedAdversary::new(2, AtomicObject::new(Register::new()));
        let w = Invocation::Write(4);
        let key0 = timed.announce(ProcId(0), &w);
        timed.forward_invoke(ProcId(0), &w);
        assert_eq!(timed.forward_respond(ProcId(0)), Response::Ack);
        let view0 = timed.snapshot_view(ProcId(0));
        assert!(view0.contains(&key0));
        assert_eq!(view0.len(), 1);

        let r = Invocation::Read;
        let key1 = timed.announce(ProcId(1), &r);
        timed.forward_invoke(ProcId(1), &r);
        assert_eq!(timed.forward_respond(ProcId(1)), Response::Value(4));
        let view1 = timed.snapshot_view(ProcId(1));
        // The read's view contains both the preceding write and itself.
        assert!(view1.contains(&key0));
        assert!(view1.contains(&key1));
        assert!(view0.is_subset_of(&view1));
        assert!(view0.comparable(&view1));
    }

    #[test]
    fn views_of_concurrent_operations_are_comparable() {
        let mut timed = TimedAdversary::new(3, AtomicObject::new(Register::new()));
        // Announce three concurrent operations before any snapshot.
        let k0 = timed.announce(ProcId(0), &Invocation::Write(1));
        let k1 = timed.announce(ProcId(1), &Invocation::Write(2));
        let k2 = timed.announce(ProcId(2), &Invocation::Read);
        timed.forward_invoke(ProcId(0), &Invocation::Write(1));
        timed.forward_invoke(ProcId(1), &Invocation::Write(2));
        timed.forward_invoke(ProcId(2), &Invocation::Read);
        let _ = timed.forward_respond(ProcId(0));
        let _ = timed.forward_respond(ProcId(1));
        let _ = timed.forward_respond(ProcId(2));
        let v0 = timed.snapshot_view(ProcId(0));
        let v1 = timed.snapshot_view(ProcId(1));
        let v2 = timed.snapshot_view(ProcId(2));
        for (a, b) in [(&v0, &v1), (&v0, &v2), (&v1, &v2)] {
            assert!(a.comparable(b));
        }
        for v in [&v0, &v1, &v2] {
            assert!(v.contains(&k0) && v.contains(&k1) && v.contains(&k2));
        }
    }

    #[test]
    fn tight_exchanges_have_self_contained_views() {
        let mut timed = TimedAdversary::new(2, AtomicObject::new(Register::new()));
        let (key, timed_response) = timed.tight_exchange(ProcId(0), &Invocation::Write(9));
        assert_eq!(timed_response.response, Response::Ack);
        assert!(timed_response.view.contains(&key));
        let (key2, timed_response2) = timed.tight_exchange(ProcId(1), &Invocation::Read);
        assert_eq!(timed_response2.response, Response::Value(9));
        assert!(timed_response2.view.contains(&key));
        assert!(timed_response2.view.contains(&key2));
        assert_eq!(timed.name(), "Aτ[atomic register]");
    }

    #[test]
    fn view_set_operations() {
        let mut a = View::new();
        let mut b = View::new();
        let k0 = InvocationKey { proc: ProcId(0), seq: 0 };
        let k1 = InvocationKey { proc: ProcId(1), seq: 0 };
        a.insert(k0, Invocation::Inc);
        b.insert(k0, Invocation::Inc);
        b.insert(k1, Invocation::Read);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.comparable(&b));
        assert_eq!(a.union(&b).len(), 2);
        assert_eq!(b.count_matching(Invocation::is_inc), 1);
        assert_eq!(b.keys(), vec![k0, k1]);
        assert!(!View::new().contains(&k0));
        assert!(View::new().is_empty());
        assert!(format!("{b}").contains("inc"));
        assert_eq!(format!("{k1}"), "p2#0");
    }

    #[test]
    fn incomparable_views_are_detected() {
        let mut a = View::new();
        let mut b = View::new();
        a.insert(InvocationKey { proc: ProcId(0), seq: 0 }, Invocation::Inc);
        b.insert(InvocationKey { proc: ProcId(1), seq: 0 }, Invocation::Inc);
        assert!(!a.comparable(&b));
    }

    #[test]
    fn inner_access_and_sequencing() {
        let mut timed = TimedAdversary::new(2, AtomicObject::new(Register::new()));
        assert_eq!(timed.inner().name(), "atomic register");
        assert!(timed.inner_mut().response_ready(ProcId(0)));
        let k_first = timed.announce(ProcId(0), &Invocation::Read);
        let k_second = timed.announce(ProcId(0), &Invocation::Read);
        assert_eq!(k_first.seq, 0);
        assert_eq!(k_second.seq, 1);
    }
}
