//! The [`Behavior`] trait — the adversary A as an online service — and the
//! faithful (correct) object behaviours.
//!
//! In the paper (Section 3), the adversary A is a black-box distributed
//! service: each monitor process sends it invocation symbols and later
//! receives response symbols, and A decides both the content of the responses
//! and the times at which all events occur.  The *timing* half of the
//! adversary is played by the scheduler of the `drv-core` runtime; the
//! *content* half is a [`Behavior`]: a state machine that is told about every
//! send event and must produce a response at every receive event.
//!
//! [`AtomicObject`] is the canonical correct behaviour: it applies each
//! invocation atomically to a sequential specification, at a configurable
//! linearization point, and therefore only exhibits linearizable histories.

use drv_lang::{Invocation, ProcId, Response};
use drv_spec::SequentialSpec;
use std::collections::HashMap;
use std::fmt;

/// The content half of the adversary A: an online service producing response
/// symbols for invocation symbols.
///
/// The runtime calls [`Behavior::on_invoke`] when it schedules the send event
/// of a process (Figure 1, line 03) and [`Behavior::on_respond`] when it
/// schedules the matching receive event (line 04).  Between the two calls the
/// operation is *pending*; the runtime never issues a second `on_invoke` for
/// the same process before the previous operation's `on_respond`.
pub trait Behavior: Send {
    /// Human-readable name of the behaviour (used in reports and benches).
    fn name(&self) -> String;

    /// Lets the adversary dictate the invocation a process picks next
    /// (Figure 1, line 01 is non-deterministic, and Claim 3.1 resolves the
    /// non-determinism adversarially).  Returning `None` leaves the choice to
    /// the monitor.
    fn next_invocation(&mut self, proc: ProcId) -> Option<Invocation> {
        let _ = proc;
        None
    }

    /// The send event of `proc` (Figure 1, line 03).
    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation);

    /// The receive event of `proc` (Figure 1, line 04): produces the response
    /// for the process's pending invocation.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `proc` has no pending invocation; the
    /// runtime never does this.
    fn on_respond(&mut self, proc: ProcId) -> Response;

    /// Whether the adversary is willing to schedule the receive event of
    /// `proc` yet.  Fair executions require every pending operation to be
    /// eventually answered, but the adversary may delay responses arbitrarily
    /// long; the runtime consults this before scheduling a receive event and
    /// ignores it once an execution needs to wind down.
    fn response_ready(&self, proc: ProcId) -> bool {
        let _ = proc;
        true
    }
}

impl fmt::Debug for dyn Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Behavior({})", self.name())
    }
}

impl<B: Behavior + ?Sized> Behavior for Box<B> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn next_invocation(&mut self, proc: ProcId) -> Option<Invocation> {
        (**self).next_invocation(proc)
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        (**self).on_invoke(proc, invocation);
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        (**self).on_respond(proc)
    }

    fn response_ready(&self, proc: ProcId) -> bool {
        (**self).response_ready(proc)
    }
}

/// When an [`AtomicObject`] applies a pending invocation to its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinearizationPoint {
    /// The invocation takes effect at the send event.
    AtInvoke,
    /// The invocation takes effect at the receive event (default).
    #[default]
    AtRespond,
}

/// A faithful, linearizable behaviour: every invocation is applied atomically
/// to the sequential specification `S`.
///
/// Whatever interleaving the scheduler produces, the resulting history is
/// linearizable — the linearization point of every operation is its
/// [`LinearizationPoint`], which always lies inside the operation's interval.
///
/// ```
/// use drv_adversary::{AtomicObject, Behavior};
/// use drv_lang::{Invocation, ProcId, Response};
/// use drv_spec::Register;
///
/// let mut object = AtomicObject::new(Register::new());
/// object.on_invoke(ProcId(0), &Invocation::Write(3));
/// assert_eq!(object.on_respond(ProcId(0)), Response::Ack);
/// object.on_invoke(ProcId(1), &Invocation::Read);
/// assert_eq!(object.on_respond(ProcId(1)), Response::Value(3));
/// ```
#[derive(Debug, Clone)]
pub struct AtomicObject<S: SequentialSpec> {
    spec: S,
    state: S::State,
    point: LinearizationPoint,
    pending: HashMap<ProcId, PendingOp>,
}

#[derive(Debug, Clone)]
enum PendingOp {
    /// The invocation has been applied already; the response is stored.
    Applied(Response),
    /// The invocation is applied lazily at the receive event.
    Deferred(Invocation),
}

impl<S: SequentialSpec> AtomicObject<S> {
    /// Creates a faithful behaviour around `spec`, linearizing at the receive
    /// event.
    #[must_use]
    pub fn new(spec: S) -> Self {
        let state = spec.initial();
        AtomicObject {
            spec,
            state,
            point: LinearizationPoint::AtRespond,
            pending: HashMap::new(),
        }
    }

    /// Sets the linearization point.
    #[must_use]
    pub fn with_linearization_point(mut self, point: LinearizationPoint) -> Self {
        self.point = point;
        self
    }

    /// The current object state.
    #[must_use]
    pub fn state(&self) -> &S::State {
        &self.state
    }

    /// The underlying specification.
    #[must_use]
    pub fn spec(&self) -> &S {
        &self.spec
    }

    fn apply(&mut self, invocation: &Invocation) -> Response {
        let (next, response) = self
            .spec
            .apply(&self.state, invocation)
            .unwrap_or_else(|| panic!("invocation {invocation} is not in the object's alphabet"));
        self.state = next;
        response
    }
}

impl<S: SequentialSpec> Behavior for AtomicObject<S> {
    fn name(&self) -> String {
        format!("atomic {}", self.spec.name())
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        assert!(
            !self.pending.contains_key(&proc),
            "process {proc} already has a pending invocation"
        );
        let entry = match self.point {
            LinearizationPoint::AtInvoke => PendingOp::Applied(self.apply(invocation)),
            LinearizationPoint::AtRespond => PendingOp::Deferred(invocation.clone()),
        };
        self.pending.insert(proc, entry);
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self
            .pending
            .remove(&proc)
            .unwrap_or_else(|| panic!("process {proc} has no pending invocation"))
        {
            PendingOp::Applied(response) => response,
            PendingOp::Deferred(invocation) => self.apply(&invocation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drv_spec::{Counter, Ledger, Register};

    #[test]
    fn atomic_register_round_trips() {
        let mut object = AtomicObject::new(Register::new());
        object.on_invoke(ProcId(0), &Invocation::Write(9));
        assert_eq!(object.on_respond(ProcId(0)), Response::Ack);
        object.on_invoke(ProcId(1), &Invocation::Read);
        assert_eq!(object.on_respond(ProcId(1)), Response::Value(9));
        assert_eq!(object.name(), "atomic register");
        assert_eq!(*object.state(), 9);
    }

    #[test]
    fn linearization_point_at_invoke_freezes_the_response() {
        // p0's read linearizes at its send event, before p1's write takes
        // effect, even though p0's receive event happens after p1's.
        let mut object =
            AtomicObject::new(Register::new()).with_linearization_point(LinearizationPoint::AtInvoke);
        object.on_invoke(ProcId(0), &Invocation::Read);
        object.on_invoke(ProcId(1), &Invocation::Write(5));
        assert_eq!(object.on_respond(ProcId(1)), Response::Ack);
        assert_eq!(object.on_respond(ProcId(0)), Response::Value(0));
    }

    #[test]
    fn linearization_point_at_respond_sees_later_writes() {
        let mut object = AtomicObject::new(Register::new());
        object.on_invoke(ProcId(0), &Invocation::Read);
        object.on_invoke(ProcId(1), &Invocation::Write(5));
        assert_eq!(object.on_respond(ProcId(1)), Response::Ack);
        assert_eq!(object.on_respond(ProcId(0)), Response::Value(5));
    }

    #[test]
    fn counter_and_ledger_behave() {
        let mut counter = AtomicObject::new(Counter::new());
        counter.on_invoke(ProcId(0), &Invocation::Inc);
        counter.on_respond(ProcId(0));
        counter.on_invoke(ProcId(1), &Invocation::Read);
        assert_eq!(counter.on_respond(ProcId(1)), Response::Value(1));

        let mut ledger = AtomicObject::new(Ledger::new());
        ledger.on_invoke(ProcId(0), &Invocation::Append(4));
        ledger.on_respond(ProcId(0));
        ledger.on_invoke(ProcId(1), &Invocation::Get);
        assert_eq!(ledger.on_respond(ProcId(1)), Response::Sequence(vec![4]));
    }

    #[test]
    fn default_hooks_are_permissive() {
        let mut object = AtomicObject::new(Register::new());
        assert_eq!(Behavior::next_invocation(&mut object, ProcId(0)), None);
        assert!(object.response_ready(ProcId(0)));
    }

    #[test]
    #[should_panic(expected = "already has a pending invocation")]
    fn double_invoke_is_rejected() {
        let mut object = AtomicObject::new(Register::new());
        object.on_invoke(ProcId(0), &Invocation::Read);
        object.on_invoke(ProcId(0), &Invocation::Read);
    }

    #[test]
    #[should_panic(expected = "no pending invocation")]
    fn respond_without_invoke_is_rejected() {
        let mut object = AtomicObject::new(Register::new());
        let _ = object.on_respond(ProcId(0));
    }
}
