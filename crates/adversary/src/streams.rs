//! Seeded multi-object register traffic: the shared scenario generator of
//! the workspace's differential suites and load generators.
//!
//! Several consumers — the engine's differential tests, the network
//! loopback tests, the engine bench and the `netload` load generator —
//! need the same shape of traffic: per-object register histories from a
//! few client processes, with overlapping operations (real concurrency for
//! the checkers to resolve) and, optionally, injected stale reads (so both
//! YES and NO verdicts occur).  This module is the one copy of that
//! generator; each consumer picks its [`RegisterStreamShape`] and merge
//! order.
//!
//! Determinism contract: for a fixed `(rng seed, shape, ops)` the symbol
//! sequence is reproducible — the generator draws from the caller's RNG in
//! a fixed order (overlap, process choice, operation choice, response
//! order, staleness-per-read when `stale > 0`).

use drv_lang::{Invocation, ObjectId, ProcId, Response, Symbol};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// The tunables of one object's generated register stream.
#[derive(Debug, Clone, Copy)]
pub struct RegisterStreamShape {
    /// Client processes issuing operations (process ids `0..processes`).
    pub processes: usize,
    /// Probability that a step issues two overlapping operations.
    pub overlap: f64,
    /// Probability that a read returns a stale/garbage value (a
    /// non-member to flag).  `0.0` draws nothing from the RNG for reads,
    /// producing all-member steady-state traffic.
    pub stale: f64,
}

impl RegisterStreamShape {
    /// The differential-suite shape: 2 processes, 30 % overlap, 10 % stale
    /// reads — both verdict polarities occur.
    #[must_use]
    pub fn differential() -> Self {
        RegisterStreamShape { processes: 2, overlap: 0.3, stale: 0.1 }
    }

    /// The load-generator shape: 2 processes, 25 % overlap, no stale reads
    /// — correct steady-state traffic (the checkers stay on the member
    /// fast path).
    #[must_use]
    pub fn load() -> Self {
        RegisterStreamShape { processes: 2, overlap: 0.25, stale: 0.0 }
    }
}

/// One object's symbol stream: a register history of `ops` completed
/// operations from `shape.processes` clients, with overlapping operations
/// and (per `shape.stale`) injected stale reads.
#[must_use]
pub fn register_object_stream(
    rng: &mut StdRng,
    ops: usize,
    shape: &RegisterStreamShape,
) -> Vec<Symbol> {
    let mut symbols = Vec::new();
    let mut value = 0u64;
    let mut next_write = 1u64;
    let mut emitted = 0;
    while emitted < ops {
        let overlap = ops - emitted >= 2 && rng.gen_bool(shape.overlap);
        let procs: Vec<usize> = if overlap {
            vec![0, 1]
        } else {
            vec![rng.gen_range(0..shape.processes)]
        };
        let mut invocations = Vec::new();
        for &p in &procs {
            let invocation = if rng.gen_bool(0.5) {
                let v = next_write;
                next_write += 1;
                Invocation::Write(v)
            } else {
                Invocation::Read
            };
            symbols.push(Symbol::invoke(ProcId(p), invocation.clone()));
            invocations.push((p, invocation));
        }
        if overlap && rng.gen_bool(0.5) {
            invocations.reverse();
        }
        for (p, invocation) in invocations {
            let response = match invocation {
                Invocation::Write(v) => {
                    value = v;
                    Response::Ack
                }
                _ => {
                    if shape.stale > 0.0 && rng.gen_bool(shape.stale) {
                        Response::Value(value + 1000)
                    } else {
                        Response::Value(value)
                    }
                }
            };
            symbols.push(Symbol::respond(ProcId(p), response));
            emitted += 1;
        }
    }
    symbols
}

/// Merges per-object streams by repeatedly picking a random non-empty
/// stream (per-object order preserved) — the adversarial interleaving of
/// the differential suites.
#[must_use]
pub fn merge_random(
    rng: &mut StdRng,
    per_object: Vec<(ObjectId, Vec<Symbol>)>,
) -> Vec<(ObjectId, Symbol)> {
    let mut queues: Vec<(ObjectId, VecDeque<Symbol>)> = per_object
        .into_iter()
        .map(|(object, symbols)| (object, symbols.into()))
        .collect();
    let mut merged = Vec::new();
    while queues.iter().any(|(_, queue)| !queue.is_empty()) {
        let pick = rng.gen_range(0..queues.len());
        if let Some(symbol) = queues[pick].1.pop_front() {
            merged.push((queues[pick].0, symbol));
        }
    }
    merged
}

/// Merges per-object streams round-robin, one symbol per object per round
/// (per-object order preserved) — every batch mixes objects, the
/// adversarial case for routing overhead in benches.
#[must_use]
pub fn merge_round_robin(per_object: Vec<(ObjectId, Vec<Symbol>)>) -> Vec<(ObjectId, Symbol)> {
    let mut queues: Vec<(ObjectId, VecDeque<Symbol>)> = per_object
        .into_iter()
        .map(|(object, symbols)| (object, symbols.into()))
        .collect();
    let mut merged = Vec::new();
    loop {
        let mut progressed = false;
        for (object, queue) in &mut queues {
            if let Some(symbol) = queue.pop_front() {
                merged.push((*object, symbol));
                progressed = true;
            }
        }
        if !progressed {
            return merged;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn streams_are_deterministic_and_well_shaped() {
        let shape = RegisterStreamShape::differential();
        let a = register_object_stream(&mut StdRng::seed_from_u64(7), 10, &shape);
        let b = register_object_stream(&mut StdRng::seed_from_u64(7), 10, &shape);
        assert_eq!(a, b, "same seed, same stream");
        // 10 completed operations = 10 invocations + 10 responses.
        assert_eq!(a.iter().filter(|s| s.is_invocation()).count(), 10);
        assert_eq!(a.iter().filter(|s| s.is_response()).count(), 10);
    }

    #[test]
    fn shapes_control_stale_injection() {
        // Stale reads are offset by +1000, far above any written value at
        // these sizes: the load shape must produce none, the differential
        // shape some (over enough seeds).
        let read_values = |shape: &RegisterStreamShape| -> Vec<u64> {
            (0..20u64)
                .flat_map(|seed| {
                    register_object_stream(&mut StdRng::seed_from_u64(seed), 40, shape)
                })
                .filter_map(|symbol| symbol.response().and_then(Response::as_value))
                .collect()
        };
        assert!(
            read_values(&RegisterStreamShape::load()).iter().all(|&v| v < 1000),
            "stale read in a stale=0 stream"
        );
        assert!(
            read_values(&RegisterStreamShape::differential()).iter().any(|&v| v >= 1000),
            "no stale read across 20 differential-shape seeds"
        );
    }

    #[test]
    fn merges_preserve_per_object_order() {
        let shape = RegisterStreamShape::differential();
        let mut rng = StdRng::seed_from_u64(11);
        let per_object: Vec<(ObjectId, Vec<Symbol>)> = (0..3)
            .map(|i| (ObjectId(i), register_object_stream(&mut rng, 5, &shape)))
            .collect();
        let original = per_object.clone();
        for merged in [
            merge_round_robin(per_object.clone()),
            merge_random(&mut rng, per_object),
        ] {
            for (object, symbols) in &original {
                let projected: Vec<&Symbol> = merged
                    .iter()
                    .filter(|(o, _)| o == object)
                    .map(|(_, s)| s)
                    .collect();
                assert_eq!(projected.len(), symbols.len());
                assert!(projected.iter().zip(symbols).all(|(a, b)| **a == *b));
            }
        }
    }
}
