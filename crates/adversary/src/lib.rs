//! # drv-adversary
//!
//! The adversary A, the timed adversary Aτ and the sketch construction of
//! *"Asynchronous Fault-Tolerant Language Decidability for Runtime
//! Verification of Distributed Systems"* (Castañeda & Rodríguez, PODC 2025).
//!
//! In the paper's model (Section 3), the monitors interact with a black-box
//! distributed service A — the *adversary* — which decides the responses the
//! processes receive and the times at which all events occur.  This crate
//! provides the content half of the adversary (the timing half is the
//! scheduler of the `drv-core` runtime):
//!
//! * [`Behavior`] — the adversary as an online service, with
//!   [`AtomicObject`] (faithful, linearizable behaviour over any
//!   [`drv_spec::SequentialSpec`]), the fault-injecting behaviours of
//!   [`faulty`], the eventually-consistent behaviours of [`eventual`] and the
//!   word-replaying [`ScriptedBehavior`] (realizing Claim 3.1),
//! * [`TimedAdversary`] — the Figure 6 wrapper Aτ that attaches [`View`]s
//!   (announce-array snapshots) to responses,
//! * [`sketch`] — the Appendix B construction of the sketch x∼(E) from the
//!   views, together with the executable form of Theorem 6.1.
//!
//! ```
//! use drv_adversary::{AtomicObject, TimedAdversary};
//! use drv_lang::{Invocation, ProcId};
//! use drv_spec::Register;
//!
//! let mut adversary = TimedAdversary::new(2, AtomicObject::new(Register::new()));
//! let (key, timed) = adversary.tight_exchange(ProcId(0), &Invocation::Write(3));
//! assert!(timed.view.contains(&key));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod eventual;
pub mod faulty;
pub mod scripted;
pub mod sketch;
pub mod streams;
pub mod timed;

pub use behavior::{AtomicObject, Behavior, LinearizationPoint};
pub use eventual::{ReplicatedCounter, ReplicatedLedger};
pub use faulty::{
    ForgetfulLedger, ForkingLedger, LossyCounter, NonMonotoneCounter, OverCounter,
    StaleReadRegister,
};
pub use scripted::{event_script, ScriptedBehavior};
pub use streams::{
    merge_random, merge_round_robin, register_object_stream, RegisterStreamShape,
};
pub use sketch::{
    input_word, locals_preserved, precedence_preserved, sketch_word, sketch_word_from,
    IncrementalSketch, SketchError, TimedOp,
};
pub use timed::{InvocationKey, TimedAdversary, TimedResponse, View};
