//! Scripted behaviours: replaying an arbitrary well-formed word.
//!
//! Claim 3.1 of the paper states that for *every* well-formed ω-word `x`
//! there is a fair failure-free execution of any algorithm whose input is
//! `x` — the adversary is a black box and can exhibit any behaviour.  The
//! [`ScriptedBehavior`] realizes the content half of that claim: it dictates
//! both the invocations the processes pick (Figure 1, line 01) and the
//! responses they receive (line 04), in exactly the per-process order of the
//! scripted word.  The timing half — the global interleaving — is realized by
//! the scripted scheduler of the `drv-core` runtime, which replays the
//! positions of the word's symbols.
//!
//! Together the two sides make the proof constructions of Lemmas 5.1, 5.2,
//! 6.2 and 6.5 executable.

use crate::behavior::Behavior;
use drv_lang::{Invocation, ProcId, Response, Symbol, Word};
use std::collections::VecDeque;

/// A behaviour that replays the per-process content of a fixed word.
///
/// ```
/// use drv_adversary::{Behavior, ScriptedBehavior};
/// use drv_lang::{Invocation, ProcId, Response, WordBuilder};
///
/// let word = WordBuilder::new()
///     .op(ProcId(0), Invocation::Write(1), Response::Ack)
///     .op(ProcId(1), Invocation::Read, Response::Value(1))
///     .build();
/// let mut scripted = ScriptedBehavior::from_word(&word, 2);
/// assert_eq!(scripted.next_invocation(ProcId(0)), Some(Invocation::Write(1)));
/// scripted.on_invoke(ProcId(0), &Invocation::Write(1));
/// assert_eq!(scripted.on_respond(ProcId(0)), Response::Ack);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedBehavior {
    invocations: Vec<VecDeque<Invocation>>,
    responses: Vec<VecDeque<Response>>,
    /// What to answer once the script is exhausted (fair executions are
    /// infinite; a finite script is a prefix).  `None` panics instead.
    filler: Option<Response>,
    name: String,
}

impl ScriptedBehavior {
    /// Builds a scripted behaviour from a finite word over `n` processes.
    ///
    /// The word's local projections give, for every process, the sequence of
    /// invocations it must pick and responses it must receive.
    #[must_use]
    pub fn from_word(word: &Word, n: usize) -> Self {
        let mut invocations = vec![VecDeque::new(); n];
        let mut responses = vec![VecDeque::new(); n];
        for symbol in word.symbols() {
            let idx = symbol.proc.index();
            if idx >= n {
                continue;
            }
            if let Some(inv) = symbol.invocation() {
                invocations[idx].push_back(inv.clone());
            } else if let Some(resp) = symbol.response() {
                responses[idx].push_back(resp.clone());
            }
        }
        ScriptedBehavior {
            invocations,
            responses,
            filler: None,
            name: "scripted".to_string(),
        }
    }

    /// Sets a filler response returned once a process's script is exhausted,
    /// instead of panicking.  Useful when a finite prefix is extended by an
    /// arbitrary fair continuation.
    #[must_use]
    pub fn with_filler(mut self, filler: Response) -> Self {
        self.filler = Some(filler);
        self
    }

    /// Sets the display name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Remaining scripted invocations of `proc`.
    #[must_use]
    pub fn remaining_invocations(&self, proc: ProcId) -> usize {
        self.invocations
            .get(proc.index())
            .map_or(0, VecDeque::len)
    }

    /// Remaining scripted responses of `proc`.
    #[must_use]
    pub fn remaining_responses(&self, proc: ProcId) -> usize {
        self.responses.get(proc.index()).map_or(0, VecDeque::len)
    }

    /// Returns `true` when every process has consumed its whole script.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.invocations.iter().all(VecDeque::is_empty)
            && self.responses.iter().all(VecDeque::is_empty)
    }
}

impl Behavior for ScriptedBehavior {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn next_invocation(&mut self, proc: ProcId) -> Option<Invocation> {
        self.invocations
            .get_mut(proc.index())
            .and_then(VecDeque::pop_front)
    }

    fn on_invoke(&mut self, _proc: ProcId, _invocation: &Invocation) {}

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self
            .responses
            .get_mut(proc.index())
            .and_then(VecDeque::pop_front)
        {
            Some(response) => response,
            None => self
                .filler
                .clone()
                .unwrap_or_else(|| panic!("script for {proc} exhausted and no filler configured")),
        }
    }

    fn response_ready(&self, proc: ProcId) -> bool {
        self.filler.is_some()
            || self
                .responses
                .get(proc.index())
                .is_some_and(|q| !q.is_empty())
    }
}

/// Derives the scheduler script — the global order of send/receive events —
/// from a word: entry `k` names the process whose send (for an invocation
/// symbol) or receive (for a response symbol) event is the `k`-th of the
/// execution.
///
/// Used by the `drv-core` runtime to realize Claim 3.1: replaying this script
/// against [`ScriptedBehavior::from_word`] of the same word yields an
/// execution whose input is exactly that word.
#[must_use]
pub fn event_script(word: &Word) -> Vec<Symbol> {
    word.symbols().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drv_lang::WordBuilder;

    fn sample_word() -> Word {
        WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .invoke(ProcId(1), Invocation::Read)
            .respond(ProcId(1), Response::Value(1))
            .op(ProcId(0), Invocation::Read, Response::Value(1))
            .build()
    }

    #[test]
    fn scripts_replay_per_process_content() {
        let word = sample_word();
        let mut scripted = ScriptedBehavior::from_word(&word, 2);
        assert_eq!(scripted.remaining_invocations(ProcId(0)), 2);
        assert_eq!(scripted.remaining_responses(ProcId(1)), 1);

        assert_eq!(
            scripted.next_invocation(ProcId(0)),
            Some(Invocation::Write(1))
        );
        scripted.on_invoke(ProcId(0), &Invocation::Write(1));
        assert_eq!(scripted.on_respond(ProcId(0)), Response::Ack);

        assert_eq!(scripted.next_invocation(ProcId(1)), Some(Invocation::Read));
        scripted.on_invoke(ProcId(1), &Invocation::Read);
        assert_eq!(scripted.on_respond(ProcId(1)), Response::Value(1));

        assert_eq!(scripted.next_invocation(ProcId(0)), Some(Invocation::Read));
        scripted.on_invoke(ProcId(0), &Invocation::Read);
        assert_eq!(scripted.on_respond(ProcId(0)), Response::Value(1));

        assert!(scripted.is_exhausted());
        assert_eq!(scripted.next_invocation(ProcId(0)), None);
    }

    #[test]
    fn exhausted_script_uses_filler() {
        let word = sample_word();
        let mut scripted =
            ScriptedBehavior::from_word(&word, 2).with_filler(Response::Value(0));
        for _ in 0..2 {
            let _ = scripted.on_respond(ProcId(0));
        }
        assert_eq!(scripted.on_respond(ProcId(0)), Response::Value(0));
        assert!(scripted.response_ready(ProcId(0)));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausted_script_without_filler_panics() {
        let mut scripted = ScriptedBehavior::from_word(&Word::new(), 2);
        let _ = scripted.on_respond(ProcId(0));
    }

    #[test]
    fn response_ready_tracks_the_script() {
        let word = sample_word();
        let scripted = ScriptedBehavior::from_word(&word, 2);
        assert!(scripted.response_ready(ProcId(0)));
        assert!(scripted.response_ready(ProcId(1)));
        let empty = ScriptedBehavior::from_word(&Word::new(), 2);
        assert!(!empty.response_ready(ProcId(0)));
    }

    #[test]
    fn event_script_lists_symbols_in_order() {
        let word = sample_word();
        let script = event_script(&word);
        assert_eq!(script.len(), word.len());
        assert_eq!(script[0].proc, ProcId(0));
        assert!(script[0].is_invocation());
    }

    #[test]
    fn names_can_be_customised() {
        let word = sample_word();
        let scripted = ScriptedBehavior::from_word(&word, 2).with_name("lemma 5.1 run E");
        assert_eq!(scripted.name(), "lemma 5.1 run E");
    }
}
