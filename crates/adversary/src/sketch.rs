//! The sketch construction x∼(E) (Appendix B, Figure 7).
//!
//! Given an execution of an algorithm interacting with the timed adversary
//! Aτ, every completed operation carries a view.  Appendix B of the paper
//! shows how the processes can locally reconstruct, from these views alone, a
//! concurrent history x∼(E) — the *sketch* — which is the input word of some
//! execution indistinguishable from the real one (Theorem 6.1(2)), and in
//! which every real-time precedence of the real input is preserved
//! (Theorem 6.1(1)): operations can only *shrink*.
//!
//! The construction: order the distinct views by containment
//! `view₁ ⊂ view₂ ⊂ …` (snapshot views are always comparable); iterating in
//! ascending order, first append the invocations that are new in the current
//! view, then append the responses of all operations carrying exactly that
//! view.
//!
//! [`sketch_word`] implements the construction; [`precedence_preserved`] and
//! [`locals_preserved`] are the executable forms of Theorem 6.1.

use crate::timed::{InvocationKey, View};
use drv_lang::{Invocation, OpId, ProcId, Response, Word};
use std::collections::BTreeSet;
use std::fmt;

/// One operation of an execution against Aτ, as recorded by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOp {
    /// The unique key assigned at announce time.
    pub key: InvocationKey,
    /// The invocation payload.
    pub invocation: Invocation,
    /// The response payload, when the operation completed.
    pub response: Option<Response>,
    /// The view returned with the response, when the operation completed.
    pub view: Option<View>,
}

impl TimedOp {
    /// A completed operation.
    #[must_use]
    pub fn complete(
        key: InvocationKey,
        invocation: Invocation,
        response: Response,
        view: View,
    ) -> Self {
        TimedOp {
            key,
            invocation,
            response: Some(response),
            view: Some(view),
        }
    }

    /// A pending operation (announced and possibly sent, never answered).
    #[must_use]
    pub fn pending(key: InvocationKey, invocation: Invocation) -> Self {
        TimedOp {
            key,
            invocation,
            response: None,
            view: None,
        }
    }

    /// The issuing process.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.key.proc
    }

    /// Returns `true` when the operation completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.response.is_some()
    }
}

/// Why a sketch could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// Two operations carry views that are not comparable by containment —
    /// impossible for views produced by Aτ's snapshot, so this indicates the
    /// records do not come from a single execution.
    IncomparableViews {
        /// Key of the first operation.
        first: InvocationKey,
        /// Key of the second operation.
        second: InvocationKey,
    },
    /// A completed operation's view does not contain its own invocation,
    /// which Aτ guarantees (the announce precedes the snapshot).
    ViewMissingOwnInvocation {
        /// Key of the offending operation.
        key: InvocationKey,
    },
    /// An operation was pushed into an [`IncrementalSketch`] after an
    /// operation with a strictly larger view — the sketch word can no longer
    /// be extended in place.  Recoverable: rebuild with
    /// [`IncrementalSketch::from_ops`], which sorts by view containment.
    OutOfOrder {
        /// Key of the late operation.
        key: InvocationKey,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::IncomparableViews { first, second } => {
                write!(f, "operations {first} and {second} carry incomparable views")
            }
            SketchError::ViewMissingOwnInvocation { key } => {
                write!(f, "the view of operation {key} does not contain its own invocation")
            }
            SketchError::OutOfOrder { key } => {
                write!(f, "operation {key} arrived after an operation with a larger view")
            }
        }
    }
}

impl std::error::Error for SketchError {}

/// Builds the sketch x∼(E) from the recorded operations of one execution.
///
/// Pending operations contribute their invocation only if some completed
/// operation's view contains it (otherwise no process can know about them,
/// and they do not appear in the sketch).
///
/// # Errors
///
/// Returns a [`SketchError`] when the views are inconsistent (not produced by
/// a single Aτ execution).
pub fn sketch_word(ops: &[TimedOp]) -> Result<Word, SketchError> {
    sketch_word_from(ops)
}

/// Iterator variant of [`sketch_word`]: reconstructs the sketch from
/// borrowed operations, so callers that keep per-process logs (the Figure 8
/// monitor's delta-maintained mirror) need not clone them into one
/// contiguous buffer first.
///
/// # Errors
///
/// Returns a [`SketchError`] when the views are inconsistent (not produced by
/// a single Aτ execution).
pub fn sketch_word_from<'a, I>(ops: I) -> Result<Word, SketchError>
where
    I: IntoIterator<Item = &'a TimedOp>,
{
    let completed: Vec<&TimedOp> = ops.into_iter().filter(|op| op.is_complete()).collect();

    // Validate the views: each contains its own invocation, and all are
    // pairwise comparable.
    for op in &completed {
        let view = op.view.as_ref().expect("completed op has a view");
        if !view.contains(&op.key) {
            return Err(SketchError::ViewMissingOwnInvocation { key: op.key });
        }
    }
    for (i, a) in completed.iter().enumerate() {
        for b in &completed[i + 1..] {
            let va = a.view.as_ref().expect("completed op has a view");
            let vb = b.view.as_ref().expect("completed op has a view");
            if !va.comparable(vb) {
                return Err(SketchError::IncomparableViews {
                    first: a.key,
                    second: b.key,
                });
            }
        }
    }

    // Distinct views in ascending containment order (size order suffices once
    // comparability holds).
    let mut distinct: Vec<&View> = Vec::new();
    for op in &completed {
        let view = op.view.as_ref().expect("completed op has a view");
        if !distinct.contains(&view) {
            distinct.push(view);
        }
    }
    distinct.sort_by_key(|v| v.len());

    let mut word = Word::new();
    let mut emitted: BTreeSet<InvocationKey> = BTreeSet::new();
    for view in distinct {
        // Step 1: append the invocations that are new in this view.
        for (key, invocation) in view.iter() {
            if emitted.insert(*key) {
                word.invoke(key.proc, invocation.clone());
            }
        }
        // Step 2: append the responses of the operations carrying exactly
        // this view.
        for op in &completed {
            if op.view.as_ref() == Some(view) {
                word.respond(
                    op.proc(),
                    op.response.clone().expect("completed op has a response"),
                );
            }
        }
    }
    Ok(word)
}

/// An incrementally maintained sketch x∼(E).
///
/// [`sketch_word`] re-validates every pair of views and rebuilds the word on
/// every call — Θ(ops² · view) per call, Θ(ops³ · view) over a monitoring
/// run.  This structure exploits the fact that Aτ's views grow monotonically
/// along the execution: operations are pushed *in completion order* (their
/// views then form an ascending containment chain), each push validates the
/// new operation against the chain's maximum only, appends the invocations
/// that are new in its view and then its response — O(view) per operation,
/// and the word only ever grows, which is exactly what the incremental
/// consistency checker wants to see.
///
/// The word differs from [`sketch_word`]'s only in the order of responses
/// that carry the *same* view.  Such operations overlap (all their
/// invocations are emitted before either response), so swapping their
/// responses changes no real-time precedence and no operation content: the
/// two words describe the same concurrent history, and every consistency
/// verdict over them is the same.
///
/// A push that arrives out of containment order (possible when publishing
/// races delivery across threads) is rejected with
/// [`SketchError::OutOfOrder`]; callers recover by rebuilding once via
/// [`IncrementalSketch::from_ops`], which sorts by view containment first.
#[derive(Debug, Clone, Default)]
pub struct IncrementalSketch {
    word: Word,
    emitted: BTreeSet<InvocationKey>,
    /// The chain maximum: the view of the last pushed operation, plus its
    /// key for error reporting.
    max_view: Option<(View, InvocationKey)>,
}

impl IncrementalSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        IncrementalSketch::default()
    }

    /// The sketch word built so far.
    #[must_use]
    pub fn word(&self) -> &Word {
        &self.word
    }

    /// Number of responses in the sketch (= completed operations pushed).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.word.response_count()
    }

    /// Pushes the next completed operation (pending operations are ignored:
    /// they enter the sketch only through the views of completed ones).
    ///
    /// # Errors
    ///
    /// [`SketchError::ViewMissingOwnInvocation`] /
    /// [`SketchError::IncomparableViews`] mean the records cannot come from
    /// one Aτ execution; [`SketchError::OutOfOrder`] means this operation
    /// completed before an already-pushed one — rebuild via
    /// [`IncrementalSketch::from_ops`].  The sketch is unchanged on error.
    pub fn push_op(&mut self, op: &TimedOp) -> Result<(), SketchError> {
        let Some(view) = op.view.as_ref() else {
            return Ok(());
        };
        if !view.contains(&op.key) {
            return Err(SketchError::ViewMissingOwnInvocation { key: op.key });
        }
        if let Some((max_view, max_key)) = &self.max_view {
            if !max_view.comparable(view) {
                return Err(SketchError::IncomparableViews {
                    first: *max_key,
                    second: op.key,
                });
            }
            if view.len() < max_view.len() {
                return Err(SketchError::OutOfOrder { key: op.key });
            }
        }
        for (key, invocation) in view.iter() {
            if self.emitted.insert(*key) {
                self.word.invoke(key.proc, invocation.clone());
            }
        }
        self.word.respond(
            op.proc(),
            op.response.clone().expect("op with a view has a response"),
        );
        let grew = self
            .max_view
            .as_ref()
            .is_none_or(|(max_view, _)| view.len() > max_view.len());
        if grew {
            self.max_view = Some((view.clone(), op.key));
        }
        Ok(())
    }

    /// Builds a sketch from operations in arbitrary order by sorting them
    /// into a containment chain first (the rebuild path after
    /// [`SketchError::OutOfOrder`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SketchError`] when the views are inconsistent, exactly
    /// like [`sketch_word`].
    pub fn from_ops<'a, I>(ops: I) -> Result<Self, SketchError>
    where
        I: IntoIterator<Item = &'a TimedOp>,
    {
        let mut completed: Vec<&TimedOp> = ops
            .into_iter()
            .filter(|op| op.is_complete())
            .collect();
        completed.sort_by_key(|op| op.view.as_ref().map_or(0, View::len));
        let mut sketch = IncrementalSketch::new();
        for op in completed {
            sketch.push_op(op)?;
        }
        Ok(sketch)
    }
}

/// Builds the *input word* x(E) corresponding to the recorded operations,
/// given the global order of their send and receive events.
///
/// `events` lists, in execution order, `(key, is_invocation)` pairs; the
/// payloads are taken from `ops`.  The helper exists so tests and the
/// `drv-core` runtime construct x(E) and x∼(E) from the same records.
#[must_use]
pub fn input_word(ops: &[TimedOp], events: &[(InvocationKey, bool)]) -> Word {
    let mut word = Word::new();
    for (key, is_invocation) in events {
        let Some(op) = ops.iter().find(|op| op.key == *key) else {
            continue;
        };
        if *is_invocation {
            word.invoke(op.proc(), op.invocation.clone());
        } else if let Some(response) = &op.response {
            word.respond(op.proc(), response.clone());
        }
    }
    word
}

/// Matches the operations of `original` and `sketch` by `(process,
/// local index)` and checks Theorem 6.1(1): every real-time precedence of
/// `original` holds in `sketch` as well.
#[must_use]
pub fn precedence_preserved(original: &Word, sketch: &Word) -> bool {
    let orig_ops = original.operation_set();
    let sketch_ops = sketch.operation_set();

    let find_in_sketch = |proc: ProcId, local_index: usize| -> Option<OpId> {
        sketch_ops
            .iter()
            .find(|op| op.proc == proc && op.local_index == local_index)
            .map(|op| op.id)
    };

    for a in orig_ops.iter() {
        for b in orig_ops.iter() {
            if a.id == b.id || !a.precedes(b) {
                continue;
            }
            let (Some(sa), Some(sb)) = (
                find_in_sketch(a.proc, a.local_index),
                find_in_sketch(b.proc, b.local_index),
            ) else {
                // Operations missing from the sketch (unobserved pending
                // operations) carry no precedence obligations.
                continue;
            };
            let (Some(sa), Some(sb)) = (sketch_ops.get(sa), sketch_ops.get(sb)) else {
                continue;
            };
            if !sa.precedes(sb) {
                return false;
            }
        }
    }
    true
}

/// Checks that the sketch preserves every process's local word (same
/// operations, same payloads, same order), restricted to the operations that
/// appear in the sketch.  Together with well-formedness this is the
/// executable content of Theorem 6.1(2): the sketch is the input of a
/// legitimate execution of the same processes.
#[must_use]
pub fn locals_preserved(original: &Word, sketch: &Word, n: usize) -> bool {
    let sketch_ops = sketch.operation_set();
    let orig_ops = original.operation_set();
    for proc in ProcId::all(n) {
        let mut sketch_local: Vec<_> = sketch_ops
            .iter()
            .filter(|op| op.proc == proc)
            .collect();
        sketch_local.sort_by_key(|op| op.local_index);
        let mut orig_local: Vec<_> = orig_ops.iter().filter(|op| op.proc == proc).collect();
        orig_local.sort_by_key(|op| op.local_index);
        // Every sketch operation must match the original operation with the
        // same local index in invocation; completed ones must match in
        // response too.
        for s_op in &sketch_local {
            let Some(o_op) = orig_local
                .iter()
                .find(|op| op.local_index == s_op.local_index)
            else {
                return false;
            };
            if o_op.invocation != s_op.invocation {
                return false;
            }
            if let (Some(o_resp), Some(s_resp)) = (&o_op.response, &s_op.response) {
                if o_resp != s_resp {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::AtomicObject;
    use crate::timed::TimedAdversary;
    use drv_lang::{Invocation, ProcId, Response};
    use drv_spec::Register;

    fn key(proc: usize, seq: u64) -> InvocationKey {
        InvocationKey {
            proc: ProcId(proc),
            seq,
        }
    }

    /// Reproduces the structure of Figure 7: three processes, operations with
    /// nested views.
    fn figure7_ops() -> Vec<TimedOp> {
        // view₁ = {a, b}, carried by the operations of p1 and p2;
        // view₂ = {a, b, c}, carried by the operation of p3;
        // view₃ = {a, b, c, d}, carried by a second operation of p1.
        let a = key(0, 0);
        let b = key(1, 0);
        let c = key(2, 0);
        let d = key(0, 1);
        let mut view1 = View::new();
        view1.insert(a, Invocation::Write(1));
        view1.insert(b, Invocation::Write(2));
        let mut view2 = view1.clone();
        view2.insert(c, Invocation::Read);
        let mut view3 = view2.clone();
        view3.insert(d, Invocation::Read);
        vec![
            TimedOp::complete(a, Invocation::Write(1), Response::Ack, view1.clone()),
            TimedOp::complete(b, Invocation::Write(2), Response::Ack, view1),
            TimedOp::complete(c, Invocation::Read, Response::Value(2), view2),
            TimedOp::complete(d, Invocation::Read, Response::Value(2), view3),
        ]
    }

    #[test]
    fn incremental_sketch_matches_batch_construction() {
        // Pushing the Figure 7 operations in completion order yields exactly
        // the word sketch_word builds (the ops are listed in view order).
        let ops = figure7_ops();
        let batch = sketch_word(&ops).expect("views are consistent");
        let mut sketch = IncrementalSketch::new();
        let mut prior_len = 0;
        for op in &ops {
            sketch.push_op(op).expect("in-order pushes extend the sketch");
            // Every push strictly extends the word: the engine downstream
            // relies on never seeing a rewrite.
            assert!(sketch.word().len() > prior_len);
            assert!(batch.has_prefix(sketch.word()));
            prior_len = sketch.word().len();
        }
        assert_eq!(sketch.word().symbols(), batch.symbols());
        assert_eq!(sketch.completed(), 4);
    }

    #[test]
    fn incremental_sketch_rejects_out_of_order_and_rebuilds() {
        let ops = figure7_ops();
        let mut sketch = IncrementalSketch::new();
        // Push the largest view first: the earlier operations then arrive
        // out of containment order.
        sketch.push_op(&ops[3]).unwrap();
        assert!(matches!(
            sketch.push_op(&ops[0]),
            Err(SketchError::OutOfOrder { .. })
        ));
        // The recovery path sorts by containment and reproduces the batch
        // construction's operation structure.
        let rebuilt = IncrementalSketch::from_ops(ops.iter()).expect("views are consistent");
        assert_eq!(
            rebuilt.word().symbols(),
            sketch_word(&ops).unwrap().symbols()
        );
    }

    #[test]
    fn incremental_sketch_same_view_order_is_semantically_equivalent() {
        // Two operations carrying the same view: pushing them in either
        // order produces different words but the same concurrent history
        // (same operations, same precedence relation).
        let ops = figure7_ops();
        let mut forward = IncrementalSketch::new();
        forward.push_op(&ops[0]).unwrap();
        forward.push_op(&ops[1]).unwrap();
        let mut backward = IncrementalSketch::new();
        backward.push_op(&ops[1]).unwrap();
        backward.push_op(&ops[0]).unwrap();
        let f = forward.word().operation_set();
        let b = backward.word().operation_set();
        assert_eq!(f.len(), b.len());
        let find = |set: &drv_lang::OperationSet, proc: usize| {
            set.iter()
                .find(|op| op.proc == ProcId(proc))
                .unwrap()
                .clone()
        };
        assert!(find(&f, 0).concurrent_with(&find(&f, 1)));
        assert!(find(&b, 0).concurrent_with(&find(&b, 1)));
    }

    #[test]
    fn incremental_sketch_propagates_view_validation() {
        let a = key(0, 0);
        let mut empty_view = View::new();
        empty_view.insert(key(1, 7), Invocation::Read);
        let op = TimedOp::complete(a, Invocation::Write(1), Response::Ack, empty_view);
        assert!(matches!(
            IncrementalSketch::new().push_op(&op),
            Err(SketchError::ViewMissingOwnInvocation { .. })
        ));
    }

    #[test]
    fn figure7_sketch_has_expected_shape() {
        let ops = figure7_ops();
        let sketch = sketch_word(&ops).expect("views are consistent");
        // Invocations of a and b first, then their responses, then c's
        // invocation and response, then d's.
        assert_eq!(sketch.len(), 8);
        assert!(sketch.is_well_formed_prefix());
        let ops_in_sketch = sketch.operation_set();
        assert_eq!(ops_in_sketch.len(), 4);
        // a and b are concurrent in the sketch; both precede c; c precedes d.
        let find = |proc: usize, idx: usize| {
            ops_in_sketch
                .iter()
                .find(|op| op.proc == ProcId(proc) && op.local_index == idx)
                .unwrap()
        };
        let (a, b, c, d) = (find(0, 0), find(1, 0), find(2, 0), find(0, 1));
        assert!(a.concurrent_with(b));
        assert!(a.precedes(c) && b.precedes(c));
        assert!(c.precedes(d));
    }

    #[test]
    fn sketch_of_tight_execution_equals_input() {
        // Build a sequential (tight) execution against Aτ and check that the
        // sketch reproduces the input word exactly.
        let mut timed = TimedAdversary::new(2, AtomicObject::new(Register::new()));
        let mut ops = Vec::new();
        let mut events = Vec::new();
        let script = [
            (ProcId(0), Invocation::Write(7)),
            (ProcId(1), Invocation::Read),
            (ProcId(0), Invocation::Read),
        ];
        for (proc, invocation) in script {
            let (key, timed_response) = timed.tight_exchange(proc, &invocation);
            events.push((key, true));
            events.push((key, false));
            ops.push(TimedOp::complete(
                key,
                invocation,
                timed_response.response,
                timed_response.view,
            ));
        }
        let x_e = input_word(&ops, &events);
        let sketch = sketch_word(&ops).unwrap();
        assert_eq!(x_e.symbols(), sketch.symbols());
        assert!(precedence_preserved(&x_e, &sketch));
        assert!(locals_preserved(&x_e, &sketch, 2));
    }

    #[test]
    fn sketch_shrinks_but_never_reorders_operations() {
        // A genuinely concurrent execution: p0 and p1 announce before either
        // snapshots, so their operations are concurrent both in x(E) and in
        // the sketch; the later operation of p0 must still follow both.
        let mut timed = TimedAdversary::new(2, AtomicObject::new(Register::new()));
        let w = Invocation::Write(3);
        let r = Invocation::Read;
        let k0 = timed.announce(ProcId(0), &w);
        let k1 = timed.announce(ProcId(1), &r);
        timed.forward_invoke(ProcId(0), &w);
        timed.forward_invoke(ProcId(1), &r);
        let resp0 = timed.forward_respond(ProcId(0));
        let resp1 = timed.forward_respond(ProcId(1));
        let v0 = timed.snapshot_view(ProcId(0));
        let v1 = timed.snapshot_view(ProcId(1));
        let (k2, tr2) = timed.tight_exchange(ProcId(0), &Invocation::Read);

        let ops = vec![
            TimedOp::complete(k0, w.clone(), resp0, v0),
            TimedOp::complete(k1, r.clone(), resp1, v1),
            TimedOp::complete(k2, Invocation::Read, tr2.response, tr2.view),
        ];
        let events = vec![
            (k0, true),
            (k1, true),
            (k0, false),
            (k1, false),
            (k2, true),
            (k2, false),
        ];
        let x_e = input_word(&ops, &events);
        let sketch = sketch_word(&ops).unwrap();
        assert!(sketch.is_well_formed_prefix());
        assert!(precedence_preserved(&x_e, &sketch));
        assert!(locals_preserved(&x_e, &sketch, 2));
    }

    #[test]
    fn pending_operations_appear_only_if_observed() {
        let a = key(0, 0);
        let b = key(1, 0);
        let mut view = View::new();
        view.insert(a, Invocation::Write(1));
        view.insert(b, Invocation::Write(2));
        let ops = vec![
            TimedOp::complete(a, Invocation::Write(1), Response::Ack, view),
            // b is pending: announced, observed by a's view, never answered.
            TimedOp::pending(b, Invocation::Write(2)),
        ];
        let sketch = sketch_word(&ops).unwrap();
        assert_eq!(sketch.invocation_count(), 2);
        assert_eq!(sketch.response_count(), 1);

        // An unobserved pending operation does not appear at all.
        let mut own_view = View::new();
        own_view.insert(a, Invocation::Write(1));
        let ops = vec![
            TimedOp::complete(a, Invocation::Write(1), Response::Ack, own_view),
            TimedOp::pending(b, Invocation::Write(2)),
        ];
        let sketch = sketch_word(&ops).unwrap();
        assert_eq!(sketch.invocation_count(), 1);
        assert_eq!(sketch.response_count(), 1);
    }

    #[test]
    fn inconsistent_views_are_rejected() {
        let a = key(0, 0);
        let b = key(1, 0);
        let mut va = View::new();
        va.insert(a, Invocation::Inc);
        let mut vb = View::new();
        vb.insert(b, Invocation::Inc);
        let ops = vec![
            TimedOp::complete(a, Invocation::Inc, Response::Ack, va),
            TimedOp::complete(b, Invocation::Inc, Response::Ack, vb),
        ];
        let err = sketch_word(&ops).unwrap_err();
        assert!(matches!(err, SketchError::IncomparableViews { .. }));
        assert!(err.to_string().contains("incomparable"));

        let mut missing_own = View::new();
        missing_own.insert(b, Invocation::Inc);
        let ops = vec![TimedOp::complete(
            a,
            Invocation::Inc,
            Response::Ack,
            missing_own,
        )];
        let err = sketch_word(&ops).unwrap_err();
        assert!(matches!(err, SketchError::ViewMissingOwnInvocation { .. }));
        assert!(err.to_string().contains("own invocation"));
    }

    #[test]
    fn precedence_check_detects_reordering() {
        // original: p0's op strictly precedes p1's op.
        let original = drv_lang::WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .build();
        // candidate sketch reverses the order.
        let reordered = drv_lang::WordBuilder::new()
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .build();
        assert!(!precedence_preserved(&original, &reordered));
        assert!(precedence_preserved(&original, &original));
    }

    #[test]
    fn locals_check_detects_payload_changes() {
        let original = drv_lang::WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .build();
        let altered = drv_lang::WordBuilder::new()
            .op(ProcId(0), Invocation::Write(2), Response::Ack)
            .build();
        assert!(!locals_preserved(&original, &altered, 1));
        assert!(locals_preserved(&original, &original, 1));
    }

    #[test]
    fn timed_op_constructors() {
        let op = TimedOp::pending(key(1, 3), Invocation::Get);
        assert!(!op.is_complete());
        assert_eq!(op.proc(), ProcId(1));
        let op = TimedOp::complete(key(0, 0), Invocation::Get, Response::Sequence(vec![]), View::new());
        assert!(op.is_complete());
    }
}
