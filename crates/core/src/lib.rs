//! # drv-core
//!
//! The primary contribution of *"Asynchronous Fault-Tolerant Language
//! Decidability for Runtime Verification of Distributed Systems"*
//! (Castañeda & Rodríguez, PODC 2025), as an executable library: distributed
//! monitors that decide distributed languages in an asynchronous, wait-free,
//! crash-tolerant shared-memory system.
//!
//! The crate provides:
//!
//! * [`monitor`] — the generic monitor structure of Figure 1
//!   ([`Monitor`] / [`MonitorFamily`]),
//! * [`runtime`] — the deterministic execution runtime that plays the timing
//!   half of the adversary (round-robin, seeded-random, phase-scripted and
//!   word-scripted schedules; plain A or timed Aτ interaction),
//! * [`trace`] / [`verdict`] — execution traces x(E) and verdict streams,
//! * [`decidability`] — the decidability notions SD, WAD, WOD, WD, PSD, PWD
//!   (Definitions 4.1–4.4, 6.1, 6.2) as finite-run evaluators, plus generic
//!   P-decidability (Definition 5.1),
//! * [`monitors`] — the paper's algorithms: Figure 5 (`WEC_COUNT`), Figure 8
//!   (`V_O` for `LIN_O`/`SC_O`), Figure 9 (`SEC_COUNT`), their 3-valued
//!   variants (Section 7), and ablation baselines,
//! * [`transform`] — the stability transformations of Figures 2–4
//!   (Lemmas 4.1–4.3),
//! * [`impossibility`] — the executable forms of the impossibility proofs
//!   (Lemmas 5.1, 5.2, 6.2, 6.5) built from indistinguishable execution
//!   pairs,
//! * [`threaded`] — a real-thread runtime showing the monitors also work
//!   under OS concurrency, outside the deterministic simulator.
//!
//! ## Quick start
//!
//! ```
//! use drv_core::decidability::{Decider, Notion};
//! use drv_core::monitors::WecCountFamily;
//! use drv_core::runtime::{run, RunConfig, Schedule};
//! use drv_adversary::AtomicObject;
//! use drv_consistency::languages::wec_count;
//! use drv_lang::{ObjectKind, SymbolSampler};
//! use drv_spec::Counter;
//! use std::sync::Arc;
//!
//! // Run the Figure 5 monitor against a correct (atomic) counter.
//! let config = RunConfig::new(3, 40)
//!     .with_schedule(Schedule::Random { seed: 1 })
//!     .with_sampler(SymbolSampler::new(ObjectKind::Counter))
//!     .stop_mutators_after(20);
//! let trace = run(&config, &WecCountFamily::new(), Box::new(AtomicObject::new(Counter::new())));
//!
//! // The run is a member of WEC_COUNT and the monitor's verdicts satisfy
//! // weak decidability.
//! let decider = Decider::new(Arc::new(wec_count()));
//! assert!(decider.evaluate(&trace, Notion::Weak).unwrap().holds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decidability;
pub mod impossibility;
pub mod monitor;
pub mod monitors;
pub mod runtime;
pub mod stream;
pub mod threaded;
pub mod trace;
pub mod transform;
pub mod verdict;

pub use decidability::{Decider, Evaluation, Notion};
pub use monitor::{ConstantFamily, Monitor, MonitorFamily};
pub use runtime::{run, RunConfig, Schedule};
pub use stream::{
    CheckerMonitorFactory, CheckerObjectMonitor, FamilyMonitorFactory, FamilyObjectMonitor,
    ObjectMonitor, ObjectMonitorFactory, RestoreError, RoutingMonitorFactory,
};
pub use threaded::{run_threaded, try_run_threaded, ThreadedConfig, WorkerPanic};
pub use trace::{AdversaryMode, ExecutionTrace};
pub use verdict::{Report, Verdict, VerdictStream};
