//! Executable forms of the paper's impossibility proofs.
//!
//! The impossibility results of the paper are proved through
//! *indistinguishability*: the adversary produces two executions that no
//! process can tell apart even though their inputs differ in membership, or
//! it extends a prefix on which a verdict has already been emitted into an
//! input of the opposite membership.  Because the `drv-core` runtime is
//! deterministic and schedules send/receive events as separate, purely local
//! phases, these constructions are *runnable*: they take an arbitrary
//! [`MonitorFamily`] and produce the offending execution pairs, which the
//! Table 1 harness then inspects.
//!
//! | function | paper result | construction |
//! |---|---|---|
//! | [`lemma_5_1`] | `LIN_REG`, `SC_REG` ∉ WD (hence ∉ SD) | the "almost synchronous" write/read rounds and their swapped variant |
//! | [`lemma_5_2`] | `WEC_COUNT`, `SEC_COUNT` ∉ SD | prefix extension of a rejected non-member into a member |
//! | [`lemma_6_2`] | `WEC_COUNT`, `SEC_COUNT` ∉ PSD | the same extension on *tight* executions against Aτ |
//! | [`lemma_6_5`] | `EC_LED` ∉ PWD | the alternating stale/fresh ledger construction forcing unbounded NO bursts |

use crate::monitor::MonitorFamily;
use crate::runtime::{run, RunConfig, Schedule};
use crate::trace::ExecutionTrace;
use drv_adversary::ScriptedBehavior;
use drv_lang::{Invocation, Language, ProcId, Record, Response, Word, WordBuilder};

/// Outcome of an indistinguishability construction: two executions whose
/// inputs differ in membership but whose verdict streams are identical.
#[derive(Debug, Clone)]
pub struct IndistinguishablePair {
    /// The execution whose input belongs to the language.
    pub member_trace: ExecutionTrace,
    /// The execution whose input does not belong to the language.
    pub non_member_trace: ExecutionTrace,
    /// Whether the two runs produced identical verdict streams.
    pub verdicts_identical: bool,
}

impl IndistinguishablePair {
    /// Returns `true` when the pair refutes every notion of decidability for
    /// `language` and the monitor that produced it: the inputs differ in
    /// membership yet every process reported exactly the same verdicts.
    #[must_use]
    pub fn refutes_decidability(&self, language: &dyn Language) -> bool {
        self.verdicts_identical
            && self.member_trace.is_member(language)
            && !self.non_member_trace.is_member(language)
    }
}

/// The Lemma 5.1 construction for `LIN_REG` / `SC_REG`.
///
/// For `rounds` rounds, `p₁` writes the round number and `p₂` immediately
/// reads it.  In execution `E` the write's send/receive events precede the
/// read's; in execution `F` they are swapped.  All monitor blocks (the
/// shared-memory phases) occur in the same order in both executions, so every
/// process passes through the same local states and reports the same
/// verdicts — but `x(E)` is linearizable while `x(F)` has each read preceding
/// its write.
///
/// # Panics
///
/// Panics when `family` requires views: the lemma concerns the plain
/// adversary A (against Aτ the announce/snapshot events would let the
/// processes distinguish `E` from `F`, which is exactly why Section 6 escapes
/// the impossibility).
#[must_use]
pub fn lemma_5_1(family: &dyn MonitorFamily, rounds: usize) -> IndistinguishablePair {
    assert!(
        !family.requires_views(),
        "Lemma 5.1 is a statement about the plain adversary A"
    );
    let mut content = WordBuilder::new();
    for r in 1..=rounds as u64 {
        content = content
            .op(ProcId(0), Invocation::Write(r), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(r));
    }
    let content = content.build();

    // Phase order per round (4 plain-mode phases per process and iteration:
    // Pick, Send, Receive, Report).
    let per_round_e = [0, 1, 0, 0, 1, 1, 0, 1];
    let per_round_f = [0, 1, 1, 1, 0, 0, 0, 1];
    let script = |per_round: [usize; 8]| -> Vec<usize> {
        (0..rounds).flat_map(|_| per_round).collect()
    };

    let run_with = |phase_script: Vec<usize>| {
        let config = RunConfig::new(2, rounds).with_schedule(Schedule::PhaseScript(phase_script));
        run(
            &config,
            family,
            Box::new(ScriptedBehavior::from_word(&content, 2).with_name("Lemma 5.1 content")),
        )
    };
    let member_trace = run_with(script(per_round_e));
    let non_member_trace = run_with(script(per_round_f));

    let verdicts_identical = (0..2).all(|p| {
        member_trace.verdicts(p).verdicts() == non_member_trace.verdicts(p).verdicts()
    });
    IndistinguishablePair {
        member_trace,
        non_member_trace,
        verdicts_identical,
    }
}

/// Outcome of a prefix-extension construction (Lemmas 5.2 and 6.2).
#[derive(Debug, Clone)]
pub struct PrefixExtension {
    /// The run on the non-member input.
    pub non_member_trace: ExecutionTrace,
    /// The run on the member input that extends the rejected prefix, when a
    /// NO was found to extend from.
    pub member_trace: Option<ExecutionTrace>,
    /// `(process, report index)` of the earliest NO in the non-member run.
    pub first_no: Option<(usize, usize)>,
    /// Whether the member run reproduces that NO at the same report index
    /// (it must, by determinism: the runs share the prefix).
    pub no_replayed: bool,
    /// Whether the extended input really is a member.
    pub member_is_member: bool,
    /// Whether the member run is tight (x∼(E) = x(E)); always true for the
    /// Lemma 6.2 variant, irrelevant (false) for the plain-adversary variant.
    pub tight: bool,
}

impl PrefixExtension {
    /// Returns `true` when the construction refutes strong decidability of
    /// the counter languages for this monitor: either the non-member input
    /// never triggered a NO at all, or the NO is replayed on a member input.
    #[must_use]
    pub fn refutes_strong_decidability(&self) -> bool {
        match self.first_no {
            None => true,
            Some(_) => self.no_replayed && self.member_is_member,
        }
    }

    /// Returns `true` when the construction refutes *predictive* strong
    /// decidability (Lemma 6.2): as above, and additionally the member run is
    /// tight, so the sketch equals the member input and cannot justify the
    /// false negative.
    #[must_use]
    pub fn refutes_predictive_strong_decidability(&self) -> bool {
        match self.first_no {
            None => true,
            Some(_) => self.no_replayed && self.member_is_member && self.tight,
        }
    }
}

/// The base word of Lemmas 5.2/6.2: `p₁` increments once, then both processes
/// alternate reads that stubbornly return 0.
fn counter_base_word(read_rounds: usize) -> Word {
    let mut builder = WordBuilder::new().op(ProcId(0), Invocation::Inc, Response::Ack);
    for _ in 0..read_rounds {
        builder = builder
            .op(ProcId(1), Invocation::Read, Response::Value(0))
            .op(ProcId(0), Invocation::Read, Response::Value(0));
    }
    builder.build()
}

/// The member continuation: reads that return the true count 1.
fn counter_member_extension(rounds: usize) -> Vec<(ProcId, Invocation, Response)> {
    let mut ops = Vec::new();
    for _ in 0..rounds {
        ops.push((ProcId(0), Invocation::Read, Response::Value(1)));
        ops.push((ProcId(1), Invocation::Read, Response::Value(1)));
    }
    ops
}

fn prefix_extension(
    family: &dyn MonitorFamily,
    language: &dyn Language,
    timed: bool,
    read_rounds: usize,
    extension_rounds: usize,
) -> PrefixExtension {
    let base = counter_base_word(read_rounds);
    let make_config = |word: &Word| {
        let config =
            RunConfig::new(2, word.len()).with_schedule(Schedule::WordScript(word.clone()));
        if timed {
            config.timed()
        } else {
            config
        }
    };
    let run_word = |word: &Word| {
        run(
            &make_config(word),
            family,
            Box::new(ScriptedBehavior::from_word(word, 2)),
        )
    };

    let non_member_trace = run_word(&base);

    // The earliest NO, by the input length recorded at reporting time.
    let mut first_no: Option<(usize, usize, usize)> = None; // (proc, report idx, word len)
    for p in 0..2 {
        for (idx, report) in non_member_trace.verdicts(p).reports().iter().enumerate() {
            if report.verdict.is_no()
                && first_no.is_none_or(|(_, _, len)| report.word_len < len)
            {
                first_no = Some((p, idx, report.word_len));
            }
        }
    }

    let Some((no_proc, no_idx, no_len)) = first_no else {
        return PrefixExtension {
            non_member_trace,
            member_trace: None,
            first_no: None,
            no_replayed: false,
            member_is_member: false,
            tight: timed,
        };
    };

    // x' = the rejected prefix followed by a converging continuation.
    let mut extended = base.prefix(no_len);
    for (proc, invocation, response) in counter_member_extension(extension_rounds) {
        extended.invoke(proc, invocation);
        extended.respond(proc, response);
    }
    let member_trace = run_word(&extended);

    let no_replayed = member_trace
        .verdicts(no_proc)
        .reports()
        .get(no_idx)
        .is_some_and(|report| report.verdict.is_no());
    let member_is_member = member_trace.is_member(language);
    let tight = if timed {
        member_trace
            .sketch()
            .ok()
            .flatten()
            .is_some_and(|sketch| sketch.symbols() == member_trace.word().symbols())
    } else {
        false
    };
    PrefixExtension {
        non_member_trace,
        member_trace: Some(member_trace),
        first_no: Some((no_proc, no_idx)),
        no_replayed,
        member_is_member,
        tight,
    }
}

/// The Lemma 5.2 construction: `WEC_COUNT` (and `SEC_COUNT`) are not strongly
/// decidable.
///
/// Runs `family` on the non-member word `inc · (read 0)^ω` (truncated), finds
/// its first NO, and extends the rejected prefix with reads returning 1 —
/// a member of the language on which the monitor, deterministically, repeats
/// the same NO.
#[must_use]
pub fn lemma_5_2(
    family: &dyn MonitorFamily,
    language: &dyn Language,
    read_rounds: usize,
    extension_rounds: usize,
) -> PrefixExtension {
    prefix_extension(family, language, false, read_rounds, extension_rounds)
}

/// The Lemma 6.2 construction: `WEC_COUNT` and `SEC_COUNT` are not
/// predictively strongly decidable, even against Aτ.
///
/// Identical to [`lemma_5_2`] but against the timed adversary, scheduling the
/// word as a *tight* execution so the sketch x∼(E) equals the input and
/// cannot justify the replayed NO.
#[must_use]
pub fn lemma_6_2(
    family: &dyn MonitorFamily,
    language: &dyn Language,
    read_rounds: usize,
    extension_rounds: usize,
) -> PrefixExtension {
    prefix_extension(family, language, true, read_rounds, extension_rounds)
}

/// Outcome of the Lemma 6.5 construction.
#[derive(Debug, Clone)]
pub struct AlternatingLedgerOutcome {
    /// The final run (ending in a fresh, converged phase).
    pub final_trace: ExecutionTrace,
    /// Whether the final input is a member of `EC_LED`.
    pub final_is_member: bool,
    /// Whether the final run is tight (x∼(E) = x(E)).
    pub tight: bool,
    /// Number of stale phases in which at least one process reported NO.
    pub no_bursts: usize,
    /// Number of alternations attempted.
    pub alternations: usize,
    /// Per-process NO totals over the final run.
    pub no_totals: Vec<usize>,
}

impl AlternatingLedgerOutcome {
    /// Returns `true` when the construction exhibits the Lemma 6.5
    /// phenomenon for this monitor: the adversary forced a NO burst in
    /// *every* stale phase while keeping the input extendable to (and
    /// finally, equal to) a member — iterating forever would therefore
    /// produce a member execution with infinitely many NO reports and a
    /// sketch equal to the input, contradicting predictive weak decidability.
    #[must_use]
    pub fn demonstrates_unbounded_no_bursts(&self) -> bool {
        self.final_is_member && self.tight && self.no_bursts == self.alternations
    }
}

/// The Lemma 6.5 construction: `EC_LED` is not predictively weakly decidable.
///
/// The adversary alternates *stale* phases — a fresh record is appended but
/// `get()`s keep returning the old ledger — with *fresh* phases in which the
/// gets catch up.  Any monitor that flags the stale phases (as a correct PWD
/// monitor must, since extending a stale phase forever yields a non-member)
/// is forced into a NO burst per alternation, yet the word always returns to
/// a member of `EC_LED`; in the limit this contradicts the PWD definition.
#[must_use]
pub fn lemma_6_5(
    family: &dyn MonitorFamily,
    language: &dyn Language,
    alternations: usize,
    rounds_per_phase: usize,
) -> AlternatingLedgerOutcome {
    let mut word = Word::new();
    let mut appended: Vec<Record> = Vec::new();
    let mut no_bursts = 0usize;
    let mut final_trace: Option<ExecutionTrace> = None;

    let run_word = |word: &Word| {
        let config = RunConfig::new(2, word.len())
            .timed()
            .with_schedule(Schedule::WordScript(word.clone()));
        run(
            &config,
            family,
            Box::new(ScriptedBehavior::from_word(word, 2)),
        )
    };

    for k in 1..=alternations as u64 {
        let stale_view = appended.clone();
        let before_stale = count_reports(&run_word(&word));
        // Stale phase: p₀ appends record k, gets keep returning the old view.
        word.invoke(ProcId(0), Invocation::Append(k));
        word.respond(ProcId(0), Response::Ack);
        appended.push(k);
        for _ in 0..rounds_per_phase {
            word.invoke(ProcId(1), Invocation::Get);
            word.respond(ProcId(1), Response::Sequence(stale_view.clone()));
            word.invoke(ProcId(0), Invocation::Get);
            word.respond(ProcId(0), Response::Sequence(stale_view.clone()));
        }
        let stale_trace = run_word(&word);
        let after_stale = count_reports(&stale_trace);
        let stale_nos: usize = after_stale
            .iter()
            .zip(before_stale.iter())
            .map(|((_, no_after), (_, no_before))| no_after - no_before)
            .sum();
        if stale_nos > 0 {
            no_bursts += 1;
        }

        // Fresh phase: gets catch up with the full ledger.
        for _ in 0..rounds_per_phase {
            word.invoke(ProcId(1), Invocation::Get);
            word.respond(ProcId(1), Response::Sequence(appended.clone()));
            word.invoke(ProcId(0), Invocation::Get);
            word.respond(ProcId(0), Response::Sequence(appended.clone()));
        }
        final_trace = Some(run_word(&word));
    }

    let final_trace = final_trace.unwrap_or_else(|| run_word(&word));
    let final_is_member = final_trace.is_member(language);
    let tight = final_trace
        .sketch()
        .ok()
        .flatten()
        .is_some_and(|sketch| sketch.symbols() == final_trace.word().symbols());
    let no_totals = final_trace.no_counts();
    AlternatingLedgerOutcome {
        final_trace,
        final_is_member,
        tight,
        no_bursts,
        alternations,
        no_totals,
    }
}

/// Per-process `(total reports, NO reports)` of a trace.
fn count_reports(trace: &ExecutionTrace) -> Vec<(usize, usize)> {
    trace
        .all_verdicts()
        .iter()
        .map(|stream| (stream.len(), stream.no_count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ConstantFamily;
    use crate::monitors::{
        EcLedgerGuessFamily, PredictiveFamily, SecCountFamily, WecCountFamily,
    };
    use crate::transform::StabilizedFamily;
    use drv_consistency::languages::{ec_led, lin_reg, sc_reg, sec_count, wec_count};

    #[test]
    fn lemma_5_1_fools_the_plain_adversary_monitors() {
        // Any plain-adversary monitor is fooled; exercise a few.
        for family in [
            Box::new(ConstantFamily::always_yes()) as Box<dyn MonitorFamily>,
            Box::new(WecCountFamily::new()),
            Box::new(StabilizedFamily::new(ConstantFamily::always_yes())),
        ] {
            let pair = lemma_5_1(family.as_ref(), 6);
            assert!(pair.verdicts_identical, "{}", family.name());
            assert!(pair.refutes_decidability(&lin_reg(2)), "{}", family.name());
            assert!(pair.refutes_decidability(&sc_reg(2)), "{}", family.name());
        }
    }

    #[test]
    fn lemma_5_1_word_shapes() {
        let pair = lemma_5_1(&ConstantFamily::always_yes(), 3);
        // E: write precedes read in every round.
        assert!(pair.member_trace.is_member(&lin_reg(2)));
        // F: each read precedes the write of the same value.
        assert!(!pair.non_member_trace.is_member(&lin_reg(2)));
        assert!(!pair.non_member_trace.is_member(&sc_reg(2)));
        assert_eq!(
            pair.member_trace.word().len(),
            pair.non_member_trace.word().len()
        );
    }

    #[test]
    #[should_panic(expected = "plain adversary")]
    fn lemma_5_1_rejects_view_requiring_families() {
        let _ = lemma_5_1(&SecCountFamily::new(), 2);
    }

    #[test]
    fn lemma_5_2_refutes_strong_decidability_of_wec() {
        let outcome = lemma_5_2(&WecCountFamily::new(), &wec_count(), 6, 6);
        assert!(outcome.first_no.is_some(), "the monitor does flag the stale reads");
        assert!(outcome.no_replayed);
        assert!(outcome.member_is_member);
        assert!(outcome.refutes_strong_decidability());
    }

    #[test]
    fn lemma_5_2_applies_to_stabilized_monitors_too() {
        // Wrapping with Figure 2 (the natural way to aim for strong
        // decidability) does not help.
        let family = StabilizedFamily::new(WecCountFamily::new());
        let outcome = lemma_5_2(&family, &wec_count(), 6, 6);
        assert!(outcome.refutes_strong_decidability());
    }

    #[test]
    fn lemma_5_2_handles_silent_monitors() {
        // A monitor that never says NO fails strong decidability outright on
        // the non-member word.
        let outcome = lemma_5_2(&ConstantFamily::always_yes(), &wec_count(), 4, 4);
        assert!(outcome.first_no.is_none());
        assert!(outcome.refutes_strong_decidability());
        assert!(!outcome.non_member_trace.is_member(&wec_count()));
    }

    #[test]
    fn lemma_6_2_refutes_psd_for_the_counters() {
        let wec = lemma_6_2(&WecCountFamily::new(), &wec_count(), 6, 6);
        assert!(wec.refutes_predictive_strong_decidability());
        assert!(wec.tight);

        let sec = lemma_6_2(&SecCountFamily::new(), &sec_count(), 6, 6);
        assert!(sec.refutes_predictive_strong_decidability());
        assert!(sec.tight);
    }

    #[test]
    fn lemma_6_5_forces_unbounded_no_bursts() {
        let outcome = lemma_6_5(&EcLedgerGuessFamily::new(), &ec_led(), 3, 3);
        assert_eq!(outcome.alternations, 3);
        assert!(outcome.final_is_member);
        assert!(outcome.tight);
        assert_eq!(outcome.no_bursts, 3);
        assert!(outcome.demonstrates_unbounded_no_bursts());
        assert!(outcome.no_totals.iter().sum::<usize>() >= 3);
    }

    #[test]
    fn lemma_6_5_also_traps_the_linearizability_monitor() {
        // V_O for the ledger also keeps flagging the stale phases (they are
        // not linearizable), so it exhibits the same bursts.
        let family = PredictiveFamily::linearizable(drv_spec::Ledger::new());
        let outcome = lemma_6_5(&family, &ec_led(), 2, 2);
        assert!(outcome.final_is_member);
        assert!(outcome.no_bursts >= 1);
    }

    #[test]
    fn lemma_5_1_scripted_content_is_shared_between_runs() {
        // Sanity check on the interplay of scripted content and schedules:
        // both traces use the same per-process content.
        let pair = lemma_5_1(&ConstantFamily::always_yes(), 4);
        for p in 0..2 {
            let member_local = pair.member_trace.word().project(ProcId(p));
            let non_member_local = pair.non_member_trace.word().project(ProcId(p));
            assert_eq!(member_local, non_member_local);
        }
    }
}
