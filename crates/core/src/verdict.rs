//! Verdicts and verdict streams.
//!
//! In every iteration of the generic monitor structure (Figure 1, line 06) a
//! process *reports* a value.  The paper's two-valued decidability notions use
//! YES/NO; Section 5.2 and Section 7 discuss richer verdict domains (MAYBE,
//! or arbitrarily many opinions), which [`Verdict::Maybe`] makes representable.
//!
//! A [`VerdictStream`] is the sequence of verdicts one process reported in an
//! execution, each tagged with the length of the input word at reporting time
//! so that "finitely many NO" can be given the cut-based finitary reading used
//! throughout the experiments.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value reported by a monitor process (Figure 1, line 06).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The process currently believes the behaviour is correct.
    Yes,
    /// The process currently believes the behaviour is incorrect.
    No,
    /// An inconclusive opinion; the index allows multi-opinion domains
    /// (Section 5.2 discusses verdicts with `2k + 4` opinions).
    Maybe(u32),
}

impl Verdict {
    /// Returns `true` for [`Verdict::Yes`].
    #[must_use]
    pub fn is_yes(self) -> bool {
        matches!(self, Verdict::Yes)
    }

    /// Returns `true` for [`Verdict::No`].
    #[must_use]
    pub fn is_no(self) -> bool {
        matches!(self, Verdict::No)
    }

    /// Returns `true` for any [`Verdict::Maybe`].
    #[must_use]
    pub fn is_maybe(self) -> bool {
        matches!(self, Verdict::Maybe(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Yes => write!(f, "YES"),
            Verdict::No => write!(f, "NO"),
            Verdict::Maybe(i) => write!(f, "MAYBE({i})"),
        }
    }
}

impl From<drv_consistency::CheckOutcome> for Verdict {
    /// The canonical reading of a consistency-checker outcome as a monitor
    /// verdict: consistent → YES, inconsistent → NO, budget-exhausted →
    /// MAYBE(0).
    fn from(outcome: drv_consistency::CheckOutcome) -> Self {
        match outcome {
            drv_consistency::CheckOutcome::Consistent => Verdict::Yes,
            drv_consistency::CheckOutcome::Inconsistent => Verdict::No,
            drv_consistency::CheckOutcome::Unknown => Verdict::Maybe(0),
        }
    }
}

/// One report of one process: the verdict plus the positions at which it was
/// emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// The reported verdict.
    pub verdict: Verdict,
    /// The process's iteration index (0-based) at reporting time.
    pub iteration: usize,
    /// Length of the input word x(E) at reporting time.
    pub word_len: usize,
}

/// The sequence of verdicts one process reported in an execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictStream {
    reports: Vec<Report>,
}

impl VerdictStream {
    /// Creates an empty stream.
    #[must_use]
    pub fn new() -> Self {
        VerdictStream::default()
    }

    /// Appends a report.
    pub fn push(&mut self, verdict: Verdict, iteration: usize, word_len: usize) {
        self.reports.push(Report {
            verdict,
            iteration,
            word_len,
        });
    }

    /// All reports, in order.
    #[must_use]
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Number of reports.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` when the process never reported.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The verdicts only, in order.
    #[must_use]
    pub fn verdicts(&self) -> Vec<Verdict> {
        self.reports.iter().map(|r| r.verdict).collect()
    }

    /// `NO(E, p)`: the number of NO reports.
    #[must_use]
    pub fn no_count(&self) -> usize {
        self.reports.iter().filter(|r| r.verdict.is_no()).count()
    }

    /// `YES(E, p)`: the number of YES reports.
    #[must_use]
    pub fn yes_count(&self) -> usize {
        self.reports.iter().filter(|r| r.verdict.is_yes()).count()
    }

    /// Number of MAYBE reports.
    #[must_use]
    pub fn maybe_count(&self) -> usize {
        self.reports.iter().filter(|r| r.verdict.is_maybe()).count()
    }

    /// Number of NO reports from report index `from` (inclusive) onwards.
    ///
    /// This is the finitary reading of "infinitely many NO": a NO that occurs
    /// in the tail of the run.
    #[must_use]
    pub fn no_count_from(&self, from: usize) -> usize {
        self.reports
            .iter()
            .skip(from)
            .filter(|r| r.verdict.is_no())
            .count()
    }

    /// Number of YES reports from report index `from` (inclusive) onwards.
    #[must_use]
    pub fn yes_count_from(&self, from: usize) -> usize {
        self.reports
            .iter()
            .skip(from)
            .filter(|r| r.verdict.is_yes())
            .count()
    }

    /// Index of the first NO report, if any.
    #[must_use]
    pub fn first_no(&self) -> Option<usize> {
        self.reports.iter().position(|r| r.verdict.is_no())
    }

    /// Index of the last NO report, if any.
    #[must_use]
    pub fn last_no(&self) -> Option<usize> {
        self.reports.iter().rposition(|r| r.verdict.is_no())
    }

    /// Returns `true` when the stream never contains NO.
    #[must_use]
    pub fn never_no(&self) -> bool {
        self.no_count() == 0
    }

    /// Returns `true` when the stream contains no NO from report index `from`
    /// onwards (the finitary "finitely many NO").
    #[must_use]
    pub fn no_free_tail(&self, from: usize) -> bool {
        self.no_count_from(from) == 0
    }
}

impl fmt::Display for VerdictStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, report) in self.reports.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", report.verdict)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Verdict> for VerdictStream {
    fn from_iter<I: IntoIterator<Item = Verdict>>(iter: I) -> Self {
        let mut stream = VerdictStream::new();
        for (i, verdict) in iter.into_iter().enumerate() {
            stream.push(verdict, i, 0);
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates_and_display() {
        assert!(Verdict::Yes.is_yes());
        assert!(Verdict::No.is_no());
        assert!(Verdict::Maybe(2).is_maybe());
        assert!(!Verdict::Yes.is_no());
        assert_eq!(Verdict::Yes.to_string(), "YES");
        assert_eq!(Verdict::No.to_string(), "NO");
        assert_eq!(Verdict::Maybe(3).to_string(), "MAYBE(3)");
    }

    #[test]
    fn stream_counts() {
        let stream: VerdictStream = [
            Verdict::Yes,
            Verdict::No,
            Verdict::Yes,
            Verdict::Maybe(0),
            Verdict::No,
        ]
        .into_iter()
        .collect();
        assert_eq!(stream.len(), 5);
        assert!(!stream.is_empty());
        assert_eq!(stream.no_count(), 2);
        assert_eq!(stream.yes_count(), 2);
        assert_eq!(stream.maybe_count(), 1);
        assert_eq!(stream.first_no(), Some(1));
        assert_eq!(stream.last_no(), Some(4));
        assert!(!stream.never_no());
        assert_eq!(stream.no_count_from(2), 1);
        assert_eq!(stream.yes_count_from(3), 0);
        assert!(!stream.no_free_tail(4));
        assert!(stream.no_free_tail(5));
        assert_eq!(stream.verdicts().len(), 5);
        assert_eq!(stream.to_string(), "[YES NO YES MAYBE(0) NO]");
    }

    #[test]
    fn empty_stream_is_no_free() {
        let stream = VerdictStream::new();
        assert!(stream.is_empty());
        assert!(stream.never_no());
        assert!(stream.no_free_tail(0));
        assert_eq!(stream.first_no(), None);
        assert_eq!(stream.last_no(), None);
    }

    #[test]
    fn push_records_positions() {
        let mut stream = VerdictStream::new();
        stream.push(Verdict::Yes, 0, 2);
        stream.push(Verdict::No, 1, 4);
        assert_eq!(stream.reports()[1].word_len, 4);
        assert_eq!(stream.reports()[1].iteration, 1);
    }
}
