//! The generic monitor structure of Figure 1.
//!
//! A distributed monitor is a collection of `n` local algorithms, one per
//! process, each running the infinite loop of Figure 1: pick an invocation,
//! exchange information through shared memory, send the invocation to the
//! adversary, receive the response, exchange information again, and report a
//! verdict.  The wait-free shared-memory blocks (lines 02, 05, 06) are what a
//! [`Monitor`] implements; the picking, sending and receiving (lines 01, 03,
//! 04) are driven by the [`crate::runtime`].
//!
//! A [`MonitorFamily`] creates the `n` local monitors of one distributed
//! monitor, wiring up whatever shared-memory objects they communicate
//! through.

use crate::verdict::Verdict;
use drv_adversary::View;
use drv_lang::{Invocation, ProcId, Response};
use std::borrow::Cow;

/// One process's local monitor algorithm (the body of Figure 1).
///
/// The runtime calls the three methods once per loop iteration, in order:
/// [`Monitor::before_send`] (line 02 block, executed atomically just before
/// the send event), [`Monitor::after_receive`] (line 05 block, executed
/// atomically just after the receive event) and [`Monitor::report`]
/// (line 06).  Each block is wait-free by construction: it runs to completion
/// regardless of the progress of other processes.
pub trait Monitor: Send {
    /// Human-readable name of the local algorithm.
    ///
    /// Called once per iteration by the reporting paths, so implementations
    /// must not allocate: return a `Cow::Borrowed` of a `'static` string or
    /// of a name computed once at construction.
    fn name(&self) -> Cow<'_, str>;

    /// The process this local monitor runs at.
    fn proc(&self) -> ProcId;

    /// Figure 1, line 02: the shared-memory block executed before the
    /// invocation `invocation` is sent to the adversary.
    fn before_send(&mut self, invocation: &Invocation);

    /// Figure 1, line 05: the shared-memory block executed after the
    /// response is received from the adversary.
    ///
    /// `view` is `Some` when the monitor interacts with the timed adversary
    /// Aτ (Section 6) and `None` under the plain adversary A.
    fn after_receive(&mut self, invocation: &Invocation, response: &Response, view: Option<&View>);

    /// Figure 1, line 06: report a verdict for the current iteration.
    fn report(&mut self) -> Verdict;
}

/// A distributed monitor: a recipe for creating the `n` local monitors of one
/// run, typically sharing shared-memory objects among them.
pub trait MonitorFamily {
    /// Human-readable name of the distributed monitor (used in reports).
    ///
    /// Like [`Monitor::name`], allocation-free: borrow a static or cached
    /// name.
    fn name(&self) -> Cow<'_, str>;

    /// Creates the local monitors for an `n`-process run.
    ///
    /// Implementations create fresh shared-memory objects per call, so every
    /// run starts from the initial configuration.
    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>>;

    /// Whether the family requires the timed adversary Aτ (its local monitors
    /// use the views).  The runtime refuses to run a view-requiring family
    /// against the plain adversary A.
    fn requires_views(&self) -> bool {
        false
    }
}

/// A trivial monitor that reports a fixed verdict forever.
///
/// `AlwaysYes` (the unit family built by [`ConstantFamily::always_yes`])
/// vacuously satisfies the "no false positives on members" half of every
/// decidability definition and is the natural baseline for step-complexity
/// benches.
#[derive(Debug, Clone)]
pub struct ConstantMonitor {
    proc: ProcId,
    verdict: Verdict,
}

impl Monitor for ConstantMonitor {
    fn name(&self) -> Cow<'_, str> {
        match self.verdict {
            Verdict::Yes => Cow::Borrowed("constant YES"),
            Verdict::No => Cow::Borrowed("constant NO"),
            Verdict::Maybe(_) => Cow::Owned(format!("constant {}", self.verdict)),
        }
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, _invocation: &Invocation) {}

    fn after_receive(
        &mut self,
        _invocation: &Invocation,
        _response: &Response,
        _view: Option<&View>,
    ) {
    }

    fn report(&mut self) -> Verdict {
        self.verdict
    }
}

/// Family of [`ConstantMonitor`]s.
#[derive(Debug, Clone)]
pub struct ConstantFamily {
    verdict: Verdict,
}

impl ConstantFamily {
    /// A family whose processes always report the given verdict.
    #[must_use]
    pub fn new(verdict: Verdict) -> Self {
        ConstantFamily { verdict }
    }

    /// The always-YES baseline.
    #[must_use]
    pub fn always_yes() -> Self {
        ConstantFamily::new(Verdict::Yes)
    }

    /// The always-NO baseline.
    #[must_use]
    pub fn always_no() -> Self {
        ConstantFamily::new(Verdict::No)
    }
}

impl MonitorFamily for ConstantFamily {
    fn name(&self) -> Cow<'_, str> {
        match self.verdict {
            Verdict::Yes => Cow::Borrowed("always-YES"),
            Verdict::No => Cow::Borrowed("always-NO"),
            Verdict::Maybe(_) => Cow::Owned(format!("always-{}", self.verdict)),
        }
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        ProcId::all(n)
            .map(|proc| {
                Box::new(ConstantMonitor {
                    proc,
                    verdict: self.verdict,
                }) as Box<dyn Monitor>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_family_spawns_constant_monitors() {
        let family = ConstantFamily::always_yes();
        assert_eq!(family.name(), "always-YES");
        assert!(!family.requires_views());
        let mut monitors = family.spawn(3);
        assert_eq!(monitors.len(), 3);
        assert_eq!(monitors[1].proc(), ProcId(1));
        monitors[0].before_send(&Invocation::Read);
        monitors[0].after_receive(&Invocation::Read, &Response::Value(0), None);
        assert_eq!(monitors[0].report(), Verdict::Yes);
        assert!(monitors[0].name().contains("YES"));

        let mut no_monitors = ConstantFamily::always_no().spawn(1);
        assert_eq!(no_monitors[0].report(), Verdict::No);
    }
}
