//! Ablation baselines: what the shared memory buys.
//!
//! [`LocalWecFamily`] checks only the two *local* clauses of the
//! weakly-eventual counter — a process's reads must dominate its own
//! increments and be monotone — without any communication.  It is sound but
//! cannot test the convergence clause (which needs the globally announced
//! increment total), so it accepts lossy counters that drop remote
//! increments.  The `transformations` bench and the ablation experiments
//! compare it against the full Figure 5 monitor to quantify the value of the
//! shared `INCS` array.

use crate::monitor::{Monitor, MonitorFamily};
use std::borrow::Cow;
use crate::verdict::Verdict;
use drv_adversary::View;
use drv_lang::{Invocation, ProcId, Response};

/// A communication-free local monitor checking only the per-process clauses
/// of the weakly-eventual counter.
#[derive(Debug, Clone, Default)]
pub struct LocalWecMonitor {
    proc: ProcId,
    own_incs: u64,
    last_read: Option<u64>,
    violated: bool,
    current_ok: bool,
    /// Formatted once at construction; reporting borrows it.
    name: String,
}

impl LocalWecMonitor {
    /// Creates the local monitor of process `proc`.
    #[must_use]
    pub fn new(proc: ProcId) -> Self {
        LocalWecMonitor {
            proc,
            own_incs: 0,
            last_read: None,
            violated: false,
            current_ok: true,
            name: format!("local-only WEC monitor at {proc}"),
        }
    }
}

impl Monitor for LocalWecMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, invocation: &Invocation) {
        if invocation.is_inc() {
            self.own_incs += 1;
        }
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        _view: Option<&View>,
    ) {
        self.current_ok = true;
        if invocation.is_read() {
            if let Some(value) = response.as_value() {
                if value < self.own_incs || self.last_read.is_some_and(|prev| value < prev) {
                    self.violated = true;
                    self.current_ok = false;
                }
                self.last_read = Some(value);
            }
        }
    }

    fn report(&mut self) -> Verdict {
        if self.violated {
            Verdict::No
        } else if self.current_ok {
            Verdict::Yes
        } else {
            Verdict::No
        }
    }
}

/// Family of [`LocalWecMonitor`]s (no shared memory at all).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalWecFamily;

impl LocalWecFamily {
    /// Creates the family.
    #[must_use]
    pub fn new() -> Self {
        LocalWecFamily
    }
}

impl MonitorFamily for LocalWecFamily {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("local-only WEC baseline (no shared memory)")
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        ProcId::all(n)
            .map(|proc| Box::new(LocalWecMonitor::new(proc)) as Box<dyn Monitor>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, NonMonotoneCounter};
    use drv_consistency::languages::wec_count;
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::Counter;

    fn counter_config(n: usize, iterations: usize, seed: u64) -> RunConfig {
        RunConfig::new(n, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed)
            .stop_mutators_after(iterations / 2)
    }

    #[test]
    fn local_baseline_accepts_members() {
        let trace = run(
            &counter_config(3, 50, 1),
            &LocalWecFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        assert!(trace.is_member(&wec_count()));
        assert!(trace.no_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn local_baseline_catches_local_violations() {
        let trace = run(
            &counter_config(2, 50, 2),
            &LocalWecFamily::new(),
            Box::new(NonMonotoneCounter::new(3)),
        );
        assert!(!trace.is_member(&wec_count()));
        assert!(trace.no_counts().iter().any(|&c| c > 0));
    }

    #[test]
    fn local_baseline_misses_remote_losses() {
        // Scripted scenario in which the violation is invisible locally:
        // p0 performs 4 increments of which the service silently drops two,
        // p1 only reads and always sees monotone values ≥ its own (zero)
        // increments.  The word is not weakly-eventual consistent (the reads
        // never converge to 4), the full Figure 5 monitor keeps flagging it
        // through the shared INCS array, but the communication-free baseline
        // accepts it — exactly the gap the shared memory closes.
        use drv_adversary::ScriptedBehavior;
        use drv_lang::{ProcId, Response, WordBuilder};

        let mut builder = WordBuilder::new();
        for _ in 0..4 {
            builder = builder.op(ProcId(0), Invocation::Inc, Response::Ack);
        }
        for _ in 0..6 {
            builder = builder.op(ProcId(1), Invocation::Read, Response::Value(2));
        }
        let word = builder.build();

        let config = RunConfig::new(2, 100).with_schedule(Schedule::WordScript(word.clone()));
        let local = run(
            &config,
            &LocalWecFamily::new(),
            Box::new(ScriptedBehavior::from_word(&word, 2)),
        );
        let full = run(
            &config,
            &crate::monitors::WecCountFamily::new(),
            Box::new(ScriptedBehavior::from_word(&word, 2)),
        );
        assert!(!full.is_member(&wec_count()));
        assert!(!local.is_member(&wec_count()));
        // The full monitor keeps reporting NO (reads never match the
        // announced total of 4)…
        assert!(full
            .all_verdicts()
            .iter()
            .all(|s| s.reports().last().unwrap().verdict.is_no()));
        // …while the baseline sees nothing wrong.
        assert!(local.all_verdicts().iter().all(|s| s.no_count() == 0));
    }

    #[test]
    fn monitor_and_family_metadata() {
        let family = LocalWecFamily::new();
        assert!(family.name().contains("local-only"));
        assert!(!family.requires_views());
        let mut monitor = LocalWecMonitor::new(ProcId(1));
        assert_eq!(monitor.proc(), ProcId(1));
        assert!(monitor.name().contains("p2"));
        monitor.before_send(&Invocation::Inc);
        monitor.after_receive(&Invocation::Inc, &Response::Ack, None);
        assert_eq!(monitor.report(), Verdict::Yes);
        monitor.after_receive(&Invocation::Read, &Response::Value(0), None);
        assert_eq!(monitor.report(), Verdict::No);
    }
}
