//! The Figure 8 monitor `V_O`: predictively strongly deciding `LIN_O` (and
//! `SC_O`) against Aτ (Theorem 6.2).
//!
//! Each process accumulates its completed operations — invocation, response
//! and the view Aτ attached to the response — in a shared array `M`.  Every
//! iteration it writes its set, snapshots `M`, locally reconstructs a finite
//! history `hᵢ` from all the triples it saw (the Appendix B sketch
//! construction) and reports YES exactly when `hᵢ` is linearizable (resp.
//! sequentially consistent) with respect to the sequential object `O`.
//!
//! Correctness (Theorem 8.1 of \[17\], restated as Theorem 6.2): if x(E) is
//! not linearizable then neither is the sketch, and because linearizability
//! is prefix-closed every process eventually reports NO forever; if x(E) is
//! linearizable, any NO is justified by the sketch x∼(E) — a behaviour Aτ
//! could genuinely have produced — being non-linearizable.

use crate::monitor::{Monitor, MonitorFamily};
use crate::verdict::Verdict;
use drv_adversary::{sketch_word, InvocationKey, TimedOp, View};
use drv_consistency::{check_history, CheckerConfig, ConcurrentHistory};
use drv_lang::{Invocation, ProcId, Response, Word};
use drv_shmem::SharedArray;
use drv_spec::SequentialSpec;

/// Which consistency criterion the reconstructed history is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// Linearizability (Definitions 2.4/2.6, language `LIN_O`).
    Linearizable,
    /// Sequential consistency (Definitions 2.3/2.5, language `SC_O`).
    SequentiallyConsistent,
}

impl Criterion {
    fn label(self) -> &'static str {
        match self {
            Criterion::Linearizable => "LIN",
            Criterion::SequentiallyConsistent => "SC",
        }
    }

    fn checker_config(self) -> CheckerConfig {
        match self {
            Criterion::Linearizable => CheckerConfig::linearizability(),
            Criterion::SequentiallyConsistent => CheckerConfig::sequential_consistency(),
        }
    }
}

/// The per-process local algorithm of Figure 8.
#[derive(Debug)]
pub struct PredictiveMonitor<S> {
    proc: ProcId,
    n: usize,
    spec: S,
    criterion: Criterion,
    max_states: usize,
    published: SharedArray<Vec<TimedOp>>,
    own_ops: Vec<TimedOp>,
    next_seq: u64,
    local_history: Option<Word>,
}

impl<S: SequentialSpec> PredictiveMonitor<S> {
    /// Creates the local monitor of process `proc`.
    #[must_use]
    pub fn new(
        proc: ProcId,
        n: usize,
        spec: S,
        criterion: Criterion,
        max_states: usize,
        published: SharedArray<Vec<TimedOp>>,
    ) -> Self {
        PredictiveMonitor {
            proc,
            n,
            spec,
            criterion,
            max_states,
            published,
            own_ops: Vec::new(),
            next_seq: 0,
            local_history: None,
        }
    }

    /// The finite history `hᵢ` the process reconstructed in its latest
    /// iteration, if any.
    #[must_use]
    pub fn local_history(&self) -> Option<&Word> {
        self.local_history.as_ref()
    }
}

impl<S: SequentialSpec> Monitor for PredictiveMonitor<S> {
    fn name(&self) -> String {
        format!(
            "V_O ({} {}) at {}",
            self.criterion.label(),
            self.spec.name(),
            self.proc
        )
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, _invocation: &Invocation) {
        // Figure 8, line 02: no communication is needed before sending.
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        view: Option<&View>,
    ) {
        // Figure 8, line 05: publish the triple, snapshot M, rebuild hᵢ.
        let view = view
            .cloned()
            .expect("the Figure 8 monitor runs against the timed adversary Aτ");
        let key = InvocationKey {
            proc: self.proc,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.own_ops.push(TimedOp::complete(
            key,
            invocation.clone(),
            response.clone(),
            view,
        ));
        self.published.write(self.proc.index(), self.own_ops.clone());
        let snapshot = self.published.snapshot();
        let all_ops: Vec<TimedOp> = snapshot.into_iter().flatten().collect();
        self.local_history = sketch_word(&all_ops).ok();
    }

    fn report(&mut self) -> Verdict {
        // Figure 8, line 06: YES iff hᵢ is consistent with O.
        let Some(history) = &self.local_history else {
            return Verdict::No;
        };
        let concurrent = ConcurrentHistory::from_word(history, self.n);
        let config = self.criterion.checker_config().with_max_states(self.max_states);
        if check_history(&self.spec, &concurrent, &config).is_consistent() {
            Verdict::Yes
        } else {
            Verdict::No
        }
    }
}

/// The distributed monitor of Figure 8, generic over the sequential object.
#[derive(Debug, Clone)]
pub struct PredictiveFamily<S> {
    spec: S,
    criterion: Criterion,
    max_states: usize,
}

impl<S: SequentialSpec + Clone> PredictiveFamily<S> {
    /// The linearizability monitor `V_O` for object `spec`.
    #[must_use]
    pub fn linearizable(spec: S) -> Self {
        PredictiveFamily {
            spec,
            criterion: Criterion::Linearizable,
            max_states: 200_000,
        }
    }

    /// The sequential-consistency variant of `V_O`.
    #[must_use]
    pub fn sequentially_consistent(spec: S) -> Self {
        PredictiveFamily {
            spec,
            criterion: Criterion::SequentiallyConsistent,
            max_states: 200_000,
        }
    }

    /// Bounds the state budget of the per-iteration consistency check.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// The criterion this family checks.
    #[must_use]
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }
}

impl<S: SequentialSpec + Clone + 'static> MonitorFamily for PredictiveFamily<S> {
    fn name(&self) -> String {
        format!(
            "Figure 8 (V_O, {} {}, predictive strong)",
            self.criterion.label(),
            self.spec.name()
        )
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let published = SharedArray::new(n, Vec::new());
        ProcId::all(n)
            .map(|proc| {
                Box::new(PredictiveMonitor::new(
                    proc,
                    n,
                    self.spec.clone(),
                    self.criterion,
                    self.max_states,
                    published.clone(),
                )) as Box<dyn Monitor>
            })
            .collect()
    }

    fn requires_views(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decidability::{Decider, Notion};
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, ReplicatedLedger, StaleReadRegister};
    use drv_consistency::languages::{lin_led, lin_reg, sc_reg};
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::{Ledger, Register};
    use std::sync::Arc;

    fn register_config(n: usize, iterations: usize, seed: u64) -> RunConfig {
        RunConfig::new(n, iterations)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Register).with_mutator_ratio(0.5))
            .with_sampler_seed(seed.wrapping_mul(7))
    }

    #[test]
    fn atomic_register_runs_satisfy_psd() {
        for seed in [2, 5, 8] {
            let config = register_config(3, 25, seed);
            let trace = run(
                &config,
                &PredictiveFamily::linearizable(Register::new()),
                Box::new(AtomicObject::new(Register::new())),
            );
            assert!(trace.is_member(&lin_reg(3)), "atomic register is linearizable");
            let decider = Decider::new(Arc::new(lin_reg(3)));
            let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
            assert!(evaluation.holds, "seed {seed}: {evaluation}");
        }
    }

    #[test]
    fn stale_register_is_reported() {
        let config = register_config(2, 30, 3);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Register::new()),
            Box::new(StaleReadRegister::new(3, 2)),
        );
        let decider = Decider::new(Arc::new(lin_reg(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
        // The behaviour really is non-linearizable on this run, and the
        // monitor catches it.
        assert!(!trace.is_member(&lin_reg(2)));
        assert!(trace.no_counts().iter().any(|&c| c > 0));
    }

    #[test]
    fn sequential_consistency_variant_accepts_sc_runs() {
        let config = register_config(2, 25, 6);
        let trace = run(
            &config,
            &PredictiveFamily::sequentially_consistent(Register::new()),
            Box::new(AtomicObject::new(Register::new())),
        );
        assert!(trace.is_member(&sc_reg(2)));
        let decider = Decider::new(Arc::new(sc_reg(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn ledger_monitor_rejects_eventually_consistent_ledger() {
        // A replicated (eventually-consistent) ledger lags behind appends, so
        // its histories are usually not linearizable; V_O must keep flagging
        // it, and the verdict is legitimate because the input itself is not
        // in LIN_LED.
        let config = RunConfig::new(2, 25)
            .timed()
            .with_schedule(Schedule::Random { seed: 12 })
            .with_sampler(SymbolSampler::new(ObjectKind::Ledger).with_mutator_ratio(0.5))
            .with_sampler_seed(99);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Ledger::new()),
            Box::new(ReplicatedLedger::new(4)),
        );
        let decider = Decider::new(Arc::new(lin_led(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn ledger_monitor_accepts_atomic_ledger() {
        let config = RunConfig::new(2, 20)
            .timed()
            .with_schedule(Schedule::Random { seed: 14 })
            .with_sampler(SymbolSampler::new(ObjectKind::Ledger).with_mutator_ratio(0.5))
            .with_sampler_seed(7);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Ledger::new()),
            Box::new(AtomicObject::new(Ledger::new())),
        );
        assert!(trace.is_member(&lin_led(2)));
        let decider = Decider::new(Arc::new(lin_led(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn queue_and_stack_monitors_work_for_any_total_object() {
        // Queues and stacks are the objects for which [17] proved the
        // original strong-decidability impossibility; V_O is generic over any
        // total sequential object, so the same monitor machinery covers them.
        use drv_consistency::languages::{lin_queue, lin_stack};
        use drv_spec::{Queue, Stack};

        let queue_config = RunConfig::new(2, 18)
            .timed()
            .with_schedule(Schedule::Random { seed: 4 })
            .with_sampler(SymbolSampler::new(ObjectKind::Queue).with_mutator_ratio(0.5))
            .with_sampler_seed(40);
        let trace = run(
            &queue_config,
            &PredictiveFamily::linearizable(Queue::new()),
            Box::new(AtomicObject::new(Queue::new())),
        );
        assert!(trace.is_member(&lin_queue(2)));
        let decider = Decider::new(Arc::new(lin_queue(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");

        let stack_config = RunConfig::new(2, 18)
            .timed()
            .with_schedule(Schedule::Random { seed: 6 })
            .with_sampler(SymbolSampler::new(ObjectKind::Stack).with_mutator_ratio(0.5))
            .with_sampler_seed(41);
        let trace = run(
            &stack_config,
            &PredictiveFamily::linearizable(Stack::new()),
            Box::new(AtomicObject::new(Stack::new())),
        );
        assert!(trace.is_member(&lin_stack(2)));
        let decider = Decider::new(Arc::new(lin_stack(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn family_metadata_and_local_history() {
        let family = PredictiveFamily::linearizable(Register::new()).with_max_states(1000);
        assert!(family.requires_views());
        assert_eq!(family.criterion(), Criterion::Linearizable);
        assert!(family.name().contains("Figure 8"));
        let sc = PredictiveFamily::sequentially_consistent(Register::new());
        assert_eq!(sc.criterion(), Criterion::SequentiallyConsistent);
        assert!(sc.name().contains("SC"));

        let published = SharedArray::new(1, Vec::new());
        let mut monitor = PredictiveMonitor::new(
            ProcId(0),
            1,
            Register::new(),
            Criterion::Linearizable,
            10_000,
            published,
        );
        assert!(monitor.local_history().is_none());
        assert_eq!(monitor.report(), Verdict::No);
        monitor.before_send(&Invocation::Write(1));
        let mut view = drv_adversary::View::new();
        view.insert(
            InvocationKey {
                proc: ProcId(0),
                seq: 0,
            },
            Invocation::Write(1),
        );
        monitor.after_receive(&Invocation::Write(1), &Response::Ack, Some(&view));
        assert!(monitor.local_history().is_some());
        assert_eq!(monitor.report(), Verdict::Yes);
        assert!(monitor.name().contains("LIN"));
    }
}
