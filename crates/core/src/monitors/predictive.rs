//! The Figure 8 monitor `V_O`: predictively strongly deciding `LIN_O` (and
//! `SC_O`) against Aτ (Theorem 6.2).
//!
//! Each process accumulates its completed operations — invocation, response
//! and the view Aτ attached to the response — in a shared array `M`.  Every
//! iteration it writes its set, snapshots `M`, locally reconstructs a finite
//! history `hᵢ` from all the triples it saw (the Appendix B sketch
//! construction) and reports YES exactly when `hᵢ` is linearizable (resp.
//! sequentially consistent) with respect to the sequential object `O`.
//!
//! Correctness (Theorem 8.1 of \[17\], restated as Theorem 6.2): if x(E) is
//! not linearizable then neither is the sketch, and because linearizability
//! is prefix-closed every process eventually reports NO forever; if x(E) is
//! linearizable, any NO is justified by the sketch x∼(E) — a behaviour Aτ
//! could genuinely have produced — being non-linearizable.
//!
//! # The incremental hot path
//!
//! Run literally, the loop above costs Θ(iterations × full check): every
//! iteration re-clones the whole of `M`, rebuilds the sketch and re-searches
//! for a linearization from scratch.  This implementation keeps the
//! paper's algorithm observably intact but makes the per-iteration cost
//! O(delta) in the common case:
//!
//! * the publish step appends in place ([`SharedArray::update`]) instead of
//!   rewriting the whole entry, and the snapshot step uses
//!   [`SharedArray::snapshot_since`], so only entries other processes
//!   actually changed since the previous iteration are cloned into a local
//!   mirror;
//! * the sketch is maintained by an [`IncrementalSketch`]: only the
//!   operations new in the delta are validated and appended (views grow
//!   monotonically along an Aτ execution, so in-order pushes only extend
//!   the word), instead of re-validating every pair of views and rebuilding
//!   the word from nothing each iteration;
//! * the consistency check goes through a long-lived
//!   [`IncrementalChecker`]: since the sketch only ever grows, the engine
//!   splices the new operations into its preserved witness instead of
//!   re-running the Wing–Gong search; in the rare non-extension case (an
//!   out-of-order publish under the threaded runtime) both structures
//!   transparently rebuild, so verdicts are *bit-identical* to the
//!   from-scratch checker either way (see `drv_consistency::incremental`).
//!
//! The from-scratch path is kept behind [`CheckStrategy::FromScratch`] for
//! differential tests and the `BENCH_checker.json` baseline.

use crate::monitor::{Monitor, MonitorFamily};
use crate::verdict::Verdict;
use drv_adversary::{IncrementalSketch, InvocationKey, TimedOp, View};
use drv_consistency::{
    check_history, CheckerConfig, CheckerStats, ConcurrentHistory, IncrementalChecker,
};
use drv_lang::{Invocation, ProcId, Response, Word};
use drv_shmem::SharedArray;
use drv_spec::SequentialSpec;
use std::borrow::Cow;

/// Which consistency criterion the reconstructed history is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// Linearizability (Definitions 2.4/2.6, language `LIN_O`).
    Linearizable,
    /// Sequential consistency (Definitions 2.3/2.5, language `SC_O`).
    SequentiallyConsistent,
}

impl Criterion {
    fn label(self) -> &'static str {
        match self {
            Criterion::Linearizable => "LIN",
            Criterion::SequentiallyConsistent => "SC",
        }
    }

    fn checker_config(self) -> CheckerConfig {
        match self {
            Criterion::Linearizable => CheckerConfig::linearizability(),
            Criterion::SequentiallyConsistent => CheckerConfig::sequential_consistency(),
        }
    }
}

/// How [`PredictiveMonitor::report`] checks the reconstructed history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckStrategy {
    /// Feed the sketch to a long-lived [`IncrementalChecker`] that reuses
    /// the previous iteration's witness, frontier and memo table (amortized
    /// O(delta) per iteration).  The default.
    #[default]
    Incremental,
    /// Rebuild a [`ConcurrentHistory`] and run [`check_history`] from
    /// scratch every iteration, exactly as Figure 8 reads.  Kept for
    /// differential testing and as the benchmark baseline.
    FromScratch,
}

/// The per-process local algorithm of Figure 8.
#[derive(Debug)]
pub struct PredictiveMonitor<S: SequentialSpec> {
    proc: ProcId,
    n: usize,
    spec: S,
    criterion: Criterion,
    config: CheckerConfig,
    strategy: CheckStrategy,
    published: SharedArray<Vec<TimedOp>>,
    /// Per-entry cursors into `M` (entries are append-only logs): only the
    /// operations published past them are cloned on the next iteration.
    cursors: Vec<usize>,
    /// Local mirror of `M`, grown from suffix deltas; only read back in
    /// full on the rare sketch rebuild.
    mirror: Vec<Vec<TimedOp>>,
    /// The incrementally grown hᵢ; `sketch_ok` is false while the published
    /// views are inconsistent (no sketch exists, report NO).
    sketch: IncrementalSketch,
    sketch_ok: bool,
    /// Whether the current sketch word is an in-place extension of the last
    /// word the checker consumed (false after a sketch rebuild, until the
    /// checker re-syncs).
    checker_in_sync: bool,
    next_seq: u64,
    checker: IncrementalChecker<S>,
    name: String,
}

impl<S: SequentialSpec + Clone> PredictiveMonitor<S> {
    /// Creates the local monitor of process `proc`.
    #[must_use]
    pub fn new(
        proc: ProcId,
        n: usize,
        spec: S,
        criterion: Criterion,
        max_states: usize,
        published: SharedArray<Vec<TimedOp>>,
    ) -> Self {
        let config = criterion.checker_config().with_max_states(max_states);
        let name = format!("V_O ({} {}) at {}", criterion.label(), spec.name(), proc);
        let checker = IncrementalChecker::new(spec.clone(), config, n);
        PredictiveMonitor {
            proc,
            n,
            spec,
            criterion,
            config,
            strategy: CheckStrategy::default(),
            published,
            cursors: Vec::new(),
            mirror: vec![Vec::new(); n],
            sketch: IncrementalSketch::new(),
            sketch_ok: true,
            checker_in_sync: true,
            next_seq: 0,
            checker,
            name,
        }
    }

    /// Selects how [`PredictiveMonitor::report`] checks the history.
    #[must_use]
    pub fn with_strategy(mut self, strategy: CheckStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The criterion this monitor checks.
    #[must_use]
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }

    /// The finite history `hᵢ` the process reconstructed in its latest
    /// iteration, if any (none while the operations it saw carry
    /// inconsistent views, or before the first iteration).
    #[must_use]
    pub fn local_history(&self) -> Option<&Word> {
        (self.sketch_ok && !self.sketch.word().is_empty()).then(|| self.sketch.word())
    }

    /// Folds the operations the suffix delta delivered into the sketch:
    /// the in-order extension path first, one sorted rebuild if the batch
    /// arrived out of containment order, `sketch_ok = false` if the views
    /// are genuinely inconsistent.
    fn absorb(&mut self, appended: Vec<(usize, usize, Vec<TimedOp>)>) {
        let mut fresh: Vec<(usize, usize)> = Vec::new();
        for (i, start, ops) in appended {
            // The mirror may be ahead of the shared entry's cursor only if
            // somebody rewrote an entry non-append-only, which the monitors
            // never do; truncate defensively so extend stays correct.
            self.mirror[i].truncate(start);
            self.mirror[i].extend(ops);
            fresh.push((i, start));
        }
        let mut batch: Vec<&TimedOp> = fresh
            .iter()
            .flat_map(|&(i, start)| self.mirror[i][start..].iter())
            .collect();
        batch.sort_by_key(|op| op.view.as_ref().map_or(0, drv_adversary::View::len));
        let mut rebuild = false;
        if self.sketch_ok {
            for op in batch {
                match self.sketch.push_op(op) {
                    Ok(()) => {}
                    Err(_) => {
                        rebuild = true;
                        break;
                    }
                }
            }
        } else {
            // A previous batch was inconsistent; newly arrived views may
            // resolve or re-confirm that — re-examine everything.
            rebuild = true;
        }
        if rebuild {
            self.checker_in_sync = false;
            match IncrementalSketch::from_ops(self.mirror.iter().flatten()) {
                Ok(sketch) => {
                    self.sketch = sketch;
                    self.sketch_ok = true;
                }
                Err(_) => self.sketch_ok = false,
            }
        }
    }

    /// The incremental engine's fast-path/fallback counters (all zero under
    /// [`CheckStrategy::FromScratch`]).
    #[must_use]
    pub fn checker_stats(&self) -> CheckerStats {
        self.checker.stats()
    }
}

impl<S: SequentialSpec + Clone> Monitor for PredictiveMonitor<S> {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, _invocation: &Invocation) {
        // Figure 8, line 02: no communication is needed before sending.
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        view: Option<&View>,
    ) {
        // Figure 8, line 05: publish the triple, snapshot M, rebuild hᵢ.
        // The publish appends in place and the snapshot delivers only the
        // entries that changed since the previous iteration.
        let view = view
            .cloned()
            .expect("the Figure 8 monitor runs against the timed adversary Aτ");
        let key = InvocationKey {
            proc: self.proc,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let op = TimedOp::complete(key, invocation.clone(), response.clone(), view);
        self.published.update(self.proc.index(), |ops| ops.push(op));
        let delta = self.published.snapshot_appended_since(&self.cursors);
        self.cursors = delta.lens;
        self.absorb(delta.appended);
    }

    fn report(&mut self) -> Verdict {
        // Figure 8, line 06: YES iff hᵢ is consistent with O.  No history
        // reconstructed yet (first iteration pending) or inconsistent views
        // → NO, as before the incremental port.
        if !self.sketch_ok || self.sketch.word().is_empty() {
            return Verdict::No;
        }
        let history = self.sketch.word();
        let consistent = match self.strategy {
            CheckStrategy::Incremental => {
                // The in-place-grown sketch is an extension of what the
                // checker last consumed, so the O(history) extension test
                // is skipped; after a sketch rebuild one checked call
                // re-syncs the engine.
                let outcome = if self.checker_in_sync {
                    self.checker.check_word_extension_outcome(history)
                } else {
                    self.checker.check_word_outcome(history)
                };
                self.checker_in_sync = true;
                outcome.is_consistent()
            }
            CheckStrategy::FromScratch => {
                let concurrent = ConcurrentHistory::from_word(history, self.n);
                check_history(&self.spec, &concurrent, &self.config).is_consistent()
            }
        };
        if consistent {
            Verdict::Yes
        } else {
            Verdict::No
        }
    }
}

/// The distributed monitor of Figure 8, generic over the sequential object.
#[derive(Debug, Clone)]
pub struct PredictiveFamily<S> {
    spec: S,
    criterion: Criterion,
    max_states: usize,
    strategy: CheckStrategy,
    name: String,
}

impl<S: SequentialSpec + Clone> PredictiveFamily<S> {
    fn build(spec: S, criterion: Criterion) -> Self {
        let name = format!(
            "Figure 8 (V_O, {} {}, predictive strong)",
            criterion.label(),
            spec.name()
        );
        PredictiveFamily {
            spec,
            criterion,
            max_states: 200_000,
            strategy: CheckStrategy::default(),
            name,
        }
    }

    /// The linearizability monitor `V_O` for object `spec`.
    #[must_use]
    pub fn linearizable(spec: S) -> Self {
        PredictiveFamily::build(spec, Criterion::Linearizable)
    }

    /// The sequential-consistency variant of `V_O`.
    #[must_use]
    pub fn sequentially_consistent(spec: S) -> Self {
        PredictiveFamily::build(spec, Criterion::SequentiallyConsistent)
    }

    /// Bounds the state budget of the per-iteration consistency check.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Selects how the spawned monitors check their histories (incremental
    /// by default).
    #[must_use]
    pub fn with_strategy(mut self, strategy: CheckStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The criterion this family checks.
    #[must_use]
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }

    /// The checking strategy the spawned monitors use.
    #[must_use]
    pub fn strategy(&self) -> CheckStrategy {
        self.strategy
    }
}

impl<S: SequentialSpec + Clone + 'static> MonitorFamily for PredictiveFamily<S> {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let published = SharedArray::new(n, Vec::new());
        ProcId::all(n)
            .map(|proc| {
                Box::new(
                    PredictiveMonitor::new(
                        proc,
                        n,
                        self.spec.clone(),
                        self.criterion,
                        self.max_states,
                        published.clone(),
                    )
                    .with_strategy(self.strategy),
                ) as Box<dyn Monitor>
            })
            .collect()
    }

    fn requires_views(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decidability::{Decider, Notion};
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, ReplicatedLedger, StaleReadRegister};
    use drv_consistency::languages::{lin_led, lin_reg, sc_reg};
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::{Ledger, Register};
    use std::sync::Arc;

    fn register_config(n: usize, iterations: usize, seed: u64) -> RunConfig {
        RunConfig::new(n, iterations)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Register).with_mutator_ratio(0.5))
            .with_sampler_seed(seed.wrapping_mul(7))
    }

    #[test]
    fn atomic_register_runs_satisfy_psd() {
        for seed in [2, 5, 8] {
            let config = register_config(3, 25, seed);
            let trace = run(
                &config,
                &PredictiveFamily::linearizable(Register::new()),
                Box::new(AtomicObject::new(Register::new())),
            );
            assert!(trace.is_member(&lin_reg(3)), "atomic register is linearizable");
            let decider = Decider::new(Arc::new(lin_reg(3)));
            let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
            assert!(evaluation.holds, "seed {seed}: {evaluation}");
        }
    }

    #[test]
    fn stale_register_is_reported() {
        let config = register_config(2, 30, 3);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Register::new()),
            Box::new(StaleReadRegister::new(3, 2)),
        );
        let decider = Decider::new(Arc::new(lin_reg(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
        // The behaviour really is non-linearizable on this run, and the
        // monitor catches it.
        assert!(!trace.is_member(&lin_reg(2)));
        assert!(trace.no_counts().iter().any(|&c| c > 0));
    }

    #[test]
    fn sequential_consistency_variant_accepts_sc_runs() {
        let config = register_config(2, 25, 6);
        let trace = run(
            &config,
            &PredictiveFamily::sequentially_consistent(Register::new()),
            Box::new(AtomicObject::new(Register::new())),
        );
        assert!(trace.is_member(&sc_reg(2)));
        let decider = Decider::new(Arc::new(sc_reg(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn ledger_monitor_rejects_eventually_consistent_ledger() {
        // A replicated (eventually-consistent) ledger lags behind appends, so
        // its histories are usually not linearizable; V_O must keep flagging
        // it, and the verdict is legitimate because the input itself is not
        // in LIN_LED.
        let config = RunConfig::new(2, 25)
            .timed()
            .with_schedule(Schedule::Random { seed: 12 })
            .with_sampler(SymbolSampler::new(ObjectKind::Ledger).with_mutator_ratio(0.5))
            .with_sampler_seed(99);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Ledger::new()),
            Box::new(ReplicatedLedger::new(4)),
        );
        let decider = Decider::new(Arc::new(lin_led(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn ledger_monitor_accepts_atomic_ledger() {
        let config = RunConfig::new(2, 20)
            .timed()
            .with_schedule(Schedule::Random { seed: 14 })
            .with_sampler(SymbolSampler::new(ObjectKind::Ledger).with_mutator_ratio(0.5))
            .with_sampler_seed(7);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Ledger::new()),
            Box::new(AtomicObject::new(Ledger::new())),
        );
        assert!(trace.is_member(&lin_led(2)));
        let decider = Decider::new(Arc::new(lin_led(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn queue_and_stack_monitors_work_for_any_total_object() {
        // Queues and stacks are the objects for which [17] proved the
        // original strong-decidability impossibility; V_O is generic over any
        // total sequential object, so the same monitor machinery covers them.
        use drv_consistency::languages::{lin_queue, lin_stack};
        use drv_spec::{Queue, Stack};

        let queue_config = RunConfig::new(2, 18)
            .timed()
            .with_schedule(Schedule::Random { seed: 4 })
            .with_sampler(SymbolSampler::new(ObjectKind::Queue).with_mutator_ratio(0.5))
            .with_sampler_seed(40);
        let trace = run(
            &queue_config,
            &PredictiveFamily::linearizable(Queue::new()),
            Box::new(AtomicObject::new(Queue::new())),
        );
        assert!(trace.is_member(&lin_queue(2)));
        let decider = Decider::new(Arc::new(lin_queue(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");

        let stack_config = RunConfig::new(2, 18)
            .timed()
            .with_schedule(Schedule::Random { seed: 6 })
            .with_sampler(SymbolSampler::new(ObjectKind::Stack).with_mutator_ratio(0.5))
            .with_sampler_seed(41);
        let trace = run(
            &stack_config,
            &PredictiveFamily::linearizable(Stack::new()),
            Box::new(AtomicObject::new(Stack::new())),
        );
        assert!(trace.is_member(&lin_stack(2)));
        let decider = Decider::new(Arc::new(lin_stack(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn strategies_agree_verdict_for_verdict() {
        // The runtime is deterministic per seed, so the same run driven by
        // the incremental and the from-scratch strategy must produce exactly
        // the same verdict streams — the engine is a pure speedup.
        type MakeBehavior = fn() -> Box<dyn drv_adversary::Behavior>;
        let cases: [(u64, MakeBehavior); 3] = [
            (2, || Box::new(AtomicObject::new(Register::new()))),
            (5, || Box::new(AtomicObject::new(Register::new()))),
            (3, || Box::new(StaleReadRegister::new(3, 2))),
        ];
        for (seed, make) in cases {
            let config = register_config(3, 25, seed);
            let scratch = run(
                &config,
                &PredictiveFamily::linearizable(Register::new())
                    .with_strategy(CheckStrategy::FromScratch),
                make(),
            );
            let incremental = run(
                &config,
                &PredictiveFamily::linearizable(Register::new()),
                make(),
            );
            for p in 0..3 {
                let s: Vec<Verdict> =
                    scratch.verdicts(p).reports().iter().map(|r| r.verdict).collect();
                let i: Vec<Verdict> =
                    incremental.verdicts(p).reports().iter().map(|r| r.verdict).collect();
                assert_eq!(s, i, "seed {seed}, process {p}");
            }
        }
    }

    #[test]
    fn incremental_strategy_uses_witness_maintenance() {
        // A single-process run of writes: the sketch grows by one operation
        // per iteration, so after the initial search every check must be
        // answered by witness splicing, not by fresh DFS runs.
        let published = SharedArray::new(1, Vec::new());
        let mut monitor = PredictiveMonitor::new(
            ProcId(0),
            1,
            Register::new(),
            Criterion::Linearizable,
            10_000,
            published,
        );
        let mut view = drv_adversary::View::new();
        for i in 0..10u64 {
            let key = InvocationKey {
                proc: ProcId(0),
                seq: i,
            };
            view.insert(key, Invocation::Write(i + 1));
            monitor.after_receive(&Invocation::Write(i + 1), &Response::Ack, Some(&view));
            assert_eq!(monitor.report(), Verdict::Yes);
        }
        let stats = monitor.checker_stats();
        assert_eq!(stats.checks, 10);
        assert!(stats.dfs_runs <= 1, "{stats:?}");
        assert!(stats.rebuilds == 0, "{stats:?}");
        assert!(stats.splices >= 8, "{stats:?}");
    }

    #[test]
    fn family_metadata_and_local_history() {
        let family = PredictiveFamily::linearizable(Register::new()).with_max_states(1000);
        assert!(family.requires_views());
        assert_eq!(family.criterion(), Criterion::Linearizable);
        assert!(family.name().contains("Figure 8"));
        let sc = PredictiveFamily::sequentially_consistent(Register::new());
        assert_eq!(sc.criterion(), Criterion::SequentiallyConsistent);
        assert!(sc.name().contains("SC"));

        let published = SharedArray::new(1, Vec::new());
        let mut monitor = PredictiveMonitor::new(
            ProcId(0),
            1,
            Register::new(),
            Criterion::Linearizable,
            10_000,
            published,
        );
        assert!(monitor.local_history().is_none());
        assert_eq!(monitor.report(), Verdict::No);
        monitor.before_send(&Invocation::Write(1));
        let mut view = drv_adversary::View::new();
        view.insert(
            InvocationKey {
                proc: ProcId(0),
                seq: 0,
            },
            Invocation::Write(1),
        );
        monitor.after_receive(&Invocation::Write(1), &Response::Ack, Some(&view));
        assert!(monitor.local_history().is_some());
        assert_eq!(monitor.report(), Verdict::Yes);
        assert!(monitor.name().contains("LIN"));
    }
}
