//! The Figure 5 monitor: weakly deciding `WEC_COUNT` against A (Lemma 5.3).
//!
//! Shared memory: an array `INCS[1…n]` of read/write registers.  Before
//! sending an `inc()` invocation, process `pᵢ` bumps its own entry
//! (Figure 5, line 02).  After receiving a response it snapshots `INCS`
//! (line 05) and reports (line 06):
//!
//! * NO forever once it has witnessed a violation of the two safety clauses
//!   of the weakly-eventual counter (a read below the process's own
//!   increments, or a non-monotone read),
//! * NO — without latching — while the counter has visibly not converged yet
//!   (the read differs from the announced total, or announcements are still
//!   growing),
//! * YES otherwise.
//!
//! On member words every process therefore reports NO only finitely often,
//! and on non-member words at least one process reports NO infinitely often;
//! Lemma 4.2's transformation ([`crate::transform::WadAllFamily`]) upgrades
//! the latter to *every* process, giving weak decidability.
//!
//! One clarification with respect to the paper's pseudocode: the two safety
//! clauses compare `curr_read`, which is only (re)defined by read responses,
//! so the comparison is meaningful only in iterations whose operation was a
//! `read()`.  The implementation makes that guard explicit; on `inc()`
//! iterations only the convergence clause can fire.

use crate::monitor::{Monitor, MonitorFamily};
use std::borrow::Cow;
use crate::verdict::Verdict;
use drv_adversary::View;
use drv_lang::{Invocation, ProcId, Response};
use drv_shmem::SharedArray;

/// The per-process local algorithm of Figure 5.
#[derive(Debug)]
pub struct WecCountMonitor {
    proc: ProcId,
    incs: SharedArray<u64>,
    count: u64,
    flag: bool,
    prev_read: u64,
    prev_incs: u64,
    curr_read: u64,
    curr_incs: u64,
    own_announced: u64,
    read_this_iteration: bool,
    /// Formatted once at construction; reporting borrows it.
    name: String,
}

impl WecCountMonitor {
    /// Creates the local monitor of process `proc` over the shared `INCS`
    /// array.
    #[must_use]
    pub fn new(proc: ProcId, incs: SharedArray<u64>) -> Self {
        WecCountMonitor {
            proc,
            incs,
            count: 0,
            flag: false,
            prev_read: 0,
            prev_incs: 0,
            curr_read: 0,
            curr_incs: 0,
            own_announced: 0,
            read_this_iteration: false,
            name: format!("WEC_COUNT monitor at {proc}"),
        }
    }

    /// Number of increments this process has announced so far.
    #[must_use]
    pub fn announced_increments(&self) -> u64 {
        self.count
    }

    /// Whether the latching safety flag has been raised.
    #[must_use]
    pub fn flagged(&self) -> bool {
        self.flag
    }
}

impl Monitor for WecCountMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, invocation: &Invocation) {
        // Figure 5, line 02: announce the increment before sending it.
        if invocation.is_inc() {
            self.count += 1;
            self.incs.write(self.proc.index(), self.count);
        }
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        _view: Option<&View>,
    ) {
        // Figure 5, line 05: snapshot INCS and record the read value.
        let snap = self.incs.snapshot();
        self.own_announced = snap[self.proc.index()];
        self.curr_incs = snap.iter().sum();
        self.read_this_iteration = invocation.is_read();
        if invocation.is_read() {
            if let Some(value) = response.as_value() {
                self.curr_read = value;
            }
        }
    }

    fn report(&mut self) -> Verdict {
        // Figure 5, line 06.
        let verdict = if self.flag {
            Verdict::No
        } else if self.read_this_iteration
            && (self.curr_read < self.own_announced || self.curr_read < self.prev_read)
        {
            self.flag = true;
            Verdict::No
        } else if self.curr_read != self.curr_incs || self.prev_incs < self.curr_incs {
            Verdict::No
        } else {
            Verdict::Yes
        };
        self.prev_read = self.curr_read;
        self.prev_incs = self.curr_incs;
        verdict
    }
}

/// The distributed monitor of Figure 5: `n` [`WecCountMonitor`]s sharing one
/// `INCS` array.
#[derive(Debug, Clone, Copy, Default)]
pub struct WecCountFamily;

impl WecCountFamily {
    /// Creates the family.
    #[must_use]
    pub fn new() -> Self {
        WecCountFamily
    }
}

impl MonitorFamily for WecCountFamily {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("Figure 5 (WEC_COUNT, weak)")
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let incs = SharedArray::new(n, 0u64);
        ProcId::all(n)
            .map(|proc| Box::new(WecCountMonitor::new(proc, incs.clone())) as Box<dyn Monitor>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decidability::{Decider, Notion};
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, LossyCounter, NonMonotoneCounter, ReplicatedCounter};
    use drv_consistency::languages::wec_count;
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::Counter;
    use std::sync::Arc;

    fn counter_config(n: usize, iterations: usize, seed: u64) -> RunConfig {
        RunConfig::new(n, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed.wrapping_mul(31))
            .stop_mutators_after(iterations / 2)
    }

    #[test]
    fn member_runs_eventually_stop_reporting_no() {
        for seed in [1, 2, 3] {
            let config = counter_config(3, 60, seed);
            let trace = run(
                &config,
                &WecCountFamily::new(),
                Box::new(AtomicObject::new(Counter::new())),
            );
            let decider = Decider::new(Arc::new(wec_count()));
            assert!(trace.is_member(&wec_count()), "atomic counter is a member");
            let evaluation = decider.evaluate(&trace, Notion::Weak).unwrap();
            assert!(evaluation.holds, "seed {seed}: {evaluation}");
        }
    }

    #[test]
    fn replicated_counter_is_also_accepted() {
        let config = counter_config(3, 80, 9);
        let trace = run(
            &config,
            &WecCountFamily::new(),
            Box::new(ReplicatedCounter::new(3)),
        );
        assert!(trace.is_member(&wec_count()));
        let decider = Decider::new(Arc::new(wec_count()));
        assert!(decider.evaluate(&trace, Notion::Weak).unwrap().holds);
    }

    #[test]
    fn lossy_counter_is_flagged_forever() {
        let config = counter_config(2, 60, 5);
        let trace = run(
            &config,
            &WecCountFamily::new(),
            Box::new(LossyCounter::new(2)),
        );
        assert!(!trace.is_member(&wec_count()));
        let decider = Decider::new(Arc::new(wec_count()));
        let evaluation = decider.evaluate(&trace, Notion::Weak).unwrap();
        assert!(evaluation.holds, "{evaluation}");
        // The violation is conclusive: every process keeps reporting NO.
        for p in 0..2 {
            assert!(trace.verdicts(p).no_count_from(trace.verdicts(p).len() / 2) > 0);
        }
    }

    #[test]
    fn non_monotone_counter_is_flagged() {
        // A non-monotone read latches the flag of the process that witnesses
        // it; the raw Figure 5 monitor therefore guarantees weak-*all*
        // decidability (Definition 4.2), and the Lemma 4.2 transformation
        // (crate::transform) is what upgrades it to WD.
        let config = counter_config(2, 60, 7);
        let trace = run(
            &config,
            &WecCountFamily::new(),
            Box::new(NonMonotoneCounter::new(3)),
        );
        assert!(!trace.is_member(&wec_count()));
        let decider = Decider::new(Arc::new(wec_count()));
        assert!(decider.evaluate(&trace, Notion::WeakAll).unwrap().holds);
    }

    #[test]
    fn monitor_state_accessors() {
        let incs = SharedArray::new(2, 0u64);
        let mut monitor = WecCountMonitor::new(ProcId(0), incs.clone());
        assert_eq!(monitor.announced_increments(), 0);
        assert!(!monitor.flagged());
        monitor.before_send(&Invocation::Inc);
        assert_eq!(monitor.announced_increments(), 1);
        assert_eq!(incs.read(0), 1);
        monitor.after_receive(&Invocation::Inc, &Response::Ack, None);
        // An inc iteration can report NO (not converged) but never latches.
        assert_eq!(monitor.report(), Verdict::No);
        assert!(!monitor.flagged());
        assert!(monitor.name().contains("WEC_COUNT"));
        assert_eq!(monitor.proc(), ProcId(0));

        // A read below the process's own announcements latches the flag.
        monitor.after_receive(&Invocation::Read, &Response::Value(0), None);
        assert_eq!(monitor.report(), Verdict::No);
        assert!(monitor.flagged());
        // …and stays NO forever.
        monitor.after_receive(&Invocation::Read, &Response::Value(1), None);
        assert_eq!(monitor.report(), Verdict::No);
    }

    #[test]
    fn family_metadata() {
        let family = WecCountFamily::new();
        assert!(family.name().contains("Figure 5"));
        assert!(!family.requires_views());
        assert_eq!(family.spawn(4).len(), 4);
    }
}
