//! The paper's monitor algorithms.
//!
//! | module | figure / section | decides |
//! |---|---|---|
//! | [`wec_count`] | Figure 5 (Lemma 5.3) | `WEC_COUNT`, weakly, against A |
//! | [`sec_count`] | Figure 9 (Lemma 6.4) | `SEC_COUNT`, predictively weakly, against Aτ |
//! | [`predictive`] | Figure 8 (Theorem 6.2) | `LIN_O` / `SC_O`, predictively strongly, against Aτ |
//! | [`three_valued`] | Section 7 | 3-valued variants for the eventual counters |
//! | [`baseline`] | — | ablation baselines (no shared memory) |

pub mod baseline;
pub mod ec_ledger;
pub mod predictive;
pub mod sec_count;
pub mod three_valued;
pub mod wec_count;

pub use baseline::LocalWecFamily;
pub use ec_ledger::EcLedgerGuessFamily;
pub use predictive::{CheckStrategy, Criterion, PredictiveFamily, PredictiveMonitor};
pub use sec_count::SecCountFamily;
pub use three_valued::{ThreeValuedSecFamily, ThreeValuedWecFamily};
pub use wec_count::WecCountFamily;
