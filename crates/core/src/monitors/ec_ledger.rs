//! A candidate monitor for the eventually-consistent ledger — doomed by
//! Lemma 6.5.
//!
//! `EC_LED` is not predictively weakly decidable (Lemma 6.5), so no correct
//! monitor for it exists.  [`EcLedgerGuessFamily`] is the natural *candidate*
//! one would write anyway: processes announce their appends in a shared
//! array, and a process reports NO when a `get()` it performed is missing a
//! record that had already been announced at the process's *previous*
//! iteration (a "grace period" of one full iteration for propagation), or
//! when the returned sequences of different processes are not
//! prefix-compatible.
//!
//! The monitor is *sound for the validity clause* and flags stale reads of
//! long-announced records, which makes it useful in practice — but the
//! Lemma 6.5 construction ([`crate::impossibility::lemma_6_5`]) shows
//! executably how the adversary alternates stale and fresh phases to make it
//! (or any other monitor) report NO on behaviours that are, in the limit,
//! eventually consistent.

use crate::monitor::{Monitor, MonitorFamily};
use std::borrow::Cow;
use crate::verdict::Verdict;
use drv_adversary::View;
use drv_lang::{Invocation, ProcId, Record, Response};
use drv_shmem::SharedArray;
use std::collections::BTreeSet;

/// The per-process candidate monitor for `EC_LED`.
#[derive(Debug)]
pub struct EcLedgerGuessMonitor {
    proc: ProcId,
    announced: SharedArray<BTreeSet<Record>>,
    own_appends: BTreeSet<Record>,
    previous_snapshot: BTreeSet<Record>,
    last_get: Option<Vec<Record>>,
    longest_get: SharedArray<Vec<Record>>,
    verdict: Verdict,
    /// Formatted once at construction; reporting borrows it.
    name: String,
}

impl EcLedgerGuessMonitor {
    /// Creates the local monitor of process `proc`.
    #[must_use]
    pub fn new(
        proc: ProcId,
        announced: SharedArray<BTreeSet<Record>>,
        longest_get: SharedArray<Vec<Record>>,
    ) -> Self {
        EcLedgerGuessMonitor {
            proc,
            announced,
            own_appends: BTreeSet::new(),
            previous_snapshot: BTreeSet::new(),
            last_get: None,
            longest_get,
            verdict: Verdict::Yes,
            name: format!("EC_LED candidate monitor at {proc}"),
        }
    }

    fn union_announced(&self) -> BTreeSet<Record> {
        self.announced
            .snapshot()
            .into_iter()
            .flatten()
            .collect()
    }
}

fn prefix_compatible(a: &[Record], b: &[Record]) -> bool {
    let shorter = a.len().min(b.len());
    a[..shorter] == b[..shorter]
}

impl Monitor for EcLedgerGuessMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, _invocation: &Invocation) {}

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        _view: Option<&View>,
    ) {
        self.verdict = Verdict::Yes;
        if let Invocation::Append(record) = invocation {
            // Publish the append once it has *completed*: a completed append
            // must eventually be visible to every get, and for atomic
            // ledgers it already is, so the visibility heuristic below never
            // raises a false alarm on correct atomic behaviour.
            self.own_appends.insert(*record);
            self.announced
                .write(self.proc.index(), self.own_appends.clone());
        }
        if invocation.is_get() {
            if let Response::Sequence(sequence) = response {
                // Validity heuristic: the sequences published by the
                // processes must be pairwise prefix-compatible.
                let published = self.longest_get.snapshot();
                if published
                    .iter()
                    .any(|other| !prefix_compatible(sequence, other))
                {
                    self.verdict = Verdict::No;
                }
                if self
                    .longest_get
                    .read(self.proc.index())
                    .len()
                    < sequence.len()
                {
                    self.longest_get.write(self.proc.index(), sequence.clone());
                }
                // Eventual-visibility heuristic: everything announced at the
                // previous iteration has had a full iteration to propagate.
                let returned: BTreeSet<Record> = sequence.iter().copied().collect();
                if self
                    .previous_snapshot
                    .iter()
                    .any(|record| !returned.contains(record))
                {
                    self.verdict = Verdict::No;
                }
                self.last_get = Some(sequence.clone());
            }
        }
        self.previous_snapshot = self.union_announced();
    }

    fn report(&mut self) -> Verdict {
        self.verdict
    }
}

/// The candidate distributed monitor for `EC_LED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EcLedgerGuessFamily;

impl EcLedgerGuessFamily {
    /// Creates the family.
    #[must_use]
    pub fn new() -> Self {
        EcLedgerGuessFamily
    }
}

impl MonitorFamily for EcLedgerGuessFamily {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("EC_LED candidate (announce + grace period)")
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let announced = SharedArray::new(n, BTreeSet::new());
        let longest_get = SharedArray::new(n, Vec::new());
        ProcId::all(n)
            .map(|proc| {
                Box::new(EcLedgerGuessMonitor::new(
                    proc,
                    announced.clone(),
                    longest_get.clone(),
                )) as Box<dyn Monitor>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, ForgetfulLedger, ForkingLedger, ReplicatedLedger};
    use drv_consistency::languages::ec_led;
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::Ledger;

    fn ledger_config(n: usize, iterations: usize, seed: u64) -> RunConfig {
        RunConfig::new(n, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Ledger).with_mutator_ratio(0.4))
            .with_sampler_seed(seed.wrapping_mul(3))
            .stop_mutators_after(iterations / 2)
    }

    #[test]
    fn atomic_ledger_runs_are_quiet() {
        let trace = run(
            &ledger_config(2, 40, 1),
            &EcLedgerGuessFamily::new(),
            Box::new(AtomicObject::new(Ledger::new())),
        );
        assert!(trace.is_member(&ec_led()));
        assert!(trace.no_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn replicated_ledger_runs_quiesce() {
        // The replicated ledger lags, so early NO reports are possible, but
        // once appends stop the candidate monitor goes quiet.
        let trace = run(
            &ledger_config(2, 60, 5),
            &EcLedgerGuessFamily::new(),
            Box::new(ReplicatedLedger::new(2)),
        );
        assert!(trace.is_member(&ec_led()));
        for p in 0..2 {
            let stream = trace.verdicts(p);
            assert!(stream.no_free_tail(stream.len() * 3 / 4));
        }
    }

    #[test]
    fn forgetful_ledger_keeps_getting_flagged() {
        let trace = run(
            &ledger_config(2, 60, 7),
            &EcLedgerGuessFamily::new(),
            Box::new(ForgetfulLedger::new()),
        );
        assert!(!trace.is_member(&ec_led()));
        assert!(trace.no_counts().iter().any(|&c| c > 0));
    }

    #[test]
    fn forking_ledger_violates_prefix_compatibility() {
        let trace = run(
            &ledger_config(2, 60, 9),
            &EcLedgerGuessFamily::new(),
            Box::new(ForkingLedger::new()),
        );
        assert!(trace.no_counts().iter().any(|&c| c > 0));
    }

    #[test]
    fn family_metadata() {
        let family = EcLedgerGuessFamily::new();
        assert!(family.name().contains("EC_LED"));
        assert!(!family.requires_views());
        assert_eq!(family.spawn(3).len(), 3);
    }
}
