//! Three-valued monitors (Section 7).
//!
//! The paper's final remarks sketch a 3-valued variant of weak decidability:
//! processes may report YES, NO or MAYBE, and the requirement becomes
//!
//! * if the behaviour is in the language, no process ever reports NO,
//! * otherwise, no process ever reports YES.
//!
//! A report of MAYBE carries no commitment, while YES/NO are *conclusive*.
//! The Figure 5 and Figure 9 monitors adapt naturally: their latching safety
//! clauses are conclusive evidence of non-membership (report NO), their
//! convergence clause is inconclusive (report MAYBE instead of NO), and —
//! because an eventual property can never be conclusively confirmed on a
//! finite prefix — the remaining case reports MAYBE instead of YES, exactly
//! the "change YES with MAYBE" adaptation the paper describes.
//!
//! [`ThreeValuedWecFamily`] and [`ThreeValuedSecFamily`] implement the two
//! variants; [`three_valued_holds`] is the corresponding evaluator.

use crate::monitor::{Monitor, MonitorFamily};
use std::borrow::Cow;
use crate::monitors::sec_count::SecCountMonitor;
use crate::monitors::wec_count::WecCountMonitor;
use crate::trace::ExecutionTrace;
use crate::verdict::Verdict;
use drv_adversary::View;
use drv_lang::{Invocation, Language, ProcId, Response};
use drv_shmem::SharedArray;

/// Remaps a two-valued monitor's verdicts into the 3-valued domain: NO stays
/// NO only while the underlying latching flag (conclusive evidence) is set,
/// every other NO becomes MAYBE, and YES becomes MAYBE as well.
#[derive(Debug)]
enum Inner {
    Wec(WecCountMonitor),
    Sec(SecCountMonitor),
}

impl Inner {
    fn conclusive(&self) -> bool {
        match self {
            Inner::Wec(m) => m.flagged(),
            // For the SEC variant, either a latched safety violation or a
            // published overshooting read (view-justified evidence against
            // clause (4)) is conclusive.
            Inner::Sec(m) => m.flagged() || m.overshooting_read_published(),
        }
    }
}

/// A 3-valued local monitor for the eventual counters.
#[derive(Debug)]
pub struct ThreeValuedMonitor {
    inner: Inner,
    proc: ProcId,
    /// Formatted once at construction; reporting borrows it.
    name: String,
}

impl Monitor for ThreeValuedMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, invocation: &Invocation) {
        match &mut self.inner {
            Inner::Wec(m) => m.before_send(invocation),
            Inner::Sec(m) => m.before_send(invocation),
        }
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        view: Option<&View>,
    ) {
        match &mut self.inner {
            Inner::Wec(m) => m.after_receive(invocation, response, view),
            Inner::Sec(m) => m.after_receive(invocation, response, view),
        }
    }

    fn report(&mut self) -> Verdict {
        let raw = match &mut self.inner {
            Inner::Wec(m) => m.report(),
            Inner::Sec(m) => m.report(),
        };
        match raw {
            // Only conclusive evidence keeps the NO: a latched safety
            // violation (both variants) or a published overshooting read
            // (SEC variant).  The convergence clause alone is inconclusive.
            Verdict::No if self.inner.conclusive() => Verdict::No,
            Verdict::No => Verdict::Maybe(0),
            // An eventual property can never be conclusively confirmed on a
            // finite prefix: YES becomes MAYBE.
            Verdict::Yes => Verdict::Maybe(1),
            other => other,
        }
    }
}

/// The 3-valued variant of the Figure 5 monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeValuedWecFamily;

impl ThreeValuedWecFamily {
    /// Creates the family.
    #[must_use]
    pub fn new() -> Self {
        ThreeValuedWecFamily
    }
}

impl MonitorFamily for ThreeValuedWecFamily {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("Section 7 (3-valued WEC_COUNT)")
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let incs = SharedArray::new(n, 0u64);
        ProcId::all(n)
            .map(|proc| {
                Box::new(ThreeValuedMonitor {
                    inner: Inner::Wec(WecCountMonitor::new(proc, incs.clone())),
                    proc,
                    name: format!("3-valued counter monitor at {proc}"),
                }) as Box<dyn Monitor>
            })
            .collect()
    }
}

/// The 3-valued variant of the Figure 9 monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeValuedSecFamily;

impl ThreeValuedSecFamily {
    /// Creates the family.
    #[must_use]
    pub fn new() -> Self {
        ThreeValuedSecFamily
    }
}

impl MonitorFamily for ThreeValuedSecFamily {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("Section 7 (3-valued SEC_COUNT)")
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let incs = SharedArray::new(n, 0u64);
        let published = SharedArray::new(n, Vec::new());
        ProcId::all(n)
            .map(|proc| {
                Box::new(ThreeValuedMonitor {
                    inner: Inner::Sec(SecCountMonitor::new(
                        proc,
                        incs.clone(),
                        published.clone(),
                    )),
                    proc,
                    name: format!("3-valued counter monitor at {proc}"),
                }) as Box<dyn Monitor>
            })
            .collect()
    }

    fn requires_views(&self) -> bool {
        true
    }
}

/// The Section 7 requirement on one run: members never trigger NO, and
/// non-members never trigger YES.
///
/// Note that with the conservative monitors above non-members detected only
/// through the eventual clause produce MAYBE rather than NO; the requirement
/// still holds (it forbids YES, it does not require NO).
#[must_use]
pub fn three_valued_holds(trace: &ExecutionTrace, language: &dyn Language) -> bool {
    let member = trace.is_member(language);
    trace.all_verdicts().iter().all(|stream| {
        if member {
            stream.no_count() == 0
        } else {
            stream.yes_count() == 0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, LossyCounter, NonMonotoneCounter, OverCounter};
    use drv_consistency::languages::{sec_count, wec_count};
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::Counter;

    fn counter_config(n: usize, iterations: usize, seed: u64, timed: bool) -> RunConfig {
        let config = RunConfig::new(n, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed)
            .stop_mutators_after(iterations / 2);
        if timed {
            config.timed()
        } else {
            config
        }
    }

    #[test]
    fn members_never_trigger_no() {
        let config = counter_config(3, 50, 2, false);
        let trace = run(
            &config,
            &ThreeValuedWecFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        assert!(trace.is_member(&wec_count()));
        assert!(three_valued_holds(&trace, &wec_count()));
        // Nothing conclusive happened, so not a single NO or YES was issued.
        for p in 0..3 {
            assert_eq!(trace.verdicts(p).no_count(), 0);
            assert_eq!(trace.verdicts(p).yes_count(), 0);
            assert!(trace.verdicts(p).maybe_count() > 0);
        }
    }

    #[test]
    fn safety_violations_are_conclusive() {
        let config = counter_config(2, 50, 3, false);
        let trace = run(
            &config,
            &ThreeValuedWecFamily::new(),
            Box::new(NonMonotoneCounter::new(3)),
        );
        assert!(!trace.is_member(&wec_count()));
        assert!(three_valued_holds(&trace, &wec_count()));
        // The witnessing process issued a conclusive NO.
        assert!(trace.no_counts().iter().any(|&c| c > 0));
    }

    #[test]
    fn eventual_violations_stay_inconclusive() {
        let config = counter_config(2, 50, 4, false);
        let trace = run(
            &config,
            &ThreeValuedWecFamily::new(),
            Box::new(LossyCounter::new(2)),
        );
        assert!(!trace.is_member(&wec_count()));
        // No YES may be issued on a non-member; MAYBE is allowed.
        assert!(three_valued_holds(&trace, &wec_count()));
    }

    #[test]
    fn sec_variant_flags_overshooting_reads_conclusively() {
        let config = counter_config(3, 50, 5, true);
        let trace = run(
            &config,
            &ThreeValuedSecFamily::new(),
            Box::new(OverCounter::new(2)),
        );
        assert!(!trace.is_member(&sec_count()));
        assert!(three_valued_holds(&trace, &sec_count()));
        assert!(trace.no_counts().iter().any(|&c| c > 0));
    }

    #[test]
    fn sec_variant_accepts_members() {
        let config = counter_config(3, 50, 6, true);
        let trace = run(
            &config,
            &ThreeValuedSecFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        assert!(trace.is_member(&sec_count()));
        assert!(three_valued_holds(&trace, &sec_count()));
    }

    #[test]
    fn family_metadata() {
        assert!(ThreeValuedWecFamily::new().name().contains("3-valued"));
        assert!(!ThreeValuedWecFamily::new().requires_views());
        assert!(ThreeValuedSecFamily::new().requires_views());
        assert_eq!(ThreeValuedWecFamily::new().spawn(2).len(), 2);
        assert_eq!(ThreeValuedSecFamily::new().spawn(2).len(), 2);
    }
}
