//! The Figure 9 monitor: predictively weakly deciding `SEC_COUNT` against Aτ
//! (Lemma 6.4).
//!
//! The algorithm extends Figure 5 with the view-based test of the
//! real-time-sensitive clause (4) of the strongly-eventual counter: each
//! process publishes its completed operations (invocation, response, view) in
//! a shared array `M`, snapshots `M` every iteration, and reports NO whenever
//! some published `read()` returned more than the number of `inc()`
//! invocations contained in its view.  By Theorem 6.1 the view of an
//! operation contains every increment that precedes it and some that are
//! concurrent with it, so a read exceeding its view's increments is evidence
//! that the sketch x∼(E) violates clause (4) — the justification the
//! predictive definitions require.

use crate::monitor::{Monitor, MonitorFamily};
use std::borrow::Cow;
use crate::monitors::wec_count::WecCountMonitor;
use crate::verdict::Verdict;
use drv_adversary::View;
use drv_lang::{Invocation, ProcId, Response};
use drv_shmem::SharedArray;

/// A published operation: `(invocation, response, view)` as written to `M`.
type PublishedOp = (Invocation, Response, View);

/// The per-process local algorithm of Figure 9.
#[derive(Debug)]
pub struct SecCountMonitor {
    wec: WecCountMonitor,
    proc: ProcId,
    published: SharedArray<Vec<PublishedOp>>,
    /// Per-entry cursors into `M`: operations up to them have been tested,
    /// and only the published suffixes are cloned on the next iteration
    /// (entries are single-writer append-only).
    cursors: Vec<usize>,
    /// Latched clause (4) evidence: published operations are never
    /// retracted, so one overshooting read stays a violation forever.
    overshoot: bool,
    /// Formatted once at construction; reporting borrows it.
    name: String,
}

impl SecCountMonitor {
    /// Creates the local monitor of process `proc` over the shared `INCS` and
    /// `M` arrays.
    #[must_use]
    pub fn new(
        proc: ProcId,
        incs: SharedArray<u64>,
        published: SharedArray<Vec<PublishedOp>>,
    ) -> Self {
        SecCountMonitor {
            wec: WecCountMonitor::new(proc, incs),
            proc,
            published,
            cursors: Vec::new(),
            overshoot: false,
            name: format!("SEC_COUNT monitor at {proc}"),
        }
    }

    /// Whether the latching safety flag of the underlying Figure 5 logic has
    /// been raised (a conclusive violation of clauses (1)–(2)).
    #[must_use]
    pub fn flagged(&self) -> bool {
        self.wec.flagged()
    }

    /// The real-time clause (4) test on the published operations: has some
    /// published read returned more than the increments in its view?
    ///
    /// Evaluated incrementally — each published operation is tested exactly
    /// once, when the delta snapshot first delivers it — and latched.
    #[must_use]
    pub fn overshooting_read_published(&self) -> bool {
        self.overshoot
    }

    fn overshoots((inv, resp, view): &PublishedOp) -> bool {
        inv.is_read()
            && resp
                .as_value()
                .is_some_and(|v| v > view.count_matching(Invocation::is_inc) as u64)
    }
}

impl Monitor for SecCountMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.proc
    }

    fn before_send(&mut self, invocation: &Invocation) {
        self.wec.before_send(invocation);
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        view: Option<&View>,
    ) {
        self.wec.after_receive(invocation, response, view);
        let view = view
            .cloned()
            .expect("the Figure 9 monitor runs against the timed adversary Aτ");
        let op = (invocation.clone(), response.clone(), view);
        self.published.update(self.proc.index(), |ops| ops.push(op));
        // O(delta): only the operations published since the last iteration
        // come back, and each is tested exactly once.
        let delta = self.published.snapshot_appended_since(&self.cursors);
        for (_, _, ops) in &delta.appended {
            if ops.iter().any(Self::overshoots) {
                self.overshoot = true;
            }
        }
        self.cursors = delta.lens;
    }

    fn report(&mut self) -> Verdict {
        // The first three clauses are those of Figure 5…
        let wec_verdict = self.wec.report();
        if wec_verdict.is_no() {
            return Verdict::No;
        }
        // …and the fourth is the view-based real-time test (in blue in the
        // paper's Figure 9).
        if self.overshooting_read_published() {
            Verdict::No
        } else {
            Verdict::Yes
        }
    }
}

/// The distributed monitor of Figure 9: `n` [`SecCountMonitor`]s sharing the
/// `INCS` and `M` arrays.
#[derive(Debug, Clone, Copy, Default)]
pub struct SecCountFamily;

impl SecCountFamily {
    /// Creates the family.
    #[must_use]
    pub fn new() -> Self {
        SecCountFamily
    }
}

impl MonitorFamily for SecCountFamily {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("Figure 9 (SEC_COUNT, predictive weak)")
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let incs = SharedArray::new(n, 0u64);
        let published = SharedArray::new(n, Vec::new());
        ProcId::all(n)
            .map(|proc| {
                Box::new(SecCountMonitor::new(proc, incs.clone(), published.clone()))
                    as Box<dyn Monitor>
            })
            .collect()
    }

    fn requires_views(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decidability::{Decider, Notion};
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, OverCounter, ReplicatedCounter};
    use drv_consistency::languages::sec_count;
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::Counter;
    use std::sync::Arc;

    fn counter_config(n: usize, iterations: usize, seed: u64) -> RunConfig {
        RunConfig::new(n, iterations)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed.wrapping_mul(17))
            .stop_mutators_after(iterations / 2)
    }

    #[test]
    fn atomic_counter_runs_satisfy_pwd() {
        for seed in [1, 4, 9] {
            let config = counter_config(3, 60, seed);
            let trace = run(
                &config,
                &SecCountFamily::new(),
                Box::new(AtomicObject::new(Counter::new())),
            );
            assert!(trace.is_member(&sec_count()));
            let decider = Decider::new(Arc::new(sec_count()));
            let evaluation = decider.evaluate(&trace, Notion::PredictiveWeak).unwrap();
            assert!(evaluation.holds, "seed {seed}: {evaluation}");
        }
    }

    #[test]
    fn replicated_counter_runs_satisfy_pwd() {
        let config = counter_config(3, 80, 21);
        let trace = run(
            &config,
            &SecCountFamily::new(),
            Box::new(ReplicatedCounter::new(2)),
        );
        assert!(trace.is_member(&sec_count()));
        let decider = Decider::new(Arc::new(sec_count()));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveWeak).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn overshooting_counter_is_rejected_by_everyone() {
        // The over-counting counter violates the real-time clause (4): reads
        // return more increments than can possibly precede them.  The
        // violating read is published in M, so *every* process keeps
        // reporting NO — the ∀p direction the PWD definition needs.
        let config = counter_config(3, 60, 13);
        let trace = run(
            &config,
            &SecCountFamily::new(),
            Box::new(OverCounter::new(2)),
        );
        assert!(!trace.is_member(&sec_count()));
        let decider = Decider::new(Arc::new(sec_count()));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveWeak).unwrap();
        assert!(evaluation.holds, "{evaluation}");
        for p in 0..3 {
            let stream = trace.verdicts(p);
            assert!(stream.no_count_from(stream.len().saturating_sub(3)) > 0);
        }
    }

    #[test]
    fn family_metadata() {
        let family = SecCountFamily::new();
        assert!(family.requires_views());
        assert!(family.name().contains("Figure 9"));
        assert_eq!(family.spawn(2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "timed adversary")]
    fn figure9_monitor_requires_views() {
        let incs = SharedArray::new(1, 0u64);
        let published = SharedArray::new(1, Vec::new());
        let mut monitor = SecCountMonitor::new(ProcId(0), incs, published);
        monitor.before_send(&Invocation::Read);
        monitor.after_receive(&Invocation::Read, &Response::Value(0), None);
    }
}
