//! Execution traces: everything one run of a distributed monitor produced.
//!
//! An [`ExecutionTrace`] records the input word x(E) (the subsequence of send
//! and receive events), the verdict stream of every process, and — when the
//! run interacted with the timed adversary Aτ — the per-operation views from
//! which the sketch x∼(E) can be reconstructed.  The decidability evaluators
//! of [`crate::decidability`] operate on traces.

use crate::verdict::VerdictStream;
use drv_adversary::{sketch_word, InvocationKey, SketchError, TimedOp};
use drv_lang::{Language, RunVerdict, Word};
use std::sync::Arc;

/// Whether a run interacted with the plain adversary A or the timed
/// adversary Aτ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdversaryMode {
    /// The plain adversary A of Sections 3–5.
    #[default]
    Plain,
    /// The timed adversary Aτ of Section 6 (responses carry views).
    Timed,
}

/// The complete record of one fair, failure-free execution of a distributed
/// monitor.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    n: usize,
    mode: AdversaryMode,
    /// Shared, immutable names: `ExecutionTrace::clone` (the decidability
    /// evaluators clone traces freely) bumps a refcount instead of
    /// reallocating two `String`s, and a sweep that produces hundreds of
    /// traces from one monitor/behaviour pair can pass a pre-shared
    /// `Arc<str>` to skip even the one copy `new` takes to build it.
    monitor_name: Arc<str>,
    behavior_name: Arc<str>,
    word: Word,
    verdicts: Vec<VerdictStream>,
    ops: Vec<TimedOp>,
    events: Vec<(InvocationKey, bool)>,
    mutator_cut: usize,
}

impl ExecutionTrace {
    /// Assembles a trace.  Used by the runtimes; tests may build traces
    /// directly to exercise the decidability evaluators in isolation.
    ///
    /// The names accept anything `Into<Arc<str>>` — `&str`, `String`, or a
    /// pre-shared `Arc<str>` (pass the latter when building traces in a
    /// loop to skip the per-trace allocation entirely).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        mode: AdversaryMode,
        monitor_name: impl Into<Arc<str>>,
        behavior_name: impl Into<Arc<str>>,
        word: Word,
        verdicts: Vec<VerdictStream>,
        ops: Vec<TimedOp>,
        events: Vec<(InvocationKey, bool)>,
    ) -> Self {
        let mutator_cut = Self::cut_after_last_mutator(&word);
        ExecutionTrace {
            n,
            mode,
            monitor_name: monitor_name.into(),
            behavior_name: behavior_name.into(),
            word,
            verdicts,
            ops,
            events,
            mutator_cut,
        }
    }

    fn cut_after_last_mutator(word: &Word) -> usize {
        word.symbols()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.invocation().is_some_and(drv_lang::Invocation::is_mutator))
            .map(|(i, _)| i + 1)
            .next_back()
            .unwrap_or(0)
    }

    /// Number of monitor processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Which adversary the run interacted with.
    #[must_use]
    pub fn mode(&self) -> AdversaryMode {
        self.mode
    }

    /// Name of the distributed monitor that produced the trace.
    #[must_use]
    pub fn monitor_name(&self) -> &str {
        &self.monitor_name
    }

    /// Name of the behaviour the adversary exhibited.
    #[must_use]
    pub fn behavior_name(&self) -> &str {
        &self.behavior_name
    }

    /// The input word x(E).
    #[must_use]
    pub fn word(&self) -> &Word {
        &self.word
    }

    /// The recorded operations (with views when the run was timed).
    #[must_use]
    pub fn ops(&self) -> &[TimedOp] {
        &self.ops
    }

    /// The global order of send (`true`) and receive (`false`) events.
    #[must_use]
    pub fn events(&self) -> &[(InvocationKey, bool)] {
        &self.events
    }

    /// The verdict stream of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ n`.
    #[must_use]
    pub fn verdicts(&self, p: usize) -> &VerdictStream {
        &self.verdicts[p]
    }

    /// All verdict streams, indexed by process.
    #[must_use]
    pub fn all_verdicts(&self) -> &[VerdictStream] {
        &self.verdicts
    }

    /// `NO(E, p)` for every process.
    #[must_use]
    pub fn no_counts(&self) -> Vec<usize> {
        self.verdicts.iter().map(VerdictStream::no_count).collect()
    }

    /// The number of completed loop iterations of the slowest process.
    #[must_use]
    pub fn min_iterations(&self) -> usize {
        self.verdicts
            .iter()
            .map(VerdictStream::len)
            .min()
            .unwrap_or(0)
    }

    /// The symbol index right after the last mutator invocation of x(E); used
    /// as the cut `|α|` when evaluating eventual languages on the finite run.
    #[must_use]
    pub fn cut(&self) -> usize {
        self.mutator_cut
    }

    /// Per-process report index from which the "tail" of the run starts,
    /// given a fraction in `[0, 1]`; the finitary reading of "finitely many
    /// NO" is "no NO from the tail onwards".
    #[must_use]
    pub fn tail_start(&self, fraction: f64) -> Vec<usize> {
        let fraction = fraction.clamp(0.0, 1.0);
        self.verdicts
            .iter()
            .map(|s| ((s.len() as f64) * fraction).floor() as usize)
            .collect()
    }

    /// Whether x(E) belongs to `language`, under the trace's cut.
    #[must_use]
    pub fn is_member(&self, language: &dyn Language) -> bool {
        language.accepts_run(&self.word, self.mutator_cut)
    }

    /// Like [`ExecutionTrace::is_member`], with an explanation.
    #[must_use]
    pub fn judge(&self, language: &dyn Language) -> RunVerdict {
        language.judge_run(&self.word, self.mutator_cut)
    }

    /// The sketch x∼(E) reconstructed from the views (Appendix B), when the
    /// run was timed.
    ///
    /// # Errors
    ///
    /// Returns an error when the recorded views are inconsistent, which
    /// indicates a bug in the runtime rather than in the monitored service.
    pub fn sketch(&self) -> Result<Option<Word>, SketchError> {
        match self.mode {
            AdversaryMode::Plain => Ok(None),
            AdversaryMode::Timed => sketch_word(&self.ops).map(Some),
        }
    }

    /// Whether the sketch x∼(E) belongs to `language` (timed runs only).
    ///
    /// # Errors
    ///
    /// Propagates [`SketchError`] from the sketch construction.
    pub fn sketch_is_member(&self, language: &dyn Language) -> Result<Option<bool>, SketchError> {
        Ok(self
            .sketch()?
            .map(|sketch| language.accepts_run(&sketch, Self::cut_after_last_mutator(&sketch))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::Verdict;
    use drv_consistency::languages::wec_count;
    use drv_lang::{Invocation, ProcId, Response, WordBuilder};

    fn make_trace(word: Word, verdicts: Vec<Vec<Verdict>>) -> ExecutionTrace {
        ExecutionTrace::new(
            verdicts.len(),
            AdversaryMode::Plain,
            "test monitor",
            "test behaviour",
            word,
            verdicts
                .into_iter()
                .map(|vs| vs.into_iter().collect())
                .collect(),
            Vec::new(),
            Vec::new(),
        )
    }

    #[test]
    fn cut_is_right_after_last_mutator() {
        let word = WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .op(ProcId(0), Invocation::Read, Response::Value(1))
            .build();
        let trace = make_trace(word, vec![vec![Verdict::Yes], vec![Verdict::Yes]]);
        // The inc invocation is at position 0, so the cut is 1.
        assert_eq!(trace.cut(), 1);
        assert!(trace.is_member(&wec_count()));
        assert!(trace.judge(&wec_count()).is_member());
    }

    #[test]
    fn read_only_word_has_cut_zero() {
        let word = WordBuilder::new()
            .op(ProcId(0), Invocation::Read, Response::Value(0))
            .build();
        let trace = make_trace(word, vec![vec![Verdict::Yes]]);
        assert_eq!(trace.cut(), 0);
    }

    #[test]
    fn accessors_expose_run_data() {
        let word = WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .build();
        let trace = make_trace(
            word,
            vec![vec![Verdict::Yes, Verdict::No], vec![Verdict::Yes]],
        );
        assert_eq!(trace.process_count(), 2);
        assert_eq!(trace.mode(), AdversaryMode::Plain);
        assert_eq!(trace.monitor_name(), "test monitor");
        assert_eq!(trace.behavior_name(), "test behaviour");
        assert_eq!(trace.word().len(), 2);
        assert_eq!(trace.no_counts(), vec![1, 0]);
        assert_eq!(trace.min_iterations(), 1);
        assert_eq!(trace.verdicts(0).len(), 2);
        assert_eq!(trace.all_verdicts().len(), 2);
        assert!(trace.ops().is_empty());
        assert!(trace.events().is_empty());
        assert_eq!(trace.tail_start(0.5), vec![1, 0]);
        assert_eq!(trace.sketch().unwrap(), None);
        assert_eq!(trace.sketch_is_member(&wec_count()).unwrap(), None);
    }
}
