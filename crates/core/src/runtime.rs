//! The deterministic execution runtime: scheduling monitors against the
//! adversary.
//!
//! The paper's adversary A controls both the content of the responses and the
//! *times* at which all events occur (Section 3).  The content half is a
//! [`drv_adversary::Behavior`]; this module is the timing half: it runs the
//! `n` local monitors of a [`MonitorFamily`] through the loop of Figure 1,
//! one *phase* at a time, in an order chosen by a [`Schedule`].
//!
//! Phases per iteration (cf. DESIGN.md, "event granularity"):
//!
//! | phase | Figure 1 | Figure 6 (timed runs only) |
//! |---|---|---|
//! | `Pick` | lines 01–02 | — |
//! | `Send` | line 03 (the x(E) invocation event) | — |
//! | `Announce` | — | lines 01–02 (write `M[i]`) |
//! | `Exchange` | — | lines 03–04 (the inner exchange with A) |
//! | `ViewSnap` | — | lines 05–07 (snapshot `M`) |
//! | `Receive` | line 04 (the x(E) response event) | — |
//! | `Report` | lines 05–06 | — |
//!
//! Under Aτ the announce and the view snapshot fall strictly *inside* the
//! operation's x(E) interval, which is what makes the sketch x∼(E) shrink
//! operations rather than stretch them (Theorem 6.1).
//!
//! Only the `Send` and `Receive` phases contribute symbols to the input word
//! x(E); they are purely local to the process (no monitor shared-memory
//! access happens in them), which is precisely the asymmetry every
//! impossibility argument of the paper exploits: swapping the order of two
//! send/receive events of different processes changes x(E) but not the local
//! states of any process.
//!
//! Schedules are deterministic: [`Schedule::RoundRobin`],
//! [`Schedule::Random`] (seeded), [`Schedule::PhaseScript`] (explicit
//! process-per-phase script, used by the proof constructions) and
//! [`Schedule::WordScript`] (realize a given word as in Claim 3.1, producing
//! *tight* executions under Aτ).

use crate::monitor::MonitorFamily;
use crate::trace::{AdversaryMode, ExecutionTrace};
use crate::verdict::VerdictStream;
use drv_adversary::{Behavior, InvocationKey, TimedAdversary, TimedOp, View};
use drv_lang::{Invocation, ObjectKind, ProcId, Response, SymbolSampler, Word};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the runtime interleaves the processes' phases.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Cycle through the processes, one phase each.
    RoundRobin,
    /// Pick the next process uniformly at random (seeded, reproducible).
    Random {
        /// Seed of the schedule's random generator.
        seed: u64,
    },
    /// Explicit script: entry `k` is the process that advances its next
    /// phase at step `k`.  Once exhausted the schedule falls back to
    /// round-robin.  Used by the impossibility constructions, which need to
    /// control the order of individual send/receive events.
    PhaseScript(Vec<usize>),
    /// Realize the given word (Claim 3.1): for every invocation symbol the
    /// issuing process runs its `Pick`(+`Announce`)+`Send` phases back to
    /// back, for every response symbol it runs `Receive`(+`ViewSnap`)+
    /// `Report`.  The run ends when the word is exhausted.  Under Aτ the
    /// resulting executions are *tight*: x∼(E) = x(E).
    WordScript(Word),
}

/// Configuration of one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    n: usize,
    iterations: usize,
    schedule: Schedule,
    mode: AdversaryMode,
    sampler: SymbolSampler,
    sampler_seed: u64,
    mutator_stop_after: Option<usize>,
}

impl RunConfig {
    /// A configuration for `n` processes running `iterations` loop iterations
    /// each, with a round-robin schedule, the plain adversary A, and a
    /// 50/50 register sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, iterations: usize) -> Self {
        assert!(n > 0, "a run needs at least one process");
        RunConfig {
            n,
            iterations,
            schedule: Schedule::RoundRobin,
            mode: AdversaryMode::Plain,
            sampler: SymbolSampler::new(ObjectKind::Register),
            sampler_seed: 0xD15C0,
            mutator_stop_after: None,
        }
    }

    /// Sets the schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Selects the timed adversary Aτ (views attached to responses).
    #[must_use]
    pub fn timed(mut self) -> Self {
        self.mode = AdversaryMode::Timed;
        self
    }

    /// Selects the plain adversary A.
    #[must_use]
    pub fn plain(mut self) -> Self {
        self.mode = AdversaryMode::Plain;
        self
    }

    /// Sets the invocation sampler used to resolve the non-deterministic pick
    /// of Figure 1 line 01 (ignored for invocations dictated by the
    /// behaviour).
    #[must_use]
    pub fn with_sampler(mut self, sampler: SymbolSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the sampler seed.
    #[must_use]
    pub fn with_sampler_seed(mut self, seed: u64) -> Self {
        self.sampler_seed = seed;
        self
    }

    /// After `iteration` iterations every process picks only observer
    /// invocations (reads/gets), so the eventual clauses of the eventual
    /// languages become testable on the finite run.
    #[must_use]
    pub fn stop_mutators_after(mut self, iteration: usize) -> Self {
        self.mutator_stop_after = Some(iteration);
        self
    }

    /// Number of processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Iterations per process.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The adversary mode.
    #[must_use]
    pub fn mode(&self) -> AdversaryMode {
        self.mode
    }
}

/// The phases of one loop iteration (see the module documentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pick,
    Send,
    Announce,
    Exchange,
    ViewSnap,
    Receive,
    Report,
}

enum RuntimeAdversary {
    Plain(Box<dyn Behavior>),
    Timed(TimedAdversary<Box<dyn Behavior>>),
}

impl RuntimeAdversary {
    fn name(&self) -> String {
        match self {
            RuntimeAdversary::Plain(b) => b.name(),
            RuntimeAdversary::Timed(t) => t.name(),
        }
    }

    fn next_invocation(&mut self, proc: ProcId) -> Option<Invocation> {
        match self {
            RuntimeAdversary::Plain(b) => b.next_invocation(proc),
            RuntimeAdversary::Timed(t) => t.inner_mut().next_invocation(proc),
        }
    }

    fn response_ready(&self, proc: ProcId) -> bool {
        match self {
            RuntimeAdversary::Plain(b) => b.response_ready(proc),
            RuntimeAdversary::Timed(t) => t.inner().response_ready(proc),
        }
    }

    fn on_invoke(&mut self, proc: ProcId, invocation: &Invocation) {
        match self {
            RuntimeAdversary::Plain(b) => b.on_invoke(proc, invocation),
            RuntimeAdversary::Timed(t) => t.forward_invoke(proc, invocation),
        }
    }

    fn on_respond(&mut self, proc: ProcId) -> Response {
        match self {
            RuntimeAdversary::Plain(b) => b.on_respond(proc),
            RuntimeAdversary::Timed(t) => t.forward_respond(proc),
        }
    }
}

struct ProcState {
    monitor: Box<dyn crate::monitor::Monitor>,
    phase: Phase,
    iteration: usize,
    invocation: Option<Invocation>,
    key: Option<InvocationKey>,
    response: Option<Response>,
    view: Option<View>,
    sampler: SymbolSampler,
    observer_sampler: SymbolSampler,
    rng: StdRng,
    next_seq: u64,
    done: bool,
}

/// Runs a [`MonitorFamily`] against a behaviour under a [`RunConfig`],
/// producing an [`ExecutionTrace`].
///
/// # Panics
///
/// Panics when the family requires views (Figure 8/9 monitors) but the
/// configuration selects the plain adversary A.
#[must_use]
pub fn run(
    config: &RunConfig,
    family: &dyn MonitorFamily,
    behavior: Box<dyn Behavior>,
) -> ExecutionTrace {
    assert!(
        !(family.requires_views() && config.mode == AdversaryMode::Plain),
        "monitor family {} requires the timed adversary Aτ; call RunConfig::timed()",
        family.name()
    );
    let n = config.n;
    let mut adversary = match config.mode {
        AdversaryMode::Plain => RuntimeAdversary::Plain(behavior),
        AdversaryMode::Timed => RuntimeAdversary::Timed(TimedAdversary::new(n, behavior)),
    };
    let behavior_name = adversary.name();
    let monitors = family.spawn(n);
    assert_eq!(monitors.len(), n, "family spawned the wrong number of monitors");

    let mut procs: Vec<ProcState> = monitors
        .into_iter()
        .enumerate()
        .map(|(i, monitor)| ProcState {
            monitor,
            phase: Phase::Pick,
            iteration: 0,
            invocation: None,
            key: None,
            response: None,
            view: None,
            sampler: config.sampler.clone(),
            observer_sampler: config.sampler.clone().with_mutator_ratio(0.0),
            rng: StdRng::seed_from_u64(config.sampler_seed.wrapping_add(i as u64)),
            next_seq: 0,
            done: config.iterations == 0,
        })
        .collect();

    let mut word = Word::new();
    let mut verdicts = vec![VerdictStream::new(); n];
    let mut ops: Vec<TimedOp> = Vec::new();
    let mut events: Vec<(InvocationKey, bool)> = Vec::new();

    let mut schedule_rng = match &config.schedule {
        Schedule::Random { seed } => Some(StdRng::seed_from_u64(*seed)),
        _ => None,
    };
    let mut rr_next = 0usize;
    let mut script_pos = 0usize;
    let mut word_pos = 0usize;

    loop {
        if procs.iter().all(|p| p.done) {
            break;
        }
        // Under a word script the run is driven symbol by symbol and ends
        // with the script.
        if let Schedule::WordScript(script) = &config.schedule {
            if word_pos >= script.len() {
                break;
            }
            let symbol = &script.symbols()[word_pos];
            word_pos += 1;
            let pid = symbol.proc.index();
            if pid >= n || procs[pid].done {
                continue;
            }
            if symbol.is_invocation() {
                // Pick + Send: advance until the invocation symbol has been
                // emitted to x(E).
                let emitted = word.len() + 1;
                while word.len() < emitted && !procs[pid].done {
                    advance(
                        pid, &mut procs, &mut adversary, config, &mut word, &mut verdicts,
                        &mut ops, &mut events,
                    );
                }
            } else {
                // (Announce + Exchange + ViewSnap +) Receive + Report.
                while procs[pid].phase != Phase::Pick || procs[pid].invocation.is_some() {
                    if procs[pid].done {
                        break;
                    }
                    advance(
                        pid, &mut procs, &mut adversary, config, &mut word, &mut verdicts,
                        &mut ops, &mut events,
                    );
                }
            }
            continue;
        }

        let candidates: Vec<usize> = (0..n).filter(|&p| !procs[p].done).collect();
        // Prefer processes whose next phase does not require the behaviour to
        // produce a response it is not ready to give.
        let responding_phase = match config.mode {
            AdversaryMode::Plain => Phase::Receive,
            AdversaryMode::Timed => Phase::Exchange,
        };
        let unblocked: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&p| {
                procs[p].phase != responding_phase || adversary.response_ready(ProcId(p))
            })
            .collect();
        let pool = if unblocked.is_empty() { &candidates } else { &unblocked };

        let pid = match &config.schedule {
            Schedule::RoundRobin => pick_round_robin(pool, &mut rr_next, n),
            Schedule::Random { .. } => {
                let rng = schedule_rng.as_mut().expect("rng for random schedule");
                pool[rng.gen_range(0..pool.len())]
            }
            Schedule::PhaseScript(script) => {
                let mut chosen = None;
                while script_pos < script.len() {
                    let cand = script[script_pos];
                    script_pos += 1;
                    if pool.contains(&cand) {
                        chosen = Some(cand);
                        break;
                    }
                }
                chosen.unwrap_or_else(|| pick_round_robin(pool, &mut rr_next, n))
            }
            Schedule::WordScript(_) => unreachable!("handled above"),
        };
        advance(
            pid, &mut procs, &mut adversary, config, &mut word, &mut verdicts, &mut ops,
            &mut events,
        );
    }

    ExecutionTrace::new(
        n,
        config.mode,
        &*family.name(),
        behavior_name,
        word,
        verdicts,
        ops,
        events,
    )
}

fn pick_round_robin(pool: &[usize], rr_next: &mut usize, n: usize) -> usize {
    for _ in 0..n {
        let p = *rr_next % n;
        *rr_next += 1;
        if pool.contains(&p) {
            return p;
        }
    }
    pool[0]
}

/// Advances process `pid` by one phase.
#[allow(clippy::too_many_arguments)]
fn advance(
    pid: usize,
    procs: &mut [ProcState],
    adversary: &mut RuntimeAdversary,
    config: &RunConfig,
    word: &mut Word,
    verdicts: &mut [VerdictStream],
    ops: &mut Vec<TimedOp>,
    events: &mut Vec<(InvocationKey, bool)>,
) {
    let proc = ProcId(pid);
    let state = &mut procs[pid];
    match state.phase {
        Phase::Pick => {
            let invocation = adversary.next_invocation(proc).unwrap_or_else(|| {
                let stop = config
                    .mutator_stop_after
                    .is_some_and(|k| state.iteration >= k);
                if stop {
                    state.observer_sampler.sample(&mut state.rng)
                } else {
                    state.sampler.sample(&mut state.rng)
                }
            });
            state.monitor.before_send(&invocation);
            state.invocation = Some(invocation);
            state.phase = Phase::Send;
        }
        Phase::Send => {
            // The x(E) invocation event: the process sends its invocation to
            // the (timed) adversary.  Under Aτ the announce and the inner
            // exchange happen strictly *after* this event.
            let invocation = state.invocation.clone().expect("picked invocation");
            let key = InvocationKey {
                proc,
                seq: state.next_seq,
            };
            state.key = Some(key);
            state.next_seq += 1;
            word.invoke(proc, invocation.clone());
            events.push((key, true));
            state.phase = match config.mode {
                AdversaryMode::Plain => {
                    adversary.on_invoke(proc, &invocation);
                    Phase::Receive
                }
                AdversaryMode::Timed => Phase::Announce,
            };
        }
        Phase::Announce => {
            // Figure 6, lines 01–02.
            let invocation = state.invocation.clone().expect("picked invocation");
            if let RuntimeAdversary::Timed(timed) = adversary {
                let announced = timed.announce(proc, &invocation);
                debug_assert_eq!(Some(announced), state.key, "announce keys track operation keys");
                state.key = Some(announced);
            }
            state.phase = Phase::Exchange;
        }
        Phase::Exchange => {
            // Figure 6, lines 03–04: the exchange with the inner black box A.
            let invocation = state.invocation.clone().expect("picked invocation");
            adversary.on_invoke(proc, &invocation);
            state.response = Some(adversary.on_respond(proc));
            state.phase = Phase::ViewSnap;
        }
        Phase::ViewSnap => {
            // Figure 6, lines 05–07.
            if let RuntimeAdversary::Timed(timed) = adversary {
                state.view = Some(timed.snapshot_view(proc));
            }
            state.phase = Phase::Receive;
        }
        Phase::Receive => {
            // The x(E) response event: the process receives the (timed)
            // adversary's response.
            let response = match config.mode {
                AdversaryMode::Plain => adversary.on_respond(proc),
                AdversaryMode::Timed => state.response.clone().expect("inner exchange completed"),
            };
            let key = state.key.expect("key assigned at send");
            word.respond(proc, response.clone());
            events.push((key, false));
            state.response = Some(response);
            state.phase = Phase::Report;
        }
        Phase::Report => {
            let invocation = state.invocation.take().expect("picked invocation");
            let response = state.response.take().expect("received response");
            let view = state.view.take();
            let key = state.key.take().expect("key assigned at send");
            state
                .monitor
                .after_receive(&invocation, &response, view.as_ref());
            let verdict = state.monitor.report();
            verdicts[pid].push(verdict, state.iteration, word.len());
            ops.push(match view {
                Some(view) => TimedOp::complete(key, invocation, response, view),
                None => TimedOp {
                    key,
                    invocation,
                    response: Some(response),
                    view: None,
                },
            });
            state.iteration += 1;
            if state.iteration >= config.iterations {
                state.done = true;
            }
            state.phase = Phase::Pick;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ConstantFamily;
    use drv_adversary::{AtomicObject, ScriptedBehavior};
    use drv_consistency::languages::lin_reg;
    use drv_lang::{Response, WordBuilder};
    use drv_spec::Register;

    #[test]
    fn round_robin_run_produces_well_formed_words() {
        let config = RunConfig::new(3, 5);
        let trace = run(
            &config,
            &ConstantFamily::always_yes(),
            Box::new(AtomicObject::new(Register::new())),
        );
        assert!(trace.word().is_well_formed_prefix());
        assert_eq!(trace.word().len(), 3 * 5 * 2);
        assert_eq!(trace.min_iterations(), 5);
        assert!(trace.is_member(&lin_reg(3)));
        for p in 0..3 {
            assert_eq!(trace.verdicts(p).no_count(), 0);
            assert_eq!(trace.verdicts(p).yes_count(), 5);
        }
    }

    #[test]
    fn random_schedules_are_reproducible() {
        let run_once = |seed| {
            let config = RunConfig::new(3, 10).with_schedule(Schedule::Random { seed });
            run(
                &config,
                &ConstantFamily::always_yes(),
                Box::new(AtomicObject::new(Register::new())),
            )
            .word()
            .clone()
        };
        assert_eq!(run_once(5).symbols(), run_once(5).symbols());
        assert_ne!(run_once(5).symbols(), run_once(6).symbols());
    }

    #[test]
    fn random_schedule_produces_concurrency() {
        let config = RunConfig::new(3, 20).with_schedule(Schedule::Random { seed: 11 });
        let trace = run(
            &config,
            &ConstantFamily::always_yes(),
            Box::new(AtomicObject::new(Register::new())),
        );
        let ops = trace.word().operation_set();
        let concurrent_pairs = ops
            .iter()
            .flat_map(|a| ops.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.id < b.id && a.concurrent_with(b))
            .count();
        assert!(concurrent_pairs > 0, "expected some concurrency");
        assert!(trace.word().is_well_formed_prefix());
    }

    #[test]
    fn timed_runs_attach_views_and_sketches() {
        let config = RunConfig::new(2, 6).timed();
        let trace = run(
            &config,
            &ConstantFamily::always_yes(),
            Box::new(AtomicObject::new(Register::new())),
        );
        assert_eq!(trace.mode(), AdversaryMode::Timed);
        assert!(trace.ops().iter().all(drv_adversary::TimedOp::is_complete));
        let sketch = trace.sketch().unwrap().expect("timed run has a sketch");
        assert!(sketch.is_well_formed_prefix());
        assert!(drv_adversary::precedence_preserved(trace.word(), &sketch));
    }

    #[test]
    fn word_script_realizes_claim_3_1() {
        // Any well-formed word is the input of some execution (Claim 3.1).
        let target = WordBuilder::new()
            .op(ProcId(0), Invocation::Write(4), Response::Ack)
            .invoke(ProcId(1), Invocation::Read)
            .respond(ProcId(1), Response::Value(9)) // deliberately incorrect value
            .op(ProcId(0), Invocation::Read, Response::Value(4))
            .build();
        let behavior = ScriptedBehavior::from_word(&target, 2);
        let config = RunConfig::new(2, 100).with_schedule(Schedule::WordScript(target.clone()));
        let trace = run(&config, &ConstantFamily::always_yes(), Box::new(behavior));
        assert_eq!(trace.word().symbols(), target.symbols());
        assert!(!trace.is_member(&lin_reg(2)));
    }

    #[test]
    fn word_script_under_timed_adversary_is_tight() {
        let target = WordBuilder::new()
            .op(ProcId(0), Invocation::Write(4), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(4))
            .build();
        let behavior = ScriptedBehavior::from_word(&target, 2);
        let config = RunConfig::new(2, 100)
            .timed()
            .with_schedule(Schedule::WordScript(target.clone()));
        let trace = run(&config, &ConstantFamily::always_yes(), Box::new(behavior));
        let sketch = trace.sketch().unwrap().expect("timed run has a sketch");
        // Tight executions: the sketch equals the input word.
        assert_eq!(sketch.symbols(), trace.word().symbols());
    }

    #[test]
    fn phase_script_controls_event_order() {
        // Two processes, one iteration each, plain mode: 4 phases per process
        // (Pick, Send, Receive, Report).  Schedule all of p0 first, then all
        // of p1: p0's operation precedes p1's.
        let script = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let config = RunConfig::new(2, 1).with_schedule(Schedule::PhaseScript(script));
        let trace = run(
            &config,
            &ConstantFamily::always_yes(),
            Box::new(AtomicObject::new(Register::new())),
        );
        let ops = trace.word().operation_set();
        assert_eq!(ops.len(), 2);
        let first = ops.iter().find(|op| op.proc == ProcId(0)).unwrap();
        let second = ops.iter().find(|op| op.proc == ProcId(1)).unwrap();
        assert!(first.precedes(second));

        // Interleave sends and receives instead: the operations overlap.
        let script = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let config = RunConfig::new(2, 1).with_schedule(Schedule::PhaseScript(script));
        let trace = run(
            &config,
            &ConstantFamily::always_yes(),
            Box::new(AtomicObject::new(Register::new())),
        );
        let ops = trace.word().operation_set();
        let first = ops.iter().find(|op| op.proc == ProcId(0)).unwrap();
        let second = ops.iter().find(|op| op.proc == ProcId(1)).unwrap();
        assert!(first.concurrent_with(second));
    }

    #[test]
    fn stop_mutators_after_freezes_the_cut() {
        let config = RunConfig::new(2, 20)
            .with_sampler(SymbolSampler::new(ObjectKind::Counter))
            .stop_mutators_after(5);
        let trace = run(
            &config,
            &ConstantFamily::always_yes(),
            Box::new(AtomicObject::new(drv_spec::Counter::new())),
        );
        // No mutator appears in the last three quarters of the word.
        let cut = trace.cut();
        assert!(cut <= trace.word().len() / 2 + 2);
        for symbol in &trace.word().symbols()[cut..] {
            if let Some(invocation) = symbol.invocation() {
                assert!(!invocation.is_mutator());
            }
        }
    }

    #[test]
    fn config_accessors() {
        let config = RunConfig::new(4, 7)
            .timed()
            .with_sampler_seed(3)
            .with_schedule(Schedule::Random { seed: 1 });
        assert_eq!(config.process_count(), 4);
        assert_eq!(config.iterations(), 7);
        assert_eq!(config.mode(), AdversaryMode::Timed);
        let config = config.plain();
        assert_eq!(config.mode(), AdversaryMode::Plain);
    }

    #[test]
    #[should_panic(expected = "requires the timed adversary")]
    fn view_requiring_family_needs_timed_mode() {
        struct NeedsViews;
        impl MonitorFamily for NeedsViews {
            fn name(&self) -> std::borrow::Cow<'_, str> {
                std::borrow::Cow::Borrowed("needs views")
            }
            fn spawn(&self, n: usize) -> Vec<Box<dyn crate::monitor::Monitor>> {
                ConstantFamily::always_yes().spawn(n)
            }
            fn requires_views(&self) -> bool {
                true
            }
        }
        let config = RunConfig::new(2, 1);
        let _ = run(
            &config,
            &NeedsViews,
            Box::new(AtomicObject::new(Register::new())),
        );
    }
}
