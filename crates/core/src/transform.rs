//! The stability transformations of Lemmas 4.1–4.3 (Figures 2–4).
//!
//! The three lemmas show that any monitor for one of the decidability notions
//! can be transformed — by wrapping only its report block (line 06) in extra
//! read/write wait-free code — into one with a stable verdict pattern:
//!
//! * **Figure 2** ([`StabilizedFamily`], Lemma 4.1): once any process would
//!   report NO, a shared `FLAG` makes *every* process report NO forever.
//!   Applied to a strongly-deciding monitor it stays strongly deciding.
//! * **Figure 3** ([`WadAllFamily`], Lemma 4.2): processes count their NO
//!   reports in a shared array `C`; a process reports NO exactly when some
//!   entry of `C` grew since its previous iteration.  Applied to a weakly-all
//!   deciding monitor, non-membership makes *every* process report NO
//!   infinitely often — the missing half of weak decidability
//!   (Definition 4.4).
//! * **Figure 4** ([`WodStableFamily`], Lemma 4.3): dual construction for
//!   weakly-one deciding monitors; a process reports YES exactly when some
//!   entry of `C` did *not* grow.
//!
//! Together with Theorem 4.1 these transformations are what justify treating
//! WAD, WOD and WD as one class.

use crate::monitor::{Monitor, MonitorFamily};
use crate::verdict::Verdict;
use drv_adversary::View;
use drv_lang::{Invocation, ProcId, Response};
use drv_shmem::{AtomicRegister, SharedArray};
use std::borrow::Cow;

/// The Figure 2 wrapper around one local monitor.
pub struct StabilizedMonitor {
    inner: Box<dyn Monitor>,
    flag: AtomicRegister<bool>,
    /// `"stabilized[{inner}]"`, formatted once at spawn.
    name: String,
}

impl Monitor for StabilizedMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.inner.proc()
    }

    fn before_send(&mut self, invocation: &Invocation) {
        self.inner.before_send(invocation);
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        view: Option<&View>,
    ) {
        self.inner.after_receive(invocation, response, view);
    }

    fn report(&mut self) -> Verdict {
        // Figure 2, modified line 06.
        let inner_verdict = self.inner.report();
        if self.flag.read() {
            return Verdict::No;
        }
        if inner_verdict.is_no() {
            self.flag.write(true);
        }
        inner_verdict
    }
}

/// The Figure 2 transformation applied to a whole family (Lemma 4.1).
#[derive(Debug, Clone)]
pub struct StabilizedFamily<F> {
    inner: F,
}

impl<F: MonitorFamily> StabilizedFamily<F> {
    /// Wraps `inner` with the shared `FLAG` construction.
    #[must_use]
    pub fn new(inner: F) -> Self {
        StabilizedFamily { inner }
    }
}

impl<F: MonitorFamily> MonitorFamily for StabilizedFamily<F> {
    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!("Figure 2 ∘ {}", self.inner.name()))
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let flag = AtomicRegister::new(false);
        self.inner
            .spawn(n)
            .into_iter()
            .map(|inner| {
                let name = format!("stabilized[{}]", inner.name());
                Box::new(StabilizedMonitor {
                    inner,
                    flag: flag.clone(),
                    name,
                }) as Box<dyn Monitor>
            })
            .collect()
    }

    fn requires_views(&self) -> bool {
        self.inner.requires_views()
    }
}

/// Whether a Figure 3/4-style wrapper propagates NO or YES.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CounterMode {
    /// Figure 3: report NO when some counter grew (Lemma 4.2).
    NoWhenGrowing,
    /// Figure 4: report YES when some counter did not grow (Lemma 4.3).
    YesWhenStable,
}

/// The Figure 3/4 wrapper around one local monitor.
pub struct CounterPropagationMonitor {
    inner: Box<dyn Monitor>,
    counters: SharedArray<u64>,
    prev: Vec<u64>,
    mode: CounterMode,
    /// `"wad-all[{inner}]"` / `"wod-stable[{inner}]"`, formatted once at
    /// spawn.
    name: String,
}

impl CounterPropagationMonitor {
    fn new(
        inner: Box<dyn Monitor>,
        counters: SharedArray<u64>,
        n: usize,
        mode: CounterMode,
    ) -> Self {
        let label = match mode {
            CounterMode::NoWhenGrowing => "wad-all",
            CounterMode::YesWhenStable => "wod-stable",
        };
        let name = format!("{label}[{}]", inner.name());
        CounterPropagationMonitor {
            inner,
            counters,
            prev: vec![0; n],
            mode,
            name,
        }
    }
}

impl Monitor for CounterPropagationMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn proc(&self) -> ProcId {
        self.inner.proc()
    }

    fn before_send(&mut self, invocation: &Invocation) {
        self.inner.before_send(invocation);
    }

    fn after_receive(
        &mut self,
        invocation: &Invocation,
        response: &Response,
        view: Option<&View>,
    ) {
        self.inner.after_receive(invocation, response, view);
    }

    fn report(&mut self) -> Verdict {
        // Figures 3 and 4, modified line 06.
        let inner_verdict = self.inner.report();
        let me = self.proc().index();
        if inner_verdict.is_no() {
            self.counters.write(me, self.prev[me] + 1);
        }
        let snapshot = self.counters.snapshot();
        let verdict = match self.mode {
            CounterMode::NoWhenGrowing => {
                if snapshot
                    .iter()
                    .zip(self.prev.iter())
                    .any(|(now, before)| now > before)
                {
                    Verdict::No
                } else {
                    Verdict::Yes
                }
            }
            CounterMode::YesWhenStable => {
                if snapshot
                    .iter()
                    .zip(self.prev.iter())
                    .any(|(now, before)| now == before)
                {
                    Verdict::Yes
                } else {
                    Verdict::No
                }
            }
        };
        self.prev = snapshot;
        verdict
    }
}

/// The Figure 3 transformation (Lemma 4.2): from weak-all to weak
/// decidability.
#[derive(Debug, Clone)]
pub struct WadAllFamily<F> {
    inner: F,
}

impl<F: MonitorFamily> WadAllFamily<F> {
    /// Wraps `inner` with the shared NO-counter construction of Figure 3.
    #[must_use]
    pub fn new(inner: F) -> Self {
        WadAllFamily { inner }
    }
}

impl<F: MonitorFamily> MonitorFamily for WadAllFamily<F> {
    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!("Figure 3 ∘ {}", self.inner.name()))
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let counters = SharedArray::new(n, 0u64);
        self.inner
            .spawn(n)
            .into_iter()
            .map(|inner| {
                Box::new(CounterPropagationMonitor::new(
                    inner,
                    counters.clone(),
                    n,
                    CounterMode::NoWhenGrowing,
                )) as Box<dyn Monitor>
            })
            .collect()
    }

    fn requires_views(&self) -> bool {
        self.inner.requires_views()
    }
}

/// The Figure 4 transformation (Lemma 4.3): from weak-one decidability to
/// eventual unanimous YES on members.
#[derive(Debug, Clone)]
pub struct WodStableFamily<F> {
    inner: F,
}

impl<F: MonitorFamily> WodStableFamily<F> {
    /// Wraps `inner` with the shared NO-counter construction of Figure 4.
    #[must_use]
    pub fn new(inner: F) -> Self {
        WodStableFamily { inner }
    }
}

impl<F: MonitorFamily> MonitorFamily for WodStableFamily<F> {
    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!("Figure 4 ∘ {}", self.inner.name()))
    }

    fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
        let counters = SharedArray::new(n, 0u64);
        self.inner
            .spawn(n)
            .into_iter()
            .map(|inner| {
                Box::new(CounterPropagationMonitor::new(
                    inner,
                    counters.clone(),
                    n,
                    CounterMode::YesWhenStable,
                )) as Box<dyn Monitor>
            })
            .collect()
    }

    fn requires_views(&self) -> bool {
        self.inner.requires_views()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decidability::{Decider, Notion};
    use crate::monitor::ConstantFamily;
    use crate::monitors::WecCountFamily;
    use crate::runtime::{run, RunConfig, Schedule};
    use drv_adversary::{AtomicObject, NonMonotoneCounter};
    use drv_consistency::languages::wec_count;
    use drv_lang::{ObjectKind, SymbolSampler};
    use drv_spec::Counter;
    use std::sync::Arc;

    fn counter_config(n: usize, iterations: usize, seed: u64) -> RunConfig {
        RunConfig::new(n, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed)
            .stop_mutators_after(iterations / 2)
    }

    #[test]
    fn figure2_latches_every_process_after_one_no() {
        // Wrap a monitor that reports NO exactly once (the non-monotone
        // counter is caught by one witness); under Figure 2 everybody ends up
        // reporting NO forever.
        let config = counter_config(3, 60, 3);
        let family = StabilizedFamily::new(WecCountFamily::new());
        assert!(family.name().contains("Figure 2"));
        let trace = run(&config, &family, Box::new(NonMonotoneCounter::new(3)));
        assert!(!trace.is_member(&wec_count()));
        for p in 0..3 {
            let stream = trace.verdicts(p);
            assert!(stream.reports().last().unwrap().verdict.is_no());
        }
    }

    #[test]
    fn figure2_preserves_silence_on_members() {
        // The always-YES family never reports NO, so its stabilization never
        // latches.
        let config = counter_config(2, 30, 5);
        let family = StabilizedFamily::new(ConstantFamily::always_yes());
        let trace = run(&config, &family, Box::new(AtomicObject::new(Counter::new())));
        assert!(trace.no_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn figure3_upgrades_wad_to_wd() {
        // The raw Figure 5 monitor only guarantees ∃p NO=∞ on non-members
        // (weak-all decidability); composing it with Figure 3 gives the full
        // weak decidability of Definition 4.4 (Lemma 4.2 + Theorem 4.1).
        let config = counter_config(2, 80, 7);
        let wrapped = WadAllFamily::new(WecCountFamily::new());
        assert!(wrapped.name().contains("Figure 3"));
        let trace = run(&config, &wrapped, Box::new(NonMonotoneCounter::new(3)));
        assert!(!trace.is_member(&wec_count()));
        let decider = Decider::new(Arc::new(wec_count()));
        let evaluation = decider.evaluate(&trace, Notion::Weak).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn figure3_keeps_members_quiescent() {
        let config = counter_config(3, 60, 9);
        let wrapped = WadAllFamily::new(WecCountFamily::new());
        let trace = run(&config, &wrapped, Box::new(AtomicObject::new(Counter::new())));
        assert!(trace.is_member(&wec_count()));
        let decider = Decider::new(Arc::new(wec_count()));
        let evaluation = decider.evaluate(&trace, Notion::Weak).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }

    #[test]
    fn figure4_stabilizes_members_to_yes() {
        // Lemma 4.3: on members, eventually every process always reports YES.
        let config = counter_config(2, 60, 11);
        let wrapped = WodStableFamily::new(WecCountFamily::new());
        assert!(wrapped.name().contains("Figure 4"));
        let trace = run(&config, &wrapped, Box::new(AtomicObject::new(Counter::new())));
        assert!(trace.is_member(&wec_count()));
        for p in 0..2 {
            let stream = trace.verdicts(p);
            assert!(stream.reports().last().unwrap().verdict.is_yes());
            assert!(stream.no_free_tail(stream.len() * 3 / 4));
        }
    }

    #[test]
    fn wrappers_propagate_view_requirements() {
        use crate::monitors::SecCountFamily;
        assert!(StabilizedFamily::new(SecCountFamily::new()).requires_views());
        assert!(WadAllFamily::new(SecCountFamily::new()).requires_views());
        assert!(WodStableFamily::new(SecCountFamily::new()).requires_views());
        assert!(!StabilizedFamily::new(WecCountFamily::new()).requires_views());
    }

    #[test]
    fn wrapper_names_and_spawns() {
        let family = WodStableFamily::new(ConstantFamily::always_no());
        let mut monitors = family.spawn(2);
        assert_eq!(monitors.len(), 2);
        assert!(monitors[0].name().contains("wod-stable"));
        // With the inner monitor always reporting NO, both counters grow every
        // iteration; after the first iteration the YES-when-stable clause
        // stops firing for the process that sees both counters move.
        monitors[0].before_send(&Invocation::Read);
        monitors[0].after_receive(&Invocation::Read, &Response::Value(0), None);
        let first = monitors[0].report();
        assert!(first.is_yes(), "the other process's counter has not moved yet");
        let stabilized = StabilizedFamily::new(ConstantFamily::always_no());
        let mut monitors = stabilized.spawn(1);
        assert!(monitors[0].name().contains("stabilized"));
        assert!(monitors[0].report().is_no());
        assert!(monitors[0].report().is_no());
    }
}
