//! A real-thread runtime: the monitors under genuine OS concurrency.
//!
//! The deterministic runtime of [`crate::runtime`] is what the experiments
//! use (the proof constructions need exact control over interleavings), but
//! the monitors themselves are ordinary wait-free shared-memory algorithms;
//! this module runs them on one OS thread per process against a behaviour
//! protected by a lock, with the interleaving chosen by the operating system
//! scheduler.  It demonstrates that nothing in the monitor implementations
//! depends on the simulator, and it is the substrate for the
//! concurrency-soundness integration tests.
//!
//! The produced [`ExecutionTrace`] is assembled from a global event log: the
//! order of send/receive events in the log is the order in which they
//! happened (each is recorded while the behaviour lock is held), so the trace
//! is a faithful input word of the real execution.

use crate::monitor::MonitorFamily;
use crate::trace::{AdversaryMode, ExecutionTrace};
use crate::verdict::VerdictStream;
use drv_adversary::{Behavior, InvocationKey, TimedAdversary, TimedOp, View};
use drv_lang::{ObjectKind, ProcId, SymbolSampler, Word};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::thread;

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    n: usize,
    iterations: usize,
    mode: AdversaryMode,
    sampler: SymbolSampler,
    sampler_seed: u64,
    mutator_stop_after: Option<usize>,
}

impl ThreadedConfig {
    /// A configuration for `n` threads running `iterations` iterations each,
    /// against the plain adversary, with a register sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, iterations: usize) -> Self {
        assert!(n > 0, "a run needs at least one process");
        ThreadedConfig {
            n,
            iterations,
            mode: AdversaryMode::Plain,
            sampler: SymbolSampler::new(ObjectKind::Register),
            sampler_seed: 0xBEEF,
            mutator_stop_after: None,
        }
    }

    /// Selects the timed adversary Aτ.
    #[must_use]
    pub fn timed(mut self) -> Self {
        self.mode = AdversaryMode::Timed;
        self
    }

    /// Sets the invocation sampler.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SymbolSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the sampler seed.
    #[must_use]
    pub fn with_sampler_seed(mut self, seed: u64) -> Self {
        self.sampler_seed = seed;
        self
    }

    /// Stops picking mutator invocations after the given iteration.
    #[must_use]
    pub fn stop_mutators_after(mut self, iteration: usize) -> Self {
        self.mutator_stop_after = Some(iteration);
        self
    }
}

/// A worker thread of a parallel run panicked.
///
/// Joining a panicked `std::thread` hands back only an opaque payload; this
/// type pins down *which* worker died and what it said, so a crash in a
/// 64-worker engine or an `n`-process threaded run is attributable.  Shared
/// by [`run_threaded`] (where `worker` is the monitor process index) and the
/// `drv-engine` checker pool (where it is the pool worker index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the worker that panicked (process index here, pool worker
    /// index in `drv-engine`).
    pub worker: usize,
    /// What kind of worker it was, e.g. `"monitor process"`.
    pub role: &'static str,
    /// The panic payload, downcast to a string when possible.
    pub message: String,
}

impl WorkerPanic {
    /// Builds the error from a `JoinHandle::join` error payload.
    #[must_use]
    pub fn from_payload(
        role: &'static str,
        worker: usize,
        payload: Box<dyn std::any::Any + Send>,
    ) -> Self {
        let message = if let Some(text) = payload.downcast_ref::<&'static str>() {
            (*text).to_string()
        } else if let Some(text) = payload.downcast_ref::<String>() {
            text.clone()
        } else {
            "non-string panic payload".to_string()
        };
        WorkerPanic {
            worker,
            role,
            message,
        }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} panicked: {}",
            self.role, self.worker, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

enum SharedAdversary {
    Plain(Box<dyn Behavior>),
    Timed(TimedAdversary<Box<dyn Behavior>>),
}

struct EventLog {
    word: Word,
    events: Vec<(InvocationKey, bool)>,
    ops: Vec<TimedOp>,
}

/// Runs `family` against `behavior` on real OS threads.
///
/// # Panics
///
/// Panics when the family requires views but the configuration selects the
/// plain adversary, or when a worker thread panics — the panic message is a
/// [`WorkerPanic`] rendering naming the panicking process index.  Use
/// [`try_run_threaded`] to handle worker panics as values instead.
#[must_use]
pub fn run_threaded(
    config: &ThreadedConfig,
    family: &dyn MonitorFamily,
    behavior: Box<dyn Behavior>,
) -> ExecutionTrace {
    match try_run_threaded(config, family, behavior) {
        Ok(trace) => trace,
        Err(panic) => panic!("{panic}"),
    }
}

/// [`run_threaded`], with worker panics surfaced as a [`WorkerPanic`] naming
/// the panicking process instead of an opaque join failure.
///
/// # Panics
///
/// Panics when the family requires views but the configuration selects the
/// plain adversary (a configuration error, not a worker failure).
pub fn try_run_threaded(
    config: &ThreadedConfig,
    family: &dyn MonitorFamily,
    behavior: Box<dyn Behavior>,
) -> Result<ExecutionTrace, WorkerPanic> {
    assert!(
        !(family.requires_views() && config.mode == AdversaryMode::Plain),
        "monitor family {} requires the timed adversary Aτ; call ThreadedConfig::timed()",
        family.name()
    );
    let n = config.n;
    let adversary = Arc::new(Mutex::new(match config.mode {
        AdversaryMode::Plain => SharedAdversary::Plain(behavior),
        AdversaryMode::Timed => SharedAdversary::Timed(TimedAdversary::new(n, behavior)),
    }));
    let behavior_name = match &*adversary.lock() {
        SharedAdversary::Plain(b) => b.name(),
        SharedAdversary::Timed(t) => t.name(),
    };
    let log = Arc::new(Mutex::new(EventLog {
        word: Word::new(),
        events: Vec::new(),
        ops: Vec::new(),
    }));

    let monitors = family.spawn(n);
    assert_eq!(monitors.len(), n, "family spawned the wrong number of monitors");

    let mut handles = Vec::with_capacity(n);
    for (pid, mut monitor) in monitors.into_iter().enumerate() {
        let adversary = Arc::clone(&adversary);
        let log = Arc::clone(&log);
        let mut sampler = config.sampler.clone();
        let mut observer_sampler = config.sampler.clone().with_mutator_ratio(0.0);
        let mut rng = StdRng::seed_from_u64(config.sampler_seed.wrapping_add(pid as u64));
        let iterations = config.iterations;
        let mutator_stop_after = config.mutator_stop_after;
        let mode = config.mode;
        handles.push(thread::spawn(move || {
            let proc = ProcId(pid);
            let mut verdicts = VerdictStream::new();
            for iteration in 0..iterations {
                // Figure 1, lines 01–02.
                let invocation = {
                    let mut guard = adversary.lock();
                    let dictated = match &mut *guard {
                        SharedAdversary::Plain(b) => b.next_invocation(proc),
                        SharedAdversary::Timed(t) => t.inner_mut().next_invocation(proc),
                    };
                    dictated.unwrap_or_else(|| {
                        if mutator_stop_after.is_some_and(|k| iteration >= k) {
                            observer_sampler.sample(&mut rng)
                        } else {
                            sampler.sample(&mut rng)
                        }
                    })
                };
                monitor.before_send(&invocation);

                // Figure 1, line 03: the x(E) invocation event is the send to
                // the (timed) adversary, logged *before* the Figure 6 code
                // runs so that announce and snapshot fall inside the
                // operation's interval (Theorem 6.1).
                let key = InvocationKey {
                    proc,
                    seq: iteration as u64,
                };
                {
                    let mut log = log.lock();
                    log.word.invoke(proc, invocation.clone());
                    log.events.push((key, true));
                }

                // Figure 6, lines 01–03: announce and forward to the inner A.
                {
                    let mut guard = adversary.lock();
                    match &mut *guard {
                        SharedAdversary::Plain(b) => b.on_invoke(proc, &invocation),
                        SharedAdversary::Timed(t) => {
                            let announced = t.announce(proc, &invocation);
                            debug_assert_eq!(announced, key);
                            t.forward_invoke(proc, &invocation);
                        }
                    }
                }

                thread::yield_now();

                // Figure 6, lines 04–07 and Figure 1, line 04: obtain the
                // inner response, snapshot the announce array, and log the
                // x(E) response event.
                let (response, view): (_, Option<View>) = {
                    let mut guard = adversary.lock();
                    let (response, view) = match &mut *guard {
                        SharedAdversary::Plain(b) => (b.on_respond(proc), None),
                        SharedAdversary::Timed(t) => {
                            let response = t.forward_respond(proc);
                            let view = t.snapshot_view(proc);
                            (response, Some(view))
                        }
                    };
                    let mut log = log.lock();
                    log.word.respond(proc, response.clone());
                    log.events.push((key, false));
                    (response, view)
                };
                debug_assert_eq!(view.is_some(), mode == AdversaryMode::Timed);

                // Figure 1, lines 05–06.
                monitor.after_receive(&invocation, &response, view.as_ref());
                let verdict = monitor.report();
                let word_len = {
                    let mut log = log.lock();
                    log.ops.push(match view.clone() {
                        Some(view) => {
                            TimedOp::complete(key, invocation.clone(), response.clone(), view)
                        }
                        None => TimedOp {
                            key,
                            invocation: invocation.clone(),
                            response: Some(response.clone()),
                            view: None,
                        },
                    });
                    log.word.len()
                };
                verdicts.push(verdict, iteration, word_len);
            }
            verdicts
        }));
    }

    let mut all_verdicts = Vec::with_capacity(n);
    let mut first_panic: Option<WorkerPanic> = None;
    for (pid, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(verdicts) => all_verdicts.push(verdicts),
            Err(payload) => {
                // Join the remaining workers before reporting, so no thread
                // outlives the call; the lowest process index wins.
                let panic = WorkerPanic::from_payload("monitor process", pid, payload);
                first_panic.get_or_insert(panic);
            }
        }
    }
    if let Some(panic) = first_panic {
        return Err(panic);
    }
    let log = Arc::try_unwrap(log)
        .map(Mutex::into_inner)
        .unwrap_or_else(|arc| {
            let guard = arc.lock();
            EventLog {
                word: guard.word.clone(),
                events: guard.events.clone(),
                ops: guard.ops.clone(),
            }
        });
    Ok(ExecutionTrace::new(
        n,
        config.mode,
        &*family.name(),
        behavior_name,
        log.word,
        all_verdicts,
        log.ops,
        log.events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitors::{SecCountFamily, WecCountFamily};
    use drv_adversary::AtomicObject;
    use drv_consistency::{check_sec_realtime, check_wec_safety};
    use drv_spec::Counter;

    // Note: the threaded runtime has no fairness guarantees (per-thread
    // progress can be arbitrarily skewed by the OS scheduler), so these
    // tests assert only schedule-independent properties: well-formedness,
    // the safety clauses of the counter languages, and Theorem 6.1(1).
    // Quiescence/decidability evaluations are exercised by the deterministic
    // runtime, where the schedule is controlled.

    #[test]
    fn threaded_runs_produce_well_formed_words() {
        let config = ThreadedConfig::new(3, 30)
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .stop_mutators_after(15);
        let trace = run_threaded(
            &config,
            &WecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        assert!(trace.word().is_well_formed_prefix());
        assert_eq!(trace.word().len(), 3 * 30 * 2);
        assert_eq!(trace.min_iterations(), 30);
        // The safety clauses of the weakly-eventual counter hold on every
        // interleaving of a correct atomic counter.
        assert!(check_wec_safety(trace.word()).is_ok());
        // A latching (conclusive) safety flag would make the final verdict
        // NO forever; a correct service never triggers it, so at least the
        // final report of some process is not a latched NO.  (The
        // inconclusive convergence clause may fire at any time, so nothing
        // stronger is schedule-independent.)
        assert!(trace.all_verdicts().iter().all(|s| s.len() == 30));
    }

    #[test]
    fn threaded_timed_runs_attach_consistent_views() {
        let config = ThreadedConfig::new(3, 20)
            .timed()
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .stop_mutators_after(10);
        let trace = run_threaded(
            &config,
            &SecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        // The real-time clause (4) holds on every interleaving of a correct
        // atomic counter, and the sketch only ever shrinks operations.
        assert!(check_wec_safety(trace.word()).is_ok());
        assert!(check_sec_realtime(trace.word()).is_ok());
        let sketch = trace.sketch().unwrap().expect("timed run has a sketch");
        assert!(sketch.is_well_formed_prefix());
        assert!(drv_adversary::precedence_preserved(trace.word(), &sketch));
    }

    #[test]
    #[should_panic(expected = "requires the timed adversary")]
    fn threaded_runtime_checks_view_requirements() {
        let config = ThreadedConfig::new(2, 5);
        let _ = run_threaded(
            &config,
            &SecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
    }

    #[test]
    fn worker_panics_surface_the_process_index() {
        use crate::monitor::Monitor;
        use crate::verdict::Verdict;
        use drv_lang::{Invocation, Response};
        use std::borrow::Cow;

        // A family whose process 1 panics on its third report.
        struct FaultyMonitor {
            proc: ProcId,
            reports: usize,
        }
        impl Monitor for FaultyMonitor {
            fn name(&self) -> Cow<'_, str> {
                Cow::Borrowed("faulty")
            }
            fn proc(&self) -> ProcId {
                self.proc
            }
            fn before_send(&mut self, _invocation: &Invocation) {}
            fn after_receive(
                &mut self,
                _invocation: &Invocation,
                _response: &Response,
                _view: Option<&drv_adversary::View>,
            ) {
            }
            fn report(&mut self) -> Verdict {
                self.reports += 1;
                assert!(
                    !(self.proc == ProcId(1) && self.reports >= 3),
                    "injected fault"
                );
                Verdict::Yes
            }
        }
        struct FaultyFamily;
        impl MonitorFamily for FaultyFamily {
            fn name(&self) -> Cow<'_, str> {
                Cow::Borrowed("faulty family")
            }
            fn spawn(&self, n: usize) -> Vec<Box<dyn Monitor>> {
                ProcId::all(n)
                    .map(|proc| Box::new(FaultyMonitor { proc, reports: 0 }) as Box<dyn Monitor>)
                    .collect()
            }
        }

        let config = ThreadedConfig::new(3, 5)
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4));
        // Silence the worker's default panic-hook backtrace for this test.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = try_run_threaded(
            &config,
            &FaultyFamily,
            Box::new(AtomicObject::new(Counter::new())),
        );
        std::panic::set_hook(hook);
        let panic = result.expect_err("process 1 must panic");
        assert_eq!(panic.worker, 1, "{panic}");
        assert_eq!(panic.role, "monitor process");
        assert!(panic.message.contains("injected fault"), "{panic}");
        assert!(panic.to_string().contains("monitor process 1"), "{panic}");
    }

    #[test]
    fn config_builders() {
        let config = ThreadedConfig::new(2, 5)
            .with_sampler_seed(9)
            .with_sampler(SymbolSampler::new(ObjectKind::Ledger))
            .stop_mutators_after(2);
        assert_eq!(config.n, 2);
        assert_eq!(config.iterations, 5);
    }
}
