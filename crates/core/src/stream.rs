//! The streaming per-object monitor surface consumed by `drv-engine`.
//!
//! A monitoring engine ingests one interleaved stream of invocation/response
//! symbols per [`ObjectId`] and needs, for every object, a self-contained
//! state machine that consumes the object's symbols in order and yields a
//! verdict after each one.  This module defines that surface
//! ([`ObjectMonitor`] / [`ObjectMonitorFactory`]) and provides the two
//! canonical implementations:
//!
//! * [`CheckerMonitorFactory`] — a per-object [`IncrementalChecker`]: the
//!   object's language is `LIN_O` or `SC_O` for a sequential spec, checked
//!   directly (optionally with the parallel Wing–Gong fallback).  This is the
//!   reference the engine's differential suite compares against.
//! * [`FamilyMonitorFactory`] — the adapter that lets any of the paper's
//!   [`MonitorFamily`] algorithms (Figure 5 `WEC_COUNT`, Figure 8 `V_O`,
//!   Figure 9 `SEC_COUNT`, …) run over an engine stream *unchanged*: for each
//!   object it spawns the family's `n` local monitors and replays the
//!   object's symbols as Figure 1 iterations, synthesizing the timed
//!   adversary Aτ's views (announce on invocation, snapshot on response) for
//!   view-requiring families.
//!
//! Verdict convention: an [`ObjectMonitor`] reports after *every* symbol;
//! before the first completed operation the verdict is whatever the
//! underlying algorithm reports on an empty history ([`Verdict::Maybe`]`(0)`
//! for family adapters that have not reported yet).

use crate::monitor::MonitorFamily;
use crate::verdict::Verdict;
use drv_adversary::{InvocationKey, View};
use drv_consistency::{CheckOutcome, CheckerConfig, CheckerStats, IncrementalChecker};
use drv_lang::{Action, Invocation, ObjectId, ProcId, Symbol};
use drv_spec::SequentialSpec;
use std::borrow::Cow;
use std::sync::Arc;

/// A self-contained state machine monitoring one object's symbol stream.
///
/// Implementations are `Send` (engine shards migrate between worker
/// threads) and must be deterministic: the verdict sequence is a pure
/// function of the symbol sequence.
pub trait ObjectMonitor: Send {
    /// Human-readable name (for reports; allocation-free like
    /// [`crate::Monitor::name`]).
    fn name(&self) -> Cow<'_, str>;

    /// Consumes the next symbol of the object's stream, returning the
    /// verdict for the stream consumed so far.
    fn on_symbol(&mut self, symbol: &Symbol) -> Verdict;

    /// Consumes a run of consecutive symbols of the object's stream,
    /// appending exactly one verdict per symbol to `verdicts` — the batched
    /// event path ([`EventBatch`](drv_lang::EventBatch) runs land here).
    ///
    /// The appended verdicts MUST be bit-identical to calling
    /// [`ObjectMonitor::on_symbol`] once per symbol (the engine's
    /// differential suite holds implementations to it); the default does
    /// exactly that.  Override to amortize per-call work —
    /// [`CheckerObjectMonitor`] forwards the whole run to
    /// [`IncrementalChecker::feed_batch`].
    fn on_batch(&mut self, symbols: &[Symbol], verdicts: &mut Vec<Verdict>) {
        verdicts.reserve(symbols.len());
        for symbol in symbols {
            verdicts.push(self.on_symbol(symbol));
        }
    }

    /// Called exactly once when the engine retires the monitor — on
    /// explicit eviction, idle-TTL expiry, or `finish()` — after the last
    /// symbol it will ever see.  Returning `Some(verdict)` appends one
    /// closing verdict to the object's stream (e.g. a monitor that buffers
    /// state may settle pending operations here); the default `None` keeps
    /// the stream exactly one-verdict-per-symbol, which is what keeps
    /// engine streams bit-identical to a sequential per-object run.
    /// Closing verdicts reach verdict subscriptions losslessly on the
    /// explicit-evict path, best-effort (counted as missed when the
    /// channel is full) from TTL sweeps and `finish()`.
    fn finalize(&mut self) -> Option<Verdict> {
        None
    }

    /// The underlying consistency-checker counters, when the monitor is
    /// backed by an [`IncrementalChecker`] (`None` for family adapters).
    fn checker_stats(&self) -> Option<CheckerStats> {
        None
    }

    /// Serializes the monitor's resumable state for a durable checkpoint,
    /// or `None` when the monitor does not support checkpointing (the
    /// default — such objects are recovered by full journal replay
    /// instead).  A supporting implementation must round-trip through
    /// [`ObjectMonitor::restore`] such that the restored monitor's verdicts
    /// on any symbol suffix are bit-identical to this monitor's.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state serialized by [`ObjectMonitor::checkpoint`] into a
    /// freshly created monitor of the same factory.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Unsupported`] (the default) when the monitor cannot
    /// checkpoint; [`RestoreError::Invalid`] when the bytes are rejected.
    /// On error the monitor must be discarded, not fed.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let _ = bytes;
        Err(RestoreError::Unsupported)
    }
}

/// Why [`ObjectMonitor::restore`] refused a checkpoint payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The monitor kind does not support checkpointing at all.
    Unsupported,
    /// The payload was rejected (corrupt, wrong version, or produced by a
    /// monitor with a different spec/config); the message carries the
    /// underlying decoder's diagnosis.
    Invalid(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Unsupported => write!(f, "monitor does not support checkpoints"),
            RestoreError::Invalid(why) => write!(f, "checkpoint rejected: {why}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Creates the per-object monitors of an engine, one per [`ObjectId`] on
/// first sight of the object's traffic.
pub trait ObjectMonitorFactory: Send + Sync {
    /// Name of the monitor kind this factory produces.
    fn name(&self) -> Cow<'_, str>;

    /// Creates the monitor for `object`.
    fn create(&self, object: ObjectId) -> Box<dyn ObjectMonitor>;
}

/// An [`ObjectMonitor`] that feeds the object's stream straight into an
/// [`IncrementalChecker`] — the engine-side equivalent of checking `LIN_O` /
/// `SC_O` per object.
pub struct CheckerObjectMonitor<S: SequentialSpec> {
    checker: IncrementalChecker<S>,
    name: String,
    /// Reusable scratch for [`ObjectMonitor::on_batch`] outcomes.
    outcomes: Vec<CheckOutcome>,
}

impl<S: SequentialSpec> CheckerObjectMonitor<S> {
    /// Wraps a fresh checker for one object.
    #[must_use]
    pub fn new(object: ObjectId, checker: IncrementalChecker<S>, criterion: &str) -> Self {
        CheckerObjectMonitor {
            name: format!("{criterion} checker for {object}"),
            checker,
            outcomes: Vec::new(),
        }
    }

    /// The wrapped checker's fast-path/fallback counters.
    #[must_use]
    pub fn stats(&self) -> CheckerStats {
        self.checker.stats()
    }
}

impl<S: SequentialSpec> ObjectMonitor for CheckerObjectMonitor<S> {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn on_symbol(&mut self, symbol: &Symbol) -> Verdict {
        self.checker.push_symbol(symbol);
        Verdict::from(self.checker.check_outcome())
    }

    fn on_batch(&mut self, symbols: &[Symbol], verdicts: &mut Vec<Verdict>) {
        self.outcomes.clear();
        self.checker.feed_batch(symbols, &mut self.outcomes);
        verdicts.extend(self.outcomes.iter().map(|&outcome| Verdict::from(outcome)));
    }

    fn checker_stats(&self) -> Option<CheckerStats> {
        Some(self.checker.stats())
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.checker.checkpoint_bytes())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.checker
            .restore_bytes(bytes)
            .map_err(|err| RestoreError::Invalid(err.to_string()))
    }
}

/// Factory for [`CheckerObjectMonitor`]s: every object gets its own
/// long-lived incremental checker of the configured criterion.
#[derive(Debug, Clone)]
pub struct CheckerMonitorFactory<S> {
    spec: S,
    config: CheckerConfig,
    processes: usize,
    parallel_threads: usize,
    label: &'static str,
}

impl<S: SequentialSpec + Clone> CheckerMonitorFactory<S> {
    /// A linearizability factory for objects speaking `spec`'s alphabet,
    /// with `processes` client processes per object.
    #[must_use]
    pub fn linearizability(spec: S, processes: usize) -> Self {
        CheckerMonitorFactory {
            spec,
            config: CheckerConfig::linearizability(),
            processes,
            parallel_threads: 1,
            label: "LIN",
        }
    }

    /// A sequential-consistency factory.
    #[must_use]
    pub fn sequential_consistency(spec: S, processes: usize) -> Self {
        CheckerMonitorFactory {
            spec,
            config: CheckerConfig::sequential_consistency(),
            processes,
            parallel_threads: 1,
            label: "SC",
        }
    }

    /// Overrides the per-check node budget.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.config = self.config.with_max_states(max_states);
        self
    }

    /// Enables the parallel Wing–Gong fallback inside every spawned checker
    /// (see [`IncrementalChecker::with_parallel_fallback`]).
    #[must_use]
    pub fn with_parallel_fallback(mut self, threads: usize) -> Self {
        self.parallel_threads = threads.max(1);
        self
    }
}

impl<S: SequentialSpec + Clone + 'static> ObjectMonitorFactory for CheckerMonitorFactory<S> {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(self.label)
    }

    fn create(&self, object: ObjectId) -> Box<dyn ObjectMonitor> {
        let checker = IncrementalChecker::new(self.spec.clone(), self.config, self.processes)
            .with_parallel_fallback(self.parallel_threads);
        Box::new(CheckerObjectMonitor::new(object, checker, self.label))
    }
}

/// An [`ObjectMonitorFactory`] that picks a delegate factory per object —
/// the way mixed fleets are assembled (e.g. even object ids checked for
/// linearizability, odd for sequential consistency, as the engine bench and
/// differential suite do).
pub struct RoutingMonitorFactory {
    route: Box<dyn Fn(ObjectId) -> Arc<dyn ObjectMonitorFactory> + Send + Sync>,
    name: String,
}

impl RoutingMonitorFactory {
    /// A factory that delegates each object's monitor creation to whatever
    /// factory `route` returns for it.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        route: impl Fn(ObjectId) -> Arc<dyn ObjectMonitorFactory> + Send + Sync + 'static,
    ) -> Self {
        RoutingMonitorFactory {
            route: Box::new(route),
            name: name.into(),
        }
    }
}

impl ObjectMonitorFactory for RoutingMonitorFactory {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn create(&self, object: ObjectId) -> Box<dyn ObjectMonitor> {
        (self.route)(object).create(object)
    }
}

/// The `MonitorFamily`-to-engine adapter: runs one instance of a distributed
/// monitor family per object, replaying the object's stream as Figure 1
/// iterations.
///
/// For view-requiring families the adapter plays the timed adversary Aτ for
/// the object's stream: every invocation is announced into a growing
/// [`View`] and every response snapshots it, which is exactly what
/// `TimedAdversary` does one object at a time.  The reported verdict after a
/// response is the report of the local monitor at the completing process —
/// each process speaks for its own Figure 1 loop.
pub struct FamilyObjectMonitor {
    monitors: Vec<Box<dyn crate::Monitor>>,
    requires_views: bool,
    view: View,
    /// Per-process pending invocation (Figure 1 allows one open operation
    /// per process).
    pending: Vec<Option<Invocation>>,
    /// Per-process iteration counters for announce keys.
    seqs: Vec<u64>,
    last: Option<Verdict>,
    name: String,
}

impl FamilyObjectMonitor {
    /// Spawns `family`'s local monitors for one object with `n` processes.
    #[must_use]
    pub fn new(object: ObjectId, family: &dyn MonitorFamily, n: usize) -> Self {
        FamilyObjectMonitor {
            monitors: family.spawn(n),
            requires_views: family.requires_views(),
            view: View::new(),
            pending: vec![None; n],
            seqs: vec![0; n],
            last: None,
            name: format!("{} on {object}", family.name()),
        }
    }
}

impl ObjectMonitor for FamilyObjectMonitor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }

    fn on_symbol(&mut self, symbol: &Symbol) -> Verdict {
        let p = symbol.proc.0;
        assert!(
            p < self.monitors.len(),
            "symbol for {} but the family was spawned for {} processes",
            symbol.proc,
            self.monitors.len()
        );
        match &symbol.action {
            Action::Invoke(invocation) => {
                if self.pending[p].is_some() {
                    // Ill-formed at this point; skip, as history builders do.
                    return self.last.unwrap_or(Verdict::Maybe(0));
                }
                if self.requires_views {
                    // Figure 6, line 01: announce before forwarding.
                    let key = InvocationKey {
                        proc: ProcId(p),
                        seq: self.seqs[p],
                    };
                    self.view.insert(key, invocation.clone());
                }
                self.monitors[p].before_send(invocation);
                self.pending[p] = Some(invocation.clone());
            }
            Action::Respond(response) => {
                let Some(invocation) = self.pending[p].take() else {
                    return self.last.unwrap_or(Verdict::Maybe(0));
                };
                self.seqs[p] += 1;
                // Figure 6, lines 04–07: the response snapshots the announce
                // array.
                let view = self.requires_views.then(|| self.view.clone());
                self.monitors[p].after_receive(&invocation, response, view.as_ref());
                self.last = Some(self.monitors[p].report());
            }
        }
        self.last.unwrap_or(Verdict::Maybe(0))
    }
}

/// Factory for [`FamilyObjectMonitor`]s: one family instance (with fresh
/// shared memory) per object.
#[derive(Clone)]
pub struct FamilyMonitorFactory {
    family: Arc<dyn MonitorFamily + Send + Sync>,
    processes: usize,
}

impl FamilyMonitorFactory {
    /// Adapts `family` for engine streams whose objects each serve
    /// `processes` client processes.
    #[must_use]
    pub fn new(family: Arc<dyn MonitorFamily + Send + Sync>, processes: usize) -> Self {
        FamilyMonitorFactory { family, processes }
    }
}

impl ObjectMonitorFactory for FamilyMonitorFactory {
    fn name(&self) -> Cow<'_, str> {
        self.family.name()
    }

    fn create(&self, object: ObjectId) -> Box<dyn ObjectMonitor> {
        Box::new(FamilyObjectMonitor::new(
            object,
            self.family.as_ref(),
            self.processes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitors::{PredictiveFamily, SecCountFamily, WecCountFamily};
    use drv_lang::{Response, Word, WordBuilder};
    use drv_spec::Register;

    fn obj(i: u64) -> ObjectId {
        ObjectId(i)
    }

    fn register_word() -> Word {
        WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .op(ProcId(0), Invocation::Write(2), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(2))
            .build()
    }

    #[test]
    fn checker_monitor_tracks_the_incremental_checker() {
        let factory = CheckerMonitorFactory::linearizability(Register::new(), 2);
        let mut monitor = factory.create(obj(7));
        assert!(monitor.name().contains("obj#7"));
        let mut reference =
            IncrementalChecker::new(Register::new(), CheckerConfig::linearizability(), 2);
        for symbol in register_word().symbols() {
            let verdict = monitor.on_symbol(symbol);
            reference.push_symbol(symbol);
            assert_eq!(verdict, Verdict::from(reference.check_outcome()));
        }
        assert_eq!(
            monitor.checker_stats().unwrap().checks,
            reference.stats().checks
        );
    }

    #[test]
    fn on_batch_matches_per_symbol_feeding() {
        let word = register_word();
        let factories: Vec<Box<dyn ObjectMonitorFactory>> = vec![
            Box::new(CheckerMonitorFactory::linearizability(Register::new(), 2)),
            Box::new(CheckerMonitorFactory::sequential_consistency(Register::new(), 2)),
            Box::new(FamilyMonitorFactory::new(
                Arc::new(PredictiveFamily::linearizable(Register::new())),
                2,
            )),
        ];
        for factory in factories {
            let mut by_symbol = factory.create(obj(5));
            let expected: Vec<Verdict> = word
                .symbols()
                .iter()
                .map(|symbol| by_symbol.on_symbol(symbol))
                .collect();
            for split in 0..=word.symbols().len() {
                let mut by_batch = factory.create(obj(5));
                let mut verdicts = Vec::new();
                by_batch.on_batch(&word.symbols()[..split], &mut verdicts);
                by_batch.on_batch(&word.symbols()[split..], &mut verdicts);
                assert_eq!(verdicts, expected, "{} split {split}", factory.name());
            }
        }
    }

    #[test]
    fn checker_monitor_flags_stale_reads() {
        let factory = CheckerMonitorFactory::linearizability(Register::new(), 2)
            .with_max_states(10_000)
            .with_parallel_fallback(2);
        let mut monitor = factory.create(obj(0));
        let word = WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(0))
            .build();
        let mut verdicts = Vec::new();
        for symbol in word.symbols() {
            verdicts.push(monitor.on_symbol(symbol));
        }
        assert_eq!(verdicts.last(), Some(&Verdict::No));
    }

    #[test]
    fn routing_factory_dispatches_by_object() {
        let lin = Arc::new(CheckerMonitorFactory::linearizability(Register::new(), 2))
            as Arc<dyn ObjectMonitorFactory>;
        let sc = Arc::new(CheckerMonitorFactory::sequential_consistency(Register::new(), 2))
            as Arc<dyn ObjectMonitorFactory>;
        let routed = RoutingMonitorFactory::new("mixed LIN/SC", move |object: ObjectId| {
            if object.0.is_multiple_of(2) {
                Arc::clone(&lin)
            } else {
                Arc::clone(&sc)
            }
        });
        assert_eq!(routed.name(), "mixed LIN/SC");
        assert!(routed.create(obj(0)).name().contains("LIN"));
        assert!(routed.create(obj(1)).name().contains("SC"));
    }

    #[test]
    fn family_adapter_runs_figure8_unchanged() {
        // The Figure 8 family (view-requiring) over a clean register stream:
        // every completed operation reports YES.
        let factory = FamilyMonitorFactory::new(
            Arc::new(PredictiveFamily::linearizable(Register::new())),
            2,
        );
        assert!(factory.name().contains("Figure 8"));
        let mut monitor = factory.create(obj(3));
        let mut last = Verdict::Maybe(0);
        for symbol in register_word().symbols() {
            last = monitor.on_symbol(symbol);
        }
        assert_eq!(last, Verdict::Yes);
        assert!(monitor.checker_stats().is_none());
    }

    #[test]
    fn family_adapter_reports_maybe_before_any_operation_completes() {
        let factory = FamilyMonitorFactory::new(Arc::new(WecCountFamily::new()), 2);
        let mut monitor = factory.create(obj(1));
        let verdict = monitor.on_symbol(&Symbol {
            proc: ProcId(0),
            action: Action::Invoke(Invocation::Inc),
        });
        assert_eq!(verdict, Verdict::Maybe(0));
    }

    #[test]
    fn family_adapter_feeds_counter_families() {
        // WEC_COUNT and SEC_COUNT over a correct counter stream stay YES on
        // the tail (the families plug in unchanged).
        let word = WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .op(ProcId(0), Invocation::Read, Response::Value(1))
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .build();
        for factory in [
            FamilyMonitorFactory::new(Arc::new(WecCountFamily::new()), 2),
            FamilyMonitorFactory::new(Arc::new(SecCountFamily::new()), 2),
        ] {
            let mut monitor = factory.create(obj(0));
            let mut last = Verdict::Maybe(0);
            for symbol in word.symbols() {
                last = monitor.on_symbol(symbol);
            }
            assert_eq!(last, Verdict::Yes, "{}", factory.name());
        }
    }

    #[test]
    fn monitor_checkpoint_restore_roundtrip() {
        // The durability contract of CheckerObjectMonitor: restore() into a
        // fresh monitor of the same factory, then bit-identical verdicts on
        // any suffix.
        let word = register_word();
        let symbols = word.symbols();
        for factory in [
            CheckerMonitorFactory::linearizability(Register::new(), 2),
            CheckerMonitorFactory::sequential_consistency(Register::new(), 2),
        ] {
            for split in 0..=symbols.len() {
                let mut live = factory.create(obj(3));
                for symbol in &symbols[..split] {
                    live.on_symbol(symbol);
                }
                let bytes = live.checkpoint().expect("checker monitors checkpoint");
                let mut restored = factory.create(obj(3));
                restored.restore(&bytes).expect("a checkpoint we wrote restores");
                for symbol in &symbols[split..] {
                    assert_eq!(
                        restored.on_symbol(symbol),
                        live.on_symbol(symbol),
                        "{}: split {split} diverged",
                        factory.name()
                    );
                }
            }
        }
    }

    #[test]
    fn monitor_restore_rejects_garbage_and_family_monitors_opt_out() {
        let factory = CheckerMonitorFactory::linearizability(Register::new(), 2);
        let mut fresh = factory.create(obj(1));
        assert!(
            matches!(fresh.restore(b"not a checkpoint"), Err(RestoreError::Invalid(_))),
            "garbage must be refused, never fed"
        );
        // Family monitors do not checkpoint: recovery must fall back to
        // full replay for them.
        let family = FamilyMonitorFactory::new(
            Arc::new(PredictiveFamily::linearizable(Register::new())),
            2,
        );
        let mut monitor = family.create(obj(2));
        assert!(monitor.checkpoint().is_none());
        assert_eq!(monitor.restore(&[]), Err(RestoreError::Unsupported));
    }
}
