//! The decidability definitions of the paper, as executable evaluators over
//! finite traces.
//!
//! The paper defines four two-valued decidability notions:
//!
//! * **Strong decidability** (Definition 4.1): `x(E) ∈ L ⟺ ∀p, NO(E,p) = 0`.
//! * **Weak decidability** (Definition 4.4, the common form of WAD = WOD,
//!   Theorem 4.1): membership ⟹ every process reports NO finitely often;
//!   non-membership ⟹ every process reports NO infinitely often.
//! * **Predictive strong decidability** (Definition 6.1, against Aτ):
//!   membership allows NO reports only when the sketch x∼(E) itself violates
//!   the language (the "justified false negative").
//! * **Predictive weak decidability** (Definition 6.2, against Aτ): the weak
//!   analogue.
//!
//! On finite runs, "infinitely often" and "finitely often" are read through a
//! *tail*: a NO is "persistent" when it still occurs in the last
//! `1 − tail_fraction` of a process's reports.  The tail fraction is a
//! parameter of every experiment and is reported alongside the results (see
//! EXPERIMENTS.md).
//!
//! [`Decider`] bundles a language with the evaluation parameters;
//! [`evaluate`] checks one trace against one notion and says whether the
//! implication required by the definition holds for that run.  The Table 1
//! harness aggregates these outcomes over many runs per cell.

use crate::trace::{AdversaryMode, ExecutionTrace};
use drv_adversary::SketchError;
use drv_lang::Language;
use std::fmt;
use std::sync::Arc;

/// The decidability notion being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Notion {
    /// Strong decidability (Definition 4.1).
    Strong,
    /// Weak-all decidability (Definition 4.2): membership ⟺ every process
    /// reports NO finitely often (so non-membership only requires *some*
    /// process to keep reporting NO).  This is what the raw Figure 5/9
    /// monitors guarantee before the Lemma 4.2 transformation.
    WeakAll,
    /// Weak-one decidability (Definition 4.3): membership ⟺ some process
    /// reports NO finitely often.
    WeakOne,
    /// Weak decidability (Definition 4.4), the common strengthened form of
    /// WAD = WOD established by Theorem 4.1.
    Weak,
    /// Predictive strong decidability against Aτ (Definition 6.1).
    PredictiveStrong,
    /// Predictive weak decidability against Aτ (Definition 6.2).
    PredictiveWeak,
}

impl Notion {
    /// The four notions of Table 1, in column order.
    pub const TABLE1: [Notion; 4] = [
        Notion::Strong,
        Notion::Weak,
        Notion::PredictiveStrong,
        Notion::PredictiveWeak,
    ];

    /// All six notions defined in the paper.
    pub const ALL: [Notion; 6] = [
        Notion::Strong,
        Notion::WeakAll,
        Notion::WeakOne,
        Notion::Weak,
        Notion::PredictiveStrong,
        Notion::PredictiveWeak,
    ];

    /// The short column label used by Table 1.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Notion::Strong => "SD",
            Notion::WeakAll => "WAD",
            Notion::WeakOne => "WOD",
            Notion::Weak => "WD",
            Notion::PredictiveStrong => "PSD",
            Notion::PredictiveWeak => "PWD",
        }
    }

    /// Whether the notion is defined against the timed adversary Aτ.
    #[must_use]
    pub fn requires_views(self) -> bool {
        matches!(self, Notion::PredictiveStrong | Notion::PredictiveWeak)
    }
}

impl fmt::Display for Notion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of evaluating one trace against one decidability notion.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The notion evaluated.
    pub notion: Notion,
    /// Whether x(E) belongs to the language (at the trace's cut).
    pub member: bool,
    /// Whether the sketch x∼(E) belongs to the language (timed runs only).
    pub sketch_member: Option<bool>,
    /// Whether the implication required by the notion held on this run.
    pub holds: bool,
    /// Human-readable explanation.
    pub detail: String,
}

impl Evaluation {
    fn ok(notion: Notion, member: bool, sketch_member: Option<bool>, detail: String) -> Self {
        Evaluation {
            notion,
            member,
            sketch_member,
            holds: true,
            detail,
        }
    }

    fn fail(notion: Notion, member: bool, sketch_member: Option<bool>, detail: String) -> Self {
        Evaluation {
            notion,
            member,
            sketch_member,
            holds: false,
            detail,
        }
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({})",
            self.notion,
            if self.holds { "holds" } else { "VIOLATED" },
            self.detail
        )
    }
}

/// A language together with the finite-run evaluation parameters.
#[derive(Clone)]
pub struct Decider {
    language: Arc<dyn Language>,
    tail_fraction: f64,
}

impl Decider {
    /// Creates a decider for `language` with the default tail fraction 0.75
    /// (the last quarter of each process's reports is the "tail").
    #[must_use]
    pub fn new(language: Arc<dyn Language>) -> Self {
        Decider {
            language,
            tail_fraction: 0.75,
        }
    }

    /// Sets the tail fraction in `[0, 1]`.
    #[must_use]
    pub fn with_tail_fraction(mut self, fraction: f64) -> Self {
        self.tail_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// The language being decided.
    #[must_use]
    pub fn language(&self) -> &Arc<dyn Language> {
        &self.language
    }

    /// The language's name.
    #[must_use]
    pub fn language_name(&self) -> String {
        self.language.name()
    }

    /// Evaluates `trace` against `notion`.
    ///
    /// # Errors
    ///
    /// Returns a [`SketchError`] when a predictive notion is evaluated and the
    /// trace's views are inconsistent (a runtime bug, not a property of the
    /// monitored service).
    ///
    /// # Panics
    ///
    /// Panics when a predictive notion is evaluated on a trace produced
    /// against the plain adversary A.
    pub fn evaluate(&self, trace: &ExecutionTrace, notion: Notion) -> Result<Evaluation, SketchError> {
        if notion.requires_views() {
            assert!(
                trace.mode() == AdversaryMode::Timed,
                "{notion} is defined against the timed adversary Aτ"
            );
        }
        let member = trace.is_member(self.language.as_ref());
        let sketch_member = if trace.mode() == AdversaryMode::Timed {
            trace.sketch_is_member(self.language.as_ref())?
        } else {
            None
        };
        let no_counts = trace.no_counts();
        let tail_starts = trace.tail_start(self.tail_fraction);
        let tail_no: Vec<usize> = trace
            .all_verdicts()
            .iter()
            .zip(tail_starts.iter())
            .map(|(stream, &start)| stream.no_count_from(start))
            .collect();

        let evaluation = match notion {
            Notion::Strong => {
                // x ∈ L ⟺ ∀p NO(E,p) = 0.
                let all_silent = no_counts.iter().all(|&c| c == 0);
                if member == all_silent {
                    Evaluation::ok(
                        notion,
                        member,
                        sketch_member,
                        format!("member={member}, NO counts {no_counts:?}"),
                    )
                } else {
                    Evaluation::fail(
                        notion,
                        member,
                        sketch_member,
                        format!(
                            "member={member} but NO counts are {no_counts:?} (strong decidability needs NO-silence exactly on members)"
                        ),
                    )
                }
            }
            Notion::WeakAll => {
                // member ⟺ ∀p finitely many NO (Definition 4.2).
                let all_finite = tail_no.iter().all(|&c| c == 0);
                if member == all_finite {
                    Evaluation::ok(
                        notion,
                        member,
                        sketch_member,
                        format!("member={member}, tail NO counts {tail_no:?}"),
                    )
                } else {
                    Evaluation::fail(
                        notion,
                        member,
                        sketch_member,
                        format!(
                            "member={member} but tail NO counts are {tail_no:?} (weak-all decidability needs NO-quiescence exactly on members)"
                        ),
                    )
                }
            }
            Notion::WeakOne => {
                // member ⟺ ∃p finitely many NO (Definition 4.3).
                let some_finite = tail_no.contains(&0);
                if member == some_finite {
                    Evaluation::ok(
                        notion,
                        member,
                        sketch_member,
                        format!("member={member}, tail NO counts {tail_no:?}"),
                    )
                } else {
                    Evaluation::fail(
                        notion,
                        member,
                        sketch_member,
                        format!(
                            "member={member} but tail NO counts are {tail_no:?} (weak-one decidability needs some NO-quiescent process exactly on members)"
                        ),
                    )
                }
            }
            Notion::Weak => {
                // member ⟹ ∀p finitely many NO; non-member ⟹ ∀p infinitely many NO.
                if member {
                    if tail_no.iter().all(|&c| c == 0) {
                        Evaluation::ok(
                            notion,
                            member,
                            sketch_member,
                            format!("member, tail NO counts {tail_no:?}"),
                        )
                    } else {
                        Evaluation::fail(
                            notion,
                            member,
                            sketch_member,
                            format!("member but NO persists in the tail: {tail_no:?}"),
                        )
                    }
                } else if tail_no.iter().all(|&c| c > 0) {
                    Evaluation::ok(
                        notion,
                        member,
                        sketch_member,
                        format!("non-member, every process keeps reporting NO: {tail_no:?}"),
                    )
                } else {
                    Evaluation::fail(
                        notion,
                        member,
                        sketch_member,
                        format!("non-member but some process stops reporting NO: {tail_no:?}"),
                    )
                }
            }
            Notion::PredictiveStrong => {
                // member ⟹ (∀p NO = 0) ∨ (some p reported NO ∧ x∼(E) ∉ L);
                // non-member ⟹ ∃p NO > 0.
                let all_silent = no_counts.iter().all(|&c| c == 0);
                let some_no = no_counts.iter().any(|&c| c > 0);
                let sketch_in = sketch_member.unwrap_or(true);
                if member {
                    if all_silent || (some_no && !sketch_in) {
                        Evaluation::ok(
                            notion,
                            member,
                            sketch_member,
                            format!(
                                "member, NO counts {no_counts:?}, sketch member = {sketch_in} (false negatives must be justified by the sketch)"
                            ),
                        )
                    } else {
                        Evaluation::fail(
                            notion,
                            member,
                            sketch_member,
                            format!(
                                "member, some process reported NO but the sketch is also a member (unjustified false negative): NO counts {no_counts:?}"
                            ),
                        )
                    }
                } else if some_no {
                    Evaluation::ok(
                        notion,
                        member,
                        sketch_member,
                        format!("non-member detected, NO counts {no_counts:?}"),
                    )
                } else {
                    Evaluation::fail(
                        notion,
                        member,
                        sketch_member,
                        "non-member but no process ever reported NO".to_string(),
                    )
                }
            }
            Notion::PredictiveWeak => {
                // member ⟹ (∀p finitely many NO) ∨ (some p reports NO forever ∧ x∼(E) ∉ L);
                // non-member ⟹ ∀p infinitely many NO.
                let tail_silent = tail_no.iter().all(|&c| c == 0);
                let some_persistent = tail_no.iter().any(|&c| c > 0);
                let sketch_in = sketch_member.unwrap_or(true);
                if member {
                    if tail_silent || (some_persistent && !sketch_in) {
                        Evaluation::ok(
                            notion,
                            member,
                            sketch_member,
                            format!(
                                "member, tail NO counts {tail_no:?}, sketch member = {sketch_in}"
                            ),
                        )
                    } else {
                        Evaluation::fail(
                            notion,
                            member,
                            sketch_member,
                            format!(
                                "member, persistent NO without sketch justification: tail NO counts {tail_no:?}"
                            ),
                        )
                    }
                } else if tail_no.iter().all(|&c| c > 0) {
                    Evaluation::ok(
                        notion,
                        member,
                        sketch_member,
                        format!("non-member, every process keeps reporting NO: {tail_no:?}"),
                    )
                } else {
                    Evaluation::fail(
                        notion,
                        member,
                        sketch_member,
                        format!("non-member but some process stops reporting NO: {tail_no:?}"),
                    )
                }
            }
        };
        Ok(evaluation)
    }
}

impl fmt::Debug for Decider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Decider")
            .field("language", &self.language.name())
            .field("tail_fraction", &self.tail_fraction)
            .finish()
    }
}

/// A generic decidability predicate over executions (Definition 5.1).
///
/// Theorem 5.2 quantifies over *every* decidability notion expressible as a
/// predicate on the reported values of an execution; this trait is that
/// quantification made concrete.  The characterization experiments
/// instantiate it with the SD and WD predicates, and tests instantiate it
/// with ad-hoc multi-valued predicates to exercise the "any number of report
/// values" claim.
pub trait DecidabilityPredicate {
    /// Name of the predicate.
    fn name(&self) -> String;

    /// Whether the predicate holds on the reported values of the trace.
    fn holds(&self, trace: &ExecutionTrace) -> bool;
}

/// The SD predicate: no process ever reports NO.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSilence;

impl DecidabilityPredicate for NoSilence {
    fn name(&self) -> String {
        "∀p NO(E,p) = 0".to_string()
    }

    fn holds(&self, trace: &ExecutionTrace) -> bool {
        trace.no_counts().iter().all(|&c| c == 0)
    }
}

/// The WD predicate under the finitary tail reading: no process reports NO in
/// the tail of its reports.
#[derive(Debug, Clone, Copy)]
pub struct TailNoSilence {
    /// Tail fraction in `[0, 1]`.
    pub tail_fraction: f64,
}

impl DecidabilityPredicate for TailNoSilence {
    fn name(&self) -> String {
        format!("∀p NO-free tail (fraction {})", self.tail_fraction)
    }

    fn holds(&self, trace: &ExecutionTrace) -> bool {
        let starts = trace.tail_start(self.tail_fraction);
        trace
            .all_verdicts()
            .iter()
            .zip(starts)
            .all(|(stream, start)| stream.no_free_tail(start))
    }
}

/// Checks [`Definition 5.1`](DecidabilityPredicate) on a set of runs: the
/// predicate must hold exactly on the runs whose input is in the language.
///
/// Returns the indices of the traces on which the equivalence fails.
#[must_use]
pub fn p_decidability_failures(
    traces: &[ExecutionTrace],
    language: &dyn Language,
    predicate: &dyn DecidabilityPredicate,
) -> Vec<usize> {
    traces
        .iter()
        .enumerate()
        .filter(|(_, trace)| trace.is_member(language) != predicate.holds(trace))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AdversaryMode;
    use crate::verdict::{Verdict, VerdictStream};
    use drv_consistency::languages::{lin_reg, wec_count};
    use drv_lang::{Invocation, ProcId, Response, Word, WordBuilder};

    fn trace_with(word: Word, verdicts: Vec<Vec<Verdict>>) -> ExecutionTrace {
        ExecutionTrace::new(
            verdicts.len(),
            AdversaryMode::Plain,
            "synthetic",
            "synthetic",
            word,
            verdicts
                .into_iter()
                .map(|v| v.into_iter().collect::<VerdictStream>())
                .collect(),
            Vec::new(),
            Vec::new(),
        )
    }

    fn member_word() -> Word {
        WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .build()
    }

    fn non_member_word() -> Word {
        WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(9))
            .build()
    }

    #[test]
    fn notion_metadata() {
        assert_eq!(Notion::TABLE1.len(), 4);
        assert_eq!(Notion::ALL.len(), 6);
        assert_eq!(Notion::Strong.label(), "SD");
        assert_eq!(Notion::WeakAll.label(), "WAD");
        assert_eq!(Notion::WeakOne.label(), "WOD");
        assert_eq!(Notion::PredictiveWeak.to_string(), "PWD");
        assert!(Notion::PredictiveStrong.requires_views());
        assert!(!Notion::Weak.requires_views());
    }

    #[test]
    fn weak_all_and_weak_one_differ_on_partial_quiescence() {
        let decider = Decider::new(Arc::new(lin_reg(2))).with_tail_fraction(0.5);
        // One process keeps reporting NO, the other converges to YES.
        let persistent_no = vec![Verdict::No, Verdict::No, Verdict::No, Verdict::No];
        let quiescent = vec![Verdict::No, Verdict::No, Verdict::Yes, Verdict::Yes];

        // Non-member: WAD is satisfied (∃p NO=∞), WOD is violated (needs ∀p).
        let t = trace_with(
            non_member_word(),
            vec![persistent_no.clone(), quiescent.clone()],
        );
        assert!(decider.evaluate(&t, Notion::WeakAll).unwrap().holds);
        assert!(!decider.evaluate(&t, Notion::WeakOne).unwrap().holds);
        assert!(!decider.evaluate(&t, Notion::Weak).unwrap().holds);

        // Member: WAD is violated (some process never quiesces), WOD holds.
        let t = trace_with(member_word(), vec![persistent_no, quiescent]);
        assert!(!decider.evaluate(&t, Notion::WeakAll).unwrap().holds);
        assert!(decider.evaluate(&t, Notion::WeakOne).unwrap().holds);
    }

    #[test]
    fn strong_decidability_requires_exact_silence() {
        let decider = Decider::new(Arc::new(lin_reg(2)));
        let yes = vec![Verdict::Yes; 4];
        let with_no = vec![Verdict::Yes, Verdict::No, Verdict::Yes, Verdict::Yes];

        // Member + silence: holds.
        let t = trace_with(member_word(), vec![yes.clone(), yes.clone()]);
        assert!(decider.evaluate(&t, Notion::Strong).unwrap().holds);

        // Member + a NO: violated.
        let t = trace_with(member_word(), vec![yes.clone(), with_no.clone()]);
        let e = decider.evaluate(&t, Notion::Strong).unwrap();
        assert!(!e.holds);
        assert!(e.member);
        assert!(e.to_string().contains("VIOLATED"));

        // Non-member + a NO: holds.
        let t = trace_with(non_member_word(), vec![with_no.clone(), yes.clone()]);
        assert!(decider.evaluate(&t, Notion::Strong).unwrap().holds);

        // Non-member + silence: violated.
        let t = trace_with(non_member_word(), vec![yes.clone(), yes]);
        assert!(!decider.evaluate(&t, Notion::Strong).unwrap().holds);
    }

    #[test]
    fn weak_decidability_uses_the_tail() {
        let decider = Decider::new(Arc::new(lin_reg(2))).with_tail_fraction(0.5);
        // NO early, silence later: fine for members.
        let early_no = vec![Verdict::No, Verdict::No, Verdict::Yes, Verdict::Yes];
        let t = trace_with(member_word(), vec![early_no.clone(), early_no.clone()]);
        assert!(decider.evaluate(&t, Notion::Weak).unwrap().holds);

        // NO persists: fails for members.
        let late_no = vec![Verdict::Yes, Verdict::Yes, Verdict::Yes, Verdict::No];
        let t = trace_with(member_word(), vec![late_no.clone(), early_no.clone()]);
        assert!(!decider.evaluate(&t, Notion::Weak).unwrap().holds);

        // Non-member: everyone must keep saying NO.
        let t = trace_with(non_member_word(), vec![late_no.clone(), late_no.clone()]);
        assert!(decider.evaluate(&t, Notion::Weak).unwrap().holds);
        let t = trace_with(non_member_word(), vec![late_no, early_no]);
        assert!(!decider.evaluate(&t, Notion::Weak).unwrap().holds);
    }

    #[test]
    #[should_panic(expected = "timed adversary")]
    fn predictive_notions_need_timed_traces() {
        let decider = Decider::new(Arc::new(lin_reg(2)));
        let t = trace_with(member_word(), vec![vec![Verdict::Yes], vec![Verdict::Yes]]);
        let _ = decider.evaluate(&t, Notion::PredictiveStrong);
    }

    #[test]
    fn p_decidability_failures_flags_mismatches() {
        let member = trace_with(member_word(), vec![vec![Verdict::Yes], vec![Verdict::Yes]]);
        let non_member_silent =
            trace_with(non_member_word(), vec![vec![Verdict::Yes], vec![Verdict::Yes]]);
        let traces = vec![member, non_member_silent];
        let failures = p_decidability_failures(&traces, &lin_reg(2), &NoSilence);
        assert_eq!(failures, vec![1]);
        assert!(NoSilence.name().contains("NO"));
        let tail = TailNoSilence { tail_fraction: 0.5 };
        assert!(tail.name().contains("0.5"));
        assert!(tail.holds(&traces[0]));
    }

    #[test]
    fn decider_accessors() {
        let decider = Decider::new(Arc::new(wec_count()));
        assert_eq!(decider.language_name(), "WEC_COUNT");
        assert_eq!(decider.language().name(), "WEC_COUNT");
        assert!(format!("{decider:?}").contains("WEC_COUNT"));
    }
}
