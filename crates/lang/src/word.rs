//! Finite words over a distributed alphabet and well-formedness checking.
//!
//! A [`Word`] is a finite sequence of [`Symbol`]s, read as a finite prefix of a
//! well-formed ω-word (Definition 2.1).  The infinitary conditions
//! (*reliability* and *fairness*) only constrain infinite words; on finite
//! prefixes we check *sequentiality* — every local projection alternates
//! invocation and response symbols, starting with an invocation.

use crate::symbol::{Action, Invocation, ProcId, Response, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a finite word violates well-formedness
/// (Definition 2.1, sequentiality condition) as a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WellFormedError {
    /// A response symbol appears for a process with no pending invocation.
    ResponseWithoutInvocation {
        /// Offending process.
        proc: ProcId,
        /// Position of the offending symbol in the word.
        position: usize,
    },
    /// An invocation symbol appears for a process that already has a pending
    /// invocation (local words must alternate).
    InvocationWhilePending {
        /// Offending process.
        proc: ProcId,
        /// Position of the offending symbol in the word.
        position: usize,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::ResponseWithoutInvocation { proc, position } => write!(
                f,
                "response for {proc} at position {position} has no pending invocation"
            ),
            WellFormedError::InvocationWhilePending { proc, position } => write!(
                f,
                "invocation for {proc} at position {position} while a previous invocation is pending"
            ),
        }
    }
}

impl std::error::Error for WellFormedError {}

/// The projection `x|ᵢ` of a word onto the local alphabet of one process.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalWord {
    /// The process the projection belongs to.
    pub proc: ProcId,
    /// The local symbols, in the order they appear in the global word.
    pub symbols: Vec<Symbol>,
}

impl LocalWord {
    /// Number of symbols in the local word.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` when the local word has no symbols.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Returns `true` when the local word alternates invocation and response
    /// symbols starting with an invocation (the *sequentiality* condition).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        for (k, s) in self.symbols.iter().enumerate() {
            let expect_invocation = k % 2 == 0;
            if s.is_invocation() != expect_invocation {
                return false;
            }
        }
        true
    }
}

/// A finite word over the distributed alphabet: a finite prefix of a
/// concurrent history of the service under inspection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Word {
    symbols: Vec<Symbol>,
}

impl Word {
    /// Creates an empty word.
    #[must_use]
    pub fn new() -> Self {
        Word {
            symbols: Vec::new(),
        }
    }

    /// Creates a word from a sequence of symbols.
    #[must_use]
    pub fn from_symbols(symbols: Vec<Symbol>) -> Self {
        Word { symbols }
    }

    /// Returns the number of symbols `|x|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` when the word has no symbols.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols of the word, in order.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Returns the symbol at `position`, if any.
    #[must_use]
    pub fn get(&self, position: usize) -> Option<&Symbol> {
        self.symbols.get(position)
    }

    /// Appends an arbitrary symbol.
    pub fn push(&mut self, symbol: Symbol) {
        self.symbols.push(symbol);
    }

    /// Appends an invocation symbol for `proc`.
    pub fn invoke(&mut self, proc: ProcId, invocation: Invocation) {
        self.push(Symbol::invoke(proc, invocation));
    }

    /// Appends a response symbol for `proc`.
    pub fn respond(&mut self, proc: ProcId, response: Response) {
        self.push(Symbol::respond(proc, response));
    }

    /// Appends a complete operation (invocation immediately followed by its
    /// response) for `proc`.
    pub fn op(&mut self, proc: ProcId, invocation: Invocation, response: Response) {
        self.invoke(proc, invocation);
        self.respond(proc, response);
    }

    /// Appends all symbols of `other`.
    pub fn extend_word(&mut self, other: &Word) {
        self.symbols.extend(other.symbols.iter().cloned());
    }

    /// Returns the concatenation `self · other`.
    #[must_use]
    pub fn concat(&self, other: &Word) -> Word {
        let mut w = self.clone();
        w.extend_word(other);
        w
    }

    /// Returns the prefix with the first `len` symbols (the whole word if
    /// `len ≥ |x|`).
    #[must_use]
    pub fn prefix(&self, len: usize) -> Word {
        Word {
            symbols: self.symbols[..len.min(self.symbols.len())].to_vec(),
        }
    }

    /// Returns the suffix starting at position `from`.
    #[must_use]
    pub fn suffix(&self, from: usize) -> Word {
        Word {
            symbols: self.symbols[from.min(self.symbols.len())..].to_vec(),
        }
    }

    /// Returns `true` when `prefix` is a prefix of `self`.
    #[must_use]
    pub fn has_prefix(&self, prefix: &Word) -> bool {
        prefix.len() <= self.len() && self.symbols[..prefix.len()] == prefix.symbols[..]
    }

    /// Returns the length of the longest common prefix of `self` and `other`
    /// (the `ℓ(y, y')` of the proof of Theorem 5.2).
    #[must_use]
    pub fn longest_common_prefix(&self, other: &Word) -> usize {
        self.symbols
            .iter()
            .zip(other.symbols.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Returns the set of process ids that appear in the word.
    #[must_use]
    pub fn procs(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.symbols.iter().map(|s| s.proc).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The local projection `x|ᵢ` of the word onto the alphabet of `proc`.
    #[must_use]
    pub fn project(&self, proc: ProcId) -> LocalWord {
        LocalWord {
            proc,
            symbols: self
                .symbols
                .iter()
                .filter(|s| s.proc == proc)
                .cloned()
                .collect(),
        }
    }

    /// All local projections, for processes `p₀ … p_{n-1}`.
    #[must_use]
    pub fn projections(&self, n: usize) -> Vec<LocalWord> {
        ProcId::all(n).map(|p| self.project(p)).collect()
    }

    /// Checks the *sequentiality* condition of Definition 2.1 on this finite
    /// prefix: every local projection alternates invocations and responses,
    /// starting with an invocation.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, with the position of the offending
    /// symbol.
    pub fn check_well_formed_prefix(&self) -> Result<(), WellFormedError> {
        use std::collections::HashMap;
        let mut pending: HashMap<ProcId, bool> = HashMap::new();
        for (position, s) in self.symbols.iter().enumerate() {
            let entry = pending.entry(s.proc).or_insert(false);
            match &s.action {
                Action::Invoke(_) => {
                    if *entry {
                        return Err(WellFormedError::InvocationWhilePending {
                            proc: s.proc,
                            position,
                        });
                    }
                    *entry = true;
                }
                Action::Respond(_) => {
                    if !*entry {
                        return Err(WellFormedError::ResponseWithoutInvocation {
                            proc: s.proc,
                            position,
                        });
                    }
                    *entry = false;
                }
            }
        }
        Ok(())
    }

    /// Returns `true` when [`Word::check_well_formed_prefix`] succeeds.
    #[must_use]
    pub fn is_well_formed_prefix(&self) -> bool {
        self.check_well_formed_prefix().is_ok()
    }

    /// Number of invocation symbols in the word.
    #[must_use]
    pub fn invocation_count(&self) -> usize {
        self.symbols.iter().filter(|s| s.is_invocation()).count()
    }

    /// Number of response symbols in the word.
    #[must_use]
    pub fn response_count(&self) -> usize {
        self.symbols.iter().filter(|s| s.is_response()).count()
    }

    /// Iterates over the symbols of the word.
    pub fn iter(&self) -> std::slice::Iter<'_, Symbol> {
        self.symbols.iter()
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.symbols.is_empty() {
            return write!(f, "ε");
        }
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromIterator<Symbol> for Word {
    fn from_iter<T: IntoIterator<Item = Symbol>>(iter: T) -> Self {
        Word {
            symbols: iter.into_iter().collect(),
        }
    }
}

impl Extend<Symbol> for Word {
    fn extend<T: IntoIterator<Item = Symbol>>(&mut self, iter: T) {
        self.symbols.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Word {
    type Item = &'a Symbol;
    type IntoIter = std::slice::Iter<'a, Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.iter()
    }
}

impl IntoIterator for Word {
    type Item = Symbol;
    type IntoIter = std::vec::IntoIter<Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.into_iter()
    }
}

/// A fluent builder for [`Word`]s, convenient in tests and examples.
///
/// ```
/// use drv_lang::{WordBuilder, ProcId, Invocation, Response};
///
/// let w = WordBuilder::new()
///     .op(ProcId(0), Invocation::Write(1), Response::Ack)
///     .op(ProcId(1), Invocation::Read, Response::Value(1))
///     .build();
/// assert_eq!(w.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WordBuilder {
    word: Word,
}

impl WordBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        WordBuilder { word: Word::new() }
    }

    /// Appends an invocation symbol.
    #[must_use]
    pub fn invoke(mut self, proc: ProcId, invocation: Invocation) -> Self {
        self.word.invoke(proc, invocation);
        self
    }

    /// Appends a response symbol.
    #[must_use]
    pub fn respond(mut self, proc: ProcId, response: Response) -> Self {
        self.word.respond(proc, response);
        self
    }

    /// Appends a complete operation (invocation then response).
    #[must_use]
    pub fn op(mut self, proc: ProcId, invocation: Invocation, response: Response) -> Self {
        self.word.op(proc, invocation, response);
        self
    }

    /// Appends all symbols of an existing word.
    #[must_use]
    pub fn append(mut self, other: &Word) -> Self {
        self.word.extend_word(other);
        self
    }

    /// Finishes building and returns the word.
    #[must_use]
    pub fn build(self) -> Word {
        self.word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_word() -> Word {
        WordBuilder::new()
            .invoke(ProcId(0), Invocation::Write(7))
            .invoke(ProcId(1), Invocation::Read)
            .respond(ProcId(0), Response::Ack)
            .respond(ProcId(1), Response::Value(7))
            .build()
    }

    #[test]
    fn builder_and_len() {
        let w = sample_word();
        assert_eq!(w.len(), 4);
        assert_eq!(w.invocation_count(), 2);
        assert_eq!(w.response_count(), 2);
        assert!(!w.is_empty());
        assert!(Word::new().is_empty());
    }

    #[test]
    fn projections_preserve_order() {
        let w = sample_word();
        let p0 = w.project(ProcId(0));
        assert_eq!(p0.len(), 2);
        assert!(p0.is_sequential());
        let p1 = w.project(ProcId(1));
        assert_eq!(p1.len(), 2);
        assert!(p1.is_sequential());
        let p2 = w.project(ProcId(2));
        assert!(p2.is_empty());
        assert!(p2.is_sequential());
        assert_eq!(w.projections(2).len(), 2);
    }

    #[test]
    fn well_formedness_accepts_interleavings() {
        assert!(sample_word().is_well_formed_prefix());
    }

    #[test]
    fn well_formedness_rejects_double_invocation() {
        let w = WordBuilder::new()
            .invoke(ProcId(0), Invocation::Read)
            .invoke(ProcId(0), Invocation::Read)
            .build();
        assert_eq!(
            w.check_well_formed_prefix(),
            Err(WellFormedError::InvocationWhilePending {
                proc: ProcId(0),
                position: 1
            })
        );
    }

    #[test]
    fn well_formedness_rejects_orphan_response() {
        let w = WordBuilder::new()
            .respond(ProcId(0), Response::Ack)
            .build();
        assert_eq!(
            w.check_well_formed_prefix(),
            Err(WellFormedError::ResponseWithoutInvocation {
                proc: ProcId(0),
                position: 0
            })
        );
        assert!(!w.is_well_formed_prefix());
    }

    #[test]
    fn prefix_suffix_concat() {
        let w = sample_word();
        let p = w.prefix(2);
        assert_eq!(p.len(), 2);
        let s = w.suffix(2);
        assert_eq!(s.len(), 2);
        assert_eq!(p.concat(&s), w);
        assert!(w.has_prefix(&p));
        assert!(!p.has_prefix(&w));
        assert_eq!(w.prefix(100), w);
        assert_eq!(w.suffix(100).len(), 0);
    }

    #[test]
    fn longest_common_prefix() {
        let w = sample_word();
        let mut v = w.prefix(3);
        v.invoke(ProcId(2), Invocation::Inc);
        assert_eq!(w.longest_common_prefix(&v), 3);
        assert_eq!(w.longest_common_prefix(&w), 4);
        assert_eq!(w.longest_common_prefix(&Word::new()), 0);
    }

    #[test]
    fn procs_are_sorted_and_deduped() {
        let w = sample_word();
        assert_eq!(w.procs(), vec![ProcId(0), ProcId(1)]);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Word::new().to_string(), "ε");
        assert!(sample_word().to_string().contains("write(7)"));
    }

    #[test]
    fn iterator_traits() {
        let w = sample_word();
        let collected: Word = w.iter().cloned().collect();
        assert_eq!(collected, w);
        let mut extended = Word::new();
        extended.extend(w.clone());
        assert_eq!(extended, w);
        assert_eq!((&w).into_iter().count(), 4);
    }

    #[test]
    fn local_word_sequentiality_detects_violation() {
        let bad = LocalWord {
            proc: ProcId(0),
            symbols: vec![Symbol::respond(ProcId(0), Response::Ack)],
        };
        assert!(!bad.is_sequential());
    }
}
