//! Symbols of the distributed alphabet: process identifiers, invocations,
//! responses and the combined [`Symbol`] type.
//!
//! The paper keeps local alphabets abstract; this crate fixes a concrete,
//! object-oriented alphabet that covers every object used in the paper
//! (register, counter, ledger — Examples 1–4) plus the queue and stack objects
//! mentioned in the related-work discussion, and an escape hatch
//! ([`Invocation::Custom`] / [`Response::Custom`]) for user-defined objects.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a monitor process `pᵢ` (0-based).
///
/// The paper indexes processes `p₁ … pₙ`; we use 0-based indices internally
/// and format them 1-based in `Display` to match the paper.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcId(pub usize);

impl ProcId {
    /// Returns the underlying 0-based index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns an iterator over the process ids `p₀ … p_{n-1}`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcId> {
        (0..n).map(ProcId)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcId {
    fn from(value: usize) -> Self {
        ProcId(value)
    }
}

/// Identifier of one monitored *object stream*.
///
/// The paper's monitors decide a language per object; a multi-object service
/// produces one independent stream of symbols per object, and an engine
/// ingesting the merged traffic tags every symbol with the object it belongs
/// to.  Object ids carry no locality meaning — engines route them to shards
/// by hash.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Returns the underlying raw id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(value: u64) -> Self {
        ObjectId(value)
    }
}

/// A record appended to a ledger (the universe `U` of the paper, Example 2).
pub type Record = u64;

/// An invocation symbol (an element of Σ<ᵢ for the issuing process).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Invocation {
    /// `write(x)` on a register (Example 1).
    Write(u64),
    /// `read()` on a register or a counter (Examples 1 and 3).
    Read,
    /// `inc()` on a counter (Example 3).
    Inc,
    /// `append(r)` on a ledger (Example 2).
    Append(Record),
    /// `get()` on a ledger (Example 2).
    Get,
    /// `enqueue(x)` on a queue.
    Enqueue(u64),
    /// `dequeue()` on a queue.
    Dequeue,
    /// `push(x)` on a stack.
    Push(u64),
    /// `pop()` on a stack.
    Pop,
    /// A user-defined invocation, identified by an operation name and argument.
    Custom(String, u64),
}

impl Invocation {
    /// Returns `true` when the invocation is a mutator (potentially changes
    /// object state), `false` when it is a pure observer (`read`/`get`).
    #[must_use]
    pub fn is_mutator(&self) -> bool {
        !matches!(self, Invocation::Read | Invocation::Get)
    }

    /// Returns `true` if this is a register/counter `read()`.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, Invocation::Read)
    }

    /// Returns `true` if this is a counter `inc()`.
    #[must_use]
    pub fn is_inc(&self) -> bool {
        matches!(self, Invocation::Inc)
    }

    /// Returns `true` if this is a ledger `get()`.
    #[must_use]
    pub fn is_get(&self) -> bool {
        matches!(self, Invocation::Get)
    }

    /// Returns `true` if this is a ledger `append(_)`.
    #[must_use]
    pub fn is_append(&self) -> bool {
        matches!(self, Invocation::Append(_))
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Invocation::Write(x) => write!(f, "write({x})"),
            Invocation::Read => write!(f, "read()"),
            Invocation::Inc => write!(f, "inc()"),
            Invocation::Append(r) => write!(f, "append({r})"),
            Invocation::Get => write!(f, "get()"),
            Invocation::Enqueue(x) => write!(f, "enqueue({x})"),
            Invocation::Dequeue => write!(f, "dequeue()"),
            Invocation::Push(x) => write!(f, "push({x})"),
            Invocation::Pop => write!(f, "pop()"),
            Invocation::Custom(name, arg) => write!(f, "{name}({arg})"),
        }
    }
}

/// A response symbol (an element of Σ>ᵢ for the issuing process).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Response {
    /// Response carrying no value (`write`, `inc`, `append`, `enqueue`, `push`).
    Ack,
    /// Response carrying a single value (`read` of register or counter).
    Value(u64),
    /// Response carrying a sequence of records (`get` of a ledger).
    Sequence(Vec<Record>),
    /// Response carrying an optional value (`dequeue`/`pop`, `None` = empty).
    MaybeValue(Option<u64>),
    /// A user-defined response.
    Custom(String, u64),
}

impl Response {
    /// Extracts the numeric value of a `Value` response.
    #[must_use]
    pub fn as_value(&self) -> Option<u64> {
        match self {
            Response::Value(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts the record sequence of a `Sequence` response.
    #[must_use]
    pub fn as_sequence(&self) -> Option<&[Record]> {
        match self {
            Response::Sequence(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ack => write!(f, "ok"),
            Response::Value(v) => write!(f, "{v}"),
            Response::Sequence(s) => {
                write!(f, "[")?;
                for (i, r) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "]")
            }
            Response::MaybeValue(Some(v)) => write!(f, "{v}"),
            Response::MaybeValue(None) => write!(f, "empty"),
            Response::Custom(name, v) => write!(f, "{name}:{v}"),
        }
    }
}

/// Whether a symbol is an invocation or a response.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// An invocation sent by the process to the service under inspection.
    Invoke(Invocation),
    /// A response received by the process from the service under inspection.
    Respond(Response),
}

impl Action {
    /// Returns `true` when this action is an invocation.
    #[must_use]
    pub fn is_invocation(&self) -> bool {
        matches!(self, Action::Invoke(_))
    }

    /// Returns `true` when this action is a response.
    #[must_use]
    pub fn is_response(&self) -> bool {
        matches!(self, Action::Respond(_))
    }
}

/// A symbol of the distributed alphabet: an invocation or a response tagged
/// with the process it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Symbol {
    /// The process whose local alphabet the symbol belongs to.
    pub proc: ProcId,
    /// The invocation or response payload.
    pub action: Action,
}

impl Symbol {
    /// Creates an invocation symbol for process `proc`.
    #[must_use]
    pub fn invoke(proc: ProcId, invocation: Invocation) -> Self {
        Symbol {
            proc,
            action: Action::Invoke(invocation),
        }
    }

    /// Creates a response symbol for process `proc`.
    #[must_use]
    pub fn respond(proc: ProcId, response: Response) -> Self {
        Symbol {
            proc,
            action: Action::Respond(response),
        }
    }

    /// Returns `true` when the symbol is an invocation symbol.
    #[must_use]
    pub fn is_invocation(&self) -> bool {
        self.action.is_invocation()
    }

    /// Returns `true` when the symbol is a response symbol.
    #[must_use]
    pub fn is_response(&self) -> bool {
        self.action.is_response()
    }

    /// Returns the invocation payload, if this is an invocation symbol.
    #[must_use]
    pub fn invocation(&self) -> Option<&Invocation> {
        match &self.action {
            Action::Invoke(inv) => Some(inv),
            Action::Respond(_) => None,
        }
    }

    /// Returns the response payload, if this is a response symbol.
    #[must_use]
    pub fn response(&self) -> Option<&Response> {
        match &self.action {
            Action::Respond(resp) => Some(resp),
            Action::Invoke(_) => None,
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            Action::Invoke(inv) => write!(f, "<{} {}", self.proc, inv),
            Action::Respond(resp) => write!(f, ">{} {}", self.proc, resp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_display_is_one_based() {
        assert_eq!(ProcId(0).to_string(), "p1");
        assert_eq!(ProcId(3).to_string(), "p4");
    }

    #[test]
    fn proc_id_all_enumerates() {
        let ids: Vec<ProcId> = ProcId::all(3).collect();
        assert_eq!(ids, vec![ProcId(0), ProcId(1), ProcId(2)]);
    }

    #[test]
    fn invocation_classification() {
        assert!(Invocation::Read.is_read());
        assert!(!Invocation::Write(1).is_read());
        assert!(Invocation::Inc.is_inc());
        assert!(Invocation::Get.is_get());
        assert!(Invocation::Append(9).is_append());
    }

    #[test]
    fn response_extractors() {
        assert_eq!(Response::Value(5).as_value(), Some(5));
        assert_eq!(Response::Ack.as_value(), None);
        assert_eq!(
            Response::Sequence(vec![1, 2]).as_sequence(),
            Some(&[1u64, 2][..])
        );
        assert_eq!(Response::Ack.as_sequence(), None);
    }

    #[test]
    fn symbol_constructors_and_accessors() {
        let s = Symbol::invoke(ProcId(1), Invocation::Write(3));
        assert!(s.is_invocation());
        assert!(!s.is_response());
        assert_eq!(s.invocation(), Some(&Invocation::Write(3)));
        assert_eq!(s.response(), None);

        let r = Symbol::respond(ProcId(1), Response::Ack);
        assert!(r.is_response());
        assert_eq!(r.response(), Some(&Response::Ack));
        assert_eq!(r.invocation(), None);
    }

    #[test]
    fn display_round_trip_is_informative() {
        let s = Symbol::invoke(ProcId(0), Invocation::Append(42));
        assert_eq!(s.to_string(), "<p1 append(42)");
        let r = Symbol::respond(ProcId(2), Response::Sequence(vec![1, 2, 3]));
        assert_eq!(r.to_string(), ">p3 [1,2,3]");
        assert_eq!(
            Symbol::respond(ProcId(0), Response::MaybeValue(None)).to_string(),
            ">p1 empty"
        );
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", ProcId(0)).is_empty());
        assert!(!format!("{:?}", Invocation::Read).is_empty());
        assert!(!format!("{:?}", Response::Ack).is_empty());
    }
}
