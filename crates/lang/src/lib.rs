//! # drv-lang
//!
//! Distributed alphabets, words, concurrent histories and distributed
//! languages, following Section 2 of *"Asynchronous Fault-Tolerant Language
//! Decidability for Runtime Verification of Distributed Systems"*
//! (Castañeda & Rodríguez, PODC 2025).
//!
//! A *distributed alphabet* Σ is the union of `n ≥ 2` disjoint local alphabets
//! Σ₁, …, Σₙ, each split into invocation symbols Σ<ᵢ and response symbols Σ>ᵢ.
//! A *word* over Σ models a concurrent history where invocations to and
//! responses from a distributed service are interleaved; a *distributed
//! language* is a set of well-formed ω-words, i.e. a correctness property of
//! the service under inspection.
//!
//! This crate provides:
//!
//! * [`ProcId`], [`Invocation`], [`Response`], [`Symbol`] — the concrete
//!   distributed alphabet used by the paper's examples (registers, counters,
//!   ledgers, plus queues and stacks mentioned in related work),
//! * [`Word`] — finite words / prefixes of ω-words, with well-formedness
//!   checking (Definition 2.1), local projections, and builders,
//! * [`Operation`] and [`operations`] — matched invocation/response pairs with
//!   the real-time precedence (`≺`) and concurrency (`‖`) relations,
//! * [`shuffle`] — the shuffle operator of Definition 5.2,
//! * [`Language`] — the distributed-language abstraction (Definition 2.2) with
//!   a finitary, cut-based reading of eventual ("Büchi-style") properties,
//! * [`oblivious`] — real-time obliviousness testing (Definition 5.3), the key
//!   notion of the paper's characterization (Theorem 5.2),
//! * [`wire`] — the bounds-checked binary codec for [`Invocation`] /
//!   [`Response`] payloads (the dictionary entries of `drv-net`'s
//!   `EventBatch` frames).
//!
//! ## Example
//!
//! ```
//! use drv_lang::{ProcId, Invocation, Response, Word};
//!
//! // p1 writes 7, then p2 reads 7: a linearizable register history.
//! let mut w = Word::new();
//! w.invoke(ProcId(0), Invocation::Write(7));
//! w.respond(ProcId(0), Response::Ack);
//! w.invoke(ProcId(1), Invocation::Read);
//! w.respond(ProcId(1), Response::Value(7));
//! assert!(w.check_well_formed_prefix().is_ok());
//! assert_eq!(w.operations().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod batch;
pub mod intern;
pub mod language;
pub mod oblivious;
pub mod operation;
pub mod shuffle;
pub mod symbol;
pub mod wire;
pub mod word;

pub use alphabet::{ObjectKind, SymbolSampler};
pub use batch::{EventAction, EventBatch, EventRecord, TraceContext, VerdictBatch};
pub use intern::{Interner, InternerMirror, InvocationId, OpRecord, ResponseId, SharedInterner};
pub use language::{Complement, Intersection, Language, RunVerdict, Union};
pub use oblivious::{oblivious_counterexample, ObliviousReport, ObliviousnessTester};
pub use operation::{operations, OpId, Operation, OperationSet, Ordering as OpOrdering};
pub use shuffle::{enumerate_shuffles, is_interleaving_of, random_shuffle, Shuffle};
pub use symbol::{Action, Invocation, ObjectId, ProcId, Record, Response, Symbol};
pub use wire::CodecError;
pub use word::{LocalWord, WellFormedError, Word, WordBuilder};
