//! Real-time obliviousness (Definition 5.3) and the shuffle-closure test
//! behind the paper's characterization (Theorem 5.2).
//!
//! A language `L` is *real-time oblivious* when for every `αβ ∈ L` with `α`
//! finite and every interleaving `α' ∈ α|₁ ⧢ … ⧢ α|ₙ`, the word `α'β` is also
//! in `L`.  Theorem 5.2 states that every `P`-decidable language (for *any*
//! decidability predicate `P`) must be real-time oblivious, so exhibiting a
//! single non-oblivious witness `(α, β, α')` proves the language undecidable
//! against the asynchronous adversary `A` regardless of the verdict domain.
//!
//! Membership of infinite words is approximated finitarily through
//! [`Language::accepts_run`] with a cut at `|α|`: the finite continuation `β`
//! plays the role of the infinite suffix.

use crate::language::Language;
use crate::shuffle::Shuffle;
use crate::word::Word;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A counterexample to real-time obliviousness: a member word `α·β` and an
/// interleaving `α'` of `α`'s projections such that `α'·β` is not a member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObliviousReport {
    /// The finite prefix `α` whose shuffle breaks membership.
    pub alpha: Word,
    /// The continuation `β` used as the (finite stand-in for the) suffix.
    pub beta: Word,
    /// The offending interleaving `α'`.
    pub alpha_shuffled: Word,
    /// Number of interleavings examined before the counterexample was found.
    pub examined: usize,
}

impl fmt::Display for ObliviousReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "α = {} ; shuffled α' = {} ; β = {} (after examining {} interleavings)",
            self.alpha, self.alpha_shuffled, self.beta, self.examined
        )
    }
}

/// Strategy for exploring the interleavings of `α`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuffleBudget {
    /// Enumerate every interleaving (exponential; fine for small `α`).
    Exhaustive,
    /// Sample this many random interleavings.
    Sampled(usize),
}

/// Tests a [`Language`] for real-time obliviousness on concrete witnesses.
#[derive(Debug, Clone, Copy)]
pub struct ObliviousnessTester {
    /// Number of monitor processes `n` (the projections taken of `α`).
    pub n: usize,
    /// How many interleavings to explore.
    pub budget: ShuffleBudget,
}

impl ObliviousnessTester {
    /// Creates a tester that enumerates all interleavings.
    #[must_use]
    pub fn exhaustive(n: usize) -> Self {
        ObliviousnessTester {
            n,
            budget: ShuffleBudget::Exhaustive,
        }
    }

    /// Creates a tester that samples `samples` random interleavings.
    #[must_use]
    pub fn sampled(n: usize, samples: usize) -> Self {
        ObliviousnessTester {
            n,
            budget: ShuffleBudget::Sampled(samples),
        }
    }

    /// Searches for a violation of real-time obliviousness for the split
    /// `word = α·β` at `|α| = split`.
    ///
    /// Returns `Ok(())` when no violation was found within the budget (which
    /// is *evidence of*, not proof of, obliviousness), and
    /// `Err(report)` when a counterexample interleaving was found.
    ///
    /// The word `α·β` itself must be a member (checked via
    /// [`Language::accepts_run`] with the cut at `split`); if it is not, the
    /// witness is vacuous and `Ok(())` is returned.
    ///
    /// # Errors
    ///
    /// Returns an [`ObliviousReport`] describing the first counterexample
    /// interleaving found.
    pub fn check_witness<L, R>(
        &self,
        language: &L,
        word: &Word,
        split: usize,
        rng: &mut R,
    ) -> Result<(), ObliviousReport>
    where
        L: Language + ?Sized,
        R: Rng + ?Sized,
    {
        let alpha = word.prefix(split);
        let beta = word.suffix(split);
        if !language.accepts_run(word, split) {
            return Ok(());
        }
        let shuffle = Shuffle::of_projections(&alpha, self.n);
        let mut examined = 0usize;
        let mut try_one = |alpha_shuffled: Word| -> Option<ObliviousReport> {
            examined += 1;
            let candidate = alpha_shuffled.concat(&beta);
            if !language.accepts_run(&candidate, split) {
                Some(ObliviousReport {
                    alpha: alpha.clone(),
                    beta: beta.clone(),
                    alpha_shuffled,
                    examined,
                })
            } else {
                None
            }
        };
        match self.budget {
            ShuffleBudget::Exhaustive => {
                for alpha_shuffled in shuffle.enumerate() {
                    if let Some(report) = try_one(alpha_shuffled) {
                        return Err(report);
                    }
                }
            }
            ShuffleBudget::Sampled(samples) => {
                for _ in 0..samples {
                    let alpha_shuffled = shuffle.sample(rng);
                    if let Some(report) = try_one(alpha_shuffled) {
                        return Err(report);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Convenience wrapper: exhaustively searches for a real-time obliviousness
/// counterexample for the given member word split at `split`.
///
/// Returns `Some(report)` when the language is demonstrably *not* real-time
/// oblivious on this witness (and hence, by Theorem 5.2, not `P`-decidable
/// against the asynchronous adversary for any predicate `P`).
#[must_use]
pub fn oblivious_counterexample<L>(
    language: &L,
    n: usize,
    word: &Word,
    split: usize,
) -> Option<ObliviousReport>
where
    L: Language + ?Sized,
{
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    ObliviousnessTester::exhaustive(n)
        .check_witness(language, word, split, &mut rng)
        .err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Action, Invocation, ProcId, Response};
    use crate::word::WordBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A toy *real-time sensitive* language: every `read` must return the
    /// number of `inc` invocations that appear before it in the word (i.e., it
    /// depends on the global interleaving, not only on the projections).
    struct ExactCounter;

    impl Language for ExactCounter {
        fn name(&self) -> String {
            "EXACT_COUNTER".into()
        }
        fn accepts_prefix(&self, prefix: &Word) -> bool {
            let mut incs = 0u64;
            let mut pending_read: Vec<(ProcId, u64)> = Vec::new();
            for s in prefix.iter() {
                match &s.action {
                    Action::Invoke(Invocation::Inc) => incs += 1,
                    Action::Invoke(Invocation::Read) => pending_read.push((s.proc, incs)),
                    Action::Respond(Response::Value(v)) => {
                        if let Some(pos) = pending_read.iter().position(|(p, _)| *p == s.proc) {
                            let (_, at_invoke) = pending_read.remove(pos);
                            if *v != at_invoke {
                                return false;
                            }
                        }
                    }
                    _ => {}
                }
            }
            true
        }
    }

    /// A toy *real-time oblivious* language: every `read` of a process returns
    /// the number of `inc` invocations of the same process before it (local
    /// property only).
    struct LocalCounter;

    impl Language for LocalCounter {
        fn name(&self) -> String {
            "LOCAL_COUNTER".into()
        }
        fn accepts_prefix(&self, prefix: &Word) -> bool {
            for p in prefix.procs() {
                let mut incs = 0u64;
                let local = prefix.project(p);
                let mut expected: Option<u64> = None;
                for s in &local.symbols {
                    match &s.action {
                        Action::Invoke(Invocation::Inc) => incs += 1,
                        Action::Invoke(Invocation::Read) => expected = Some(incs),
                        Action::Respond(Response::Value(v)) => {
                            if let Some(e) = expected.take() {
                                if *v != e {
                                    return false;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            true
        }
    }

    fn witness() -> Word {
        // p1 incs, then p2 reads 1: member of ExactCounter.
        WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .build()
    }

    #[test]
    fn real_time_sensitive_language_has_counterexample() {
        let w = witness();
        let report =
            oblivious_counterexample(&ExactCounter, 2, &w, w.len()).expect("should find violation");
        assert!(report.examined >= 1);
        assert!(!report.alpha_shuffled.is_empty());
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn oblivious_language_has_no_counterexample() {
        // For LocalCounter the same witness (adjusted to be a member) cannot be
        // broken by shuffling.
        let w = WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(0))
            .build();
        assert!(oblivious_counterexample(&LocalCounter, 2, &w, w.len()).is_none());
    }

    #[test]
    fn non_member_witness_is_vacuous() {
        // A non-member word yields no counterexample by definition.
        let w = WordBuilder::new()
            .op(ProcId(1), Invocation::Read, Response::Value(5))
            .build();
        assert!(oblivious_counterexample(&ExactCounter, 2, &w, w.len()).is_none());
    }

    #[test]
    fn sampled_budget_also_finds_violations() {
        let w = witness();
        let mut rng = StdRng::seed_from_u64(5);
        let tester = ObliviousnessTester::sampled(2, 200);
        let result = tester.check_witness(&ExactCounter, &w, w.len(), &mut rng);
        assert!(result.is_err());
    }

    #[test]
    fn split_in_the_middle_keeps_beta() {
        let w = witness();
        let report = oblivious_counterexample(&ExactCounter, 2, &w, 2);
        // α = inc op, β = read op; shuffling α alone cannot break membership
        // here because α only involves p1.
        assert!(report.is_none());
    }
}
