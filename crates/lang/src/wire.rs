//! Binary payload codec: the byte-level encoding of [`Invocation`] and
//! [`Response`] values used by the network wire format.
//!
//! `drv-net` frames an [`crate::EventBatch`] as integer rows plus a
//! *dictionary* of the distinct payloads the rows reference; this module is
//! the codec for those dictionary entries (and the primitive scalars the
//! frame layer shares).  It lives in `drv-lang` because only this crate
//! knows the payload enums; everything frame-shaped (magic, kinds, CRC,
//! length prefixes) lives in `drv-net`.
//!
//! ## Hardening contract
//!
//! Decoding is driven by a bounds-checked [`Reader`]: every take checks the
//! remaining input first, every length field is validated against the bytes
//! actually present *before* any allocation is sized from it, and every
//! failure is a typed [`CodecError`] — malformed input can neither panic nor
//! over-allocate.  `crates/net/tests/wire_fuzz.rs` enforces this over seeded
//! corruption.
//!
//! All scalars are little-endian.  Collections are length-prefixed with
//! `u32` counts.

use crate::symbol::{Invocation, Response};
use std::fmt;

/// Why a payload (or scalar) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// An enum tag byte outside the known range.
    BadTag {
        /// What the tag selects.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix claims more entries than the remaining input could
    /// possibly hold (the over-allocation guard).
    LengthOverflow {
        /// What was being counted.
        what: &'static str,
        /// The claimed count.
        claimed: u64,
        /// Upper bound the remaining input admits.
        admissible: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// What the string names.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated {
                what,
                needed,
                remaining,
            } => write!(f, "truncated {what}: needed {needed} bytes, {remaining} remain"),
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            CodecError::LengthOverflow {
                what,
                claimed,
                admissible,
            } => write!(f, "{what} count {claimed} exceeds the admissible {admissible}"),
            CodecError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an input buffer; the only way bytes leave a
/// frame payload during decoding.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < len {
            return Err(CodecError::Truncated {
                what,
                needed: len,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Takes a `u32` count and validates it against the remaining input:
    /// each counted entry occupies at least `min_entry_bytes`, so a count
    /// claiming more than `remaining / min_entry_bytes` entries is rejected
    /// *before* anything is allocated from it.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the count itself is cut off;
    /// [`CodecError::LengthOverflow`] when the count cannot fit.
    pub fn count(
        &mut self,
        min_entry_bytes: usize,
        what: &'static str,
    ) -> Result<usize, CodecError> {
        let claimed = self.u32(what)?;
        let admissible = (self.remaining() / min_entry_bytes.max(1)) as u64;
        if u64::from(claimed) > admissible {
            return Err(CodecError::LengthOverflow {
                what,
                claimed: u64::from(claimed),
                admissible,
            });
        }
        Ok(claimed as usize)
    }

    /// Takes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Propagates the length/byte errors; [`CodecError::BadUtf8`] when the
    /// bytes are not UTF-8.
    pub fn string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.count(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8 { what })
    }

    /// Takes a length-prefixed sequence of `u64`s.
    ///
    /// # Errors
    ///
    /// Propagates the length/byte errors of the prefix and entries.
    pub fn u64_seq(&mut self, what: &'static str) -> Result<Vec<u64>, CodecError> {
        let len = self.count(8, what)?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(self.u64(what)?);
        }
        Ok(values)
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
///
/// # Panics
///
/// Panics when the string is 4 GiB or longer (no such payload exists in
/// practice; the wire format caps frames far below this).
pub fn put_string(buf: &mut Vec<u8>, value: &str) {
    put_u32(buf, u32::try_from(value.len()).expect("string < 4 GiB"));
    buf.extend_from_slice(value.as_bytes());
}

/// Appends a length-prefixed `u64` sequence.
///
/// # Panics
///
/// Panics on 2^32 or more entries.
pub fn put_u64_seq(buf: &mut Vec<u8>, values: &[u64]) {
    put_u32(buf, u32::try_from(values.len()).expect("sequence < 2^32 entries"));
    for &value in values {
        put_u64(buf, value);
    }
}

// Invocation tags.  Stable wire contract: never renumber, only append.
const INV_WRITE: u8 = 0;
const INV_READ: u8 = 1;
const INV_INC: u8 = 2;
const INV_APPEND: u8 = 3;
const INV_GET: u8 = 4;
const INV_ENQUEUE: u8 = 5;
const INV_DEQUEUE: u8 = 6;
const INV_PUSH: u8 = 7;
const INV_POP: u8 = 8;
const INV_CUSTOM: u8 = 9;

// Response tags.
const RESP_ACK: u8 = 0;
const RESP_VALUE: u8 = 1;
const RESP_SEQUENCE: u8 = 2;
const RESP_SOME: u8 = 3;
const RESP_NONE: u8 = 4;
const RESP_CUSTOM: u8 = 5;

/// Appends the encoding of an invocation payload.
pub fn put_invocation(buf: &mut Vec<u8>, invocation: &Invocation) {
    match invocation {
        Invocation::Write(x) => {
            buf.push(INV_WRITE);
            put_u64(buf, *x);
        }
        Invocation::Read => buf.push(INV_READ),
        Invocation::Inc => buf.push(INV_INC),
        Invocation::Append(r) => {
            buf.push(INV_APPEND);
            put_u64(buf, *r);
        }
        Invocation::Get => buf.push(INV_GET),
        Invocation::Enqueue(x) => {
            buf.push(INV_ENQUEUE);
            put_u64(buf, *x);
        }
        Invocation::Dequeue => buf.push(INV_DEQUEUE),
        Invocation::Push(x) => {
            buf.push(INV_PUSH);
            put_u64(buf, *x);
        }
        Invocation::Pop => buf.push(INV_POP),
        Invocation::Custom(name, arg) => {
            buf.push(INV_CUSTOM);
            put_string(buf, name);
            put_u64(buf, *arg);
        }
    }
}

/// Decodes one invocation payload.
///
/// # Errors
///
/// Any [`CodecError`] of the tag or its fields.
pub fn take_invocation(reader: &mut Reader<'_>) -> Result<Invocation, CodecError> {
    let tag = reader.u8("invocation tag")?;
    Ok(match tag {
        INV_WRITE => Invocation::Write(reader.u64("write value")?),
        INV_READ => Invocation::Read,
        INV_INC => Invocation::Inc,
        INV_APPEND => Invocation::Append(reader.u64("append record")?),
        INV_GET => Invocation::Get,
        INV_ENQUEUE => Invocation::Enqueue(reader.u64("enqueue value")?),
        INV_DEQUEUE => Invocation::Dequeue,
        INV_PUSH => Invocation::Push(reader.u64("push value")?),
        INV_POP => Invocation::Pop,
        INV_CUSTOM => {
            let name = reader.string("custom invocation name")?;
            Invocation::Custom(name, reader.u64("custom invocation arg")?)
        }
        tag => return Err(CodecError::BadTag { what: "invocation", tag }),
    })
}

/// Appends the encoding of a response payload.
pub fn put_response(buf: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Ack => buf.push(RESP_ACK),
        Response::Value(v) => {
            buf.push(RESP_VALUE);
            put_u64(buf, *v);
        }
        Response::Sequence(s) => {
            buf.push(RESP_SEQUENCE);
            put_u64_seq(buf, s);
        }
        Response::MaybeValue(Some(v)) => {
            buf.push(RESP_SOME);
            put_u64(buf, *v);
        }
        Response::MaybeValue(None) => buf.push(RESP_NONE),
        Response::Custom(name, v) => {
            buf.push(RESP_CUSTOM);
            put_string(buf, name);
            put_u64(buf, *v);
        }
    }
}

/// Decodes one response payload.
///
/// # Errors
///
/// Any [`CodecError`] of the tag or its fields.
pub fn take_response(reader: &mut Reader<'_>) -> Result<Response, CodecError> {
    let tag = reader.u8("response tag")?;
    Ok(match tag {
        RESP_ACK => Response::Ack,
        RESP_VALUE => Response::Value(reader.u64("response value")?),
        RESP_SEQUENCE => Response::Sequence(reader.u64_seq("response sequence")?),
        RESP_SOME => Response::MaybeValue(Some(reader.u64("response value")?)),
        RESP_NONE => Response::MaybeValue(None),
        RESP_CUSTOM => {
            let name = reader.string("custom response name")?;
            Response::Custom(name, reader.u64("custom response value")?)
        }
        tag => return Err(CodecError::BadTag { what: "response", tag }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invocations() -> Vec<Invocation> {
        vec![
            Invocation::Write(7),
            Invocation::Read,
            Invocation::Inc,
            Invocation::Append(u64::MAX),
            Invocation::Get,
            Invocation::Enqueue(0),
            Invocation::Dequeue,
            Invocation::Push(3),
            Invocation::Pop,
            Invocation::Custom("cas".into(), 9),
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Ack,
            Response::Value(42),
            Response::Sequence(vec![]),
            Response::Sequence(vec![1, 2, 3]),
            Response::MaybeValue(Some(5)),
            Response::MaybeValue(None),
            Response::Custom("cas".into(), 1),
        ]
    }

    #[test]
    fn payloads_round_trip() {
        for invocation in invocations() {
            let mut buf = Vec::new();
            put_invocation(&mut buf, &invocation);
            let mut reader = Reader::new(&buf);
            assert_eq!(take_invocation(&mut reader).unwrap(), invocation);
            assert!(reader.is_empty(), "{invocation:?} left bytes behind");
        }
        for response in responses() {
            let mut buf = Vec::new();
            put_response(&mut buf, &response);
            let mut reader = Reader::new(&buf);
            assert_eq!(take_response(&mut reader).unwrap(), response);
            assert!(reader.is_empty(), "{response:?} left bytes behind");
        }
    }

    #[test]
    fn truncation_yields_typed_errors_at_every_cut() {
        for invocation in invocations() {
            let mut buf = Vec::new();
            put_invocation(&mut buf, &invocation);
            for cut in 0..buf.len() {
                let err = take_invocation(&mut Reader::new(&buf[..cut]))
                    .expect_err("truncated input must fail");
                assert!(
                    matches!(err, CodecError::Truncated { .. } | CodecError::LengthOverflow { .. }),
                    "{invocation:?} cut at {cut}: {err:?}"
                );
            }
        }
        for response in responses() {
            let mut buf = Vec::new();
            put_response(&mut buf, &response);
            for cut in 0..buf.len() {
                assert!(
                    take_response(&mut Reader::new(&buf[..cut])).is_err(),
                    "{response:?} cut at {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        for tag in [10u8, 0x7f, 0xff] {
            assert_eq!(
                take_invocation(&mut Reader::new(&[tag])),
                Err(CodecError::BadTag { what: "invocation", tag })
            );
        }
        for tag in [6u8, 0x80] {
            assert_eq!(
                take_response(&mut Reader::new(&[tag])),
                Err(CodecError::BadTag { what: "response", tag })
            );
        }
    }

    #[test]
    fn oversized_length_prefixes_cannot_allocate() {
        // A sequence response claiming u32::MAX entries backed by 0 bytes:
        // the count guard must reject it before any allocation is sized.
        let mut buf = vec![RESP_SEQUENCE];
        put_u32(&mut buf, u32::MAX);
        match take_response(&mut Reader::new(&buf)) {
            Err(CodecError::LengthOverflow { claimed, admissible, .. }) => {
                assert_eq!(claimed, u64::from(u32::MAX));
                assert_eq!(admissible, 0);
            }
            other => panic!("expected LengthOverflow, got {other:?}"),
        }
        // Same for a custom-invocation string.
        let mut buf = vec![INV_CUSTOM];
        put_u32(&mut buf, 1_000_000);
        buf.push(b'x');
        assert!(matches!(
            take_invocation(&mut Reader::new(&buf)),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn non_utf8_strings_are_rejected() {
        let mut buf = vec![INV_CUSTOM];
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        put_u64(&mut buf, 1);
        assert_eq!(
            take_invocation(&mut Reader::new(&buf)),
            Err(CodecError::BadUtf8 { what: "custom invocation name" })
        );
    }

    #[test]
    fn reader_reports_remaining() {
        let mut reader = Reader::new(&[1, 2, 3, 4, 5]);
        assert_eq!(reader.remaining(), 5);
        assert_eq!(reader.u8("byte").unwrap(), 1);
        assert_eq!(reader.u32("word").unwrap(), u32::from_le_bytes([2, 3, 4, 5]));
        assert!(reader.is_empty());
        assert!(reader.u8("byte").is_err());
    }
}
