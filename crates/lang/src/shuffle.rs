//! The shuffle operator of Definition 5.2.
//!
//! `x₁ ⧢ … ⧢ xₘ` denotes the set of all interleavings of the words
//! `x₁, …, xₘ`.  The paper uses shuffles of the *local projections* of a
//! finite prefix `α` to define real-time obliviousness (Definition 5.3): a
//! language is real-time oblivious when replacing `α` by any interleaving
//! `α' ∈ α|₁ ⧢ … ⧢ α|ₙ` preserves membership.

use crate::symbol::Symbol;
use crate::word::{LocalWord, Word};
use rand::Rng;

/// A set of words to be interleaved.
#[derive(Debug, Clone, Default)]
pub struct Shuffle {
    parts: Vec<Vec<Symbol>>,
}

impl Shuffle {
    /// Creates a shuffle of the given local words.
    #[must_use]
    pub fn of_locals(locals: &[LocalWord]) -> Self {
        Shuffle {
            parts: locals.iter().map(|l| l.symbols.clone()).collect(),
        }
    }

    /// Creates a shuffle of the local projections `x|₀ … x|_{n-1}` of a word.
    #[must_use]
    pub fn of_projections(word: &Word, n: usize) -> Self {
        Shuffle::of_locals(&word.projections(n))
    }

    /// Creates a shuffle of arbitrary words.
    #[must_use]
    pub fn of_words(words: &[Word]) -> Self {
        Shuffle {
            parts: words.iter().map(|w| w.symbols().to_vec()).collect(),
        }
    }

    /// Total number of symbols across all parts.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Number of distinct interleavings (the multinomial coefficient), or
    /// `None` on overflow.
    #[must_use]
    pub fn count(&self) -> Option<u128> {
        let mut total: u128 = 0;
        let mut result: u128 = 1;
        for part in &self.parts {
            for k in 1..=(part.len() as u128) {
                total += 1;
                result = result.checked_mul(total)?.checked_div(k)?;
            }
        }
        Some(result)
    }

    /// Enumerates all interleavings.  Exponential; intended for small words
    /// (the proof constructions use a handful of symbols).
    #[must_use]
    pub fn enumerate(&self) -> Vec<Word> {
        let mut out = Vec::new();
        let mut indices = vec![0usize; self.parts.len()];
        let mut current = Vec::with_capacity(self.total_len());
        self.enumerate_rec(&mut indices, &mut current, &mut out);
        out
    }

    fn enumerate_rec(&self, indices: &mut [usize], current: &mut Vec<Symbol>, out: &mut Vec<Word>) {
        if current.len() == self.total_len() {
            out.push(Word::from_symbols(current.clone()));
            return;
        }
        for p in 0..self.parts.len() {
            if indices[p] < self.parts[p].len() {
                current.push(self.parts[p][indices[p]].clone());
                indices[p] += 1;
                self.enumerate_rec(indices, current, out);
                indices[p] -= 1;
                current.pop();
            }
        }
    }

    /// Samples one interleaving uniformly at random among positions (each step
    /// picks the next part with probability proportional to its remaining
    /// length, which yields the uniform distribution over interleavings).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Word {
        let mut remaining: Vec<usize> = self.parts.iter().map(Vec::len).collect();
        let mut indices = vec![0usize; self.parts.len()];
        let mut total: usize = remaining.iter().sum();
        let mut symbols = Vec::with_capacity(total);
        while total > 0 {
            let mut pick = rng.gen_range(0..total);
            let mut chosen = 0;
            for (p, r) in remaining.iter().enumerate() {
                if pick < *r {
                    chosen = p;
                    break;
                }
                pick -= r;
            }
            symbols.push(self.parts[chosen][indices[chosen]].clone());
            indices[chosen] += 1;
            remaining[chosen] -= 1;
            total -= 1;
        }
        Word::from_symbols(symbols)
    }
}

/// Enumerates all interleavings of the local projections of `word` for `n`
/// processes (convenience wrapper over [`Shuffle`]).
#[must_use]
pub fn enumerate_shuffles(word: &Word, n: usize) -> Vec<Word> {
    Shuffle::of_projections(word, n).enumerate()
}

/// Samples a random interleaving of the local projections of `word`.
pub fn random_shuffle<R: Rng + ?Sized>(word: &Word, n: usize, rng: &mut R) -> Word {
    Shuffle::of_projections(word, n).sample(rng)
}

/// Returns `true` when `candidate` is an interleaving of the local projections
/// of `original` for `n` processes, i.e. `candidate ∈ original|₁ ⧢ … ⧢ original|ₙ`.
#[must_use]
pub fn is_interleaving_of(candidate: &Word, original: &Word, n: usize) -> bool {
    if candidate.len() != original.len() {
        return false;
    }
    for p in crate::symbol::ProcId::all(n.max(
        original
            .procs()
            .iter()
            .map(|p| p.0 + 1)
            .max()
            .unwrap_or(0),
    )) {
        if candidate.project(p) != original.project(p) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Invocation, ProcId, Response};
    use crate::word::WordBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_proc_word() -> Word {
        WordBuilder::new()
            .op(ProcId(0), Invocation::Write(1), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .build()
    }

    #[test]
    fn count_matches_enumeration() {
        let shuffle = Shuffle::of_projections(&two_proc_word(), 2);
        let all = shuffle.enumerate();
        assert_eq!(shuffle.count(), Some(all.len() as u128));
        // C(4,2) = 6 interleavings of two 2-symbol words.
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn enumeration_preserves_projections() {
        let w = two_proc_word();
        for candidate in enumerate_shuffles(&w, 2) {
            assert!(is_interleaving_of(&candidate, &w, 2));
            assert_eq!(candidate.len(), w.len());
        }
    }

    #[test]
    fn original_word_is_one_of_its_shuffles() {
        let w = two_proc_word();
        let all = enumerate_shuffles(&w, 2);
        assert!(all.contains(&w));
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let w = two_proc_word();
        let all = enumerate_shuffles(&w, 2);
        let mut dedup = all.clone();
        dedup.sort_by_key(|x| format!("{x}"));
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn sampling_yields_valid_interleavings() {
        let w = two_proc_word();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let s = random_shuffle(&w, 2, &mut rng);
            assert!(is_interleaving_of(&s, &w, 2));
        }
    }

    #[test]
    fn is_interleaving_rejects_wrong_words() {
        let w = two_proc_word();
        let other = WordBuilder::new()
            .op(ProcId(0), Invocation::Write(2), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(1))
            .build();
        assert!(!is_interleaving_of(&other, &w, 2));
        let shorter = w.prefix(2);
        assert!(!is_interleaving_of(&shorter, &w, 2));
    }

    #[test]
    fn empty_shuffle() {
        let shuffle = Shuffle::default();
        assert_eq!(shuffle.total_len(), 0);
        assert_eq!(shuffle.count(), Some(1));
        assert_eq!(shuffle.enumerate().len(), 1);
        assert!(shuffle.enumerate()[0].is_empty());
    }

    #[test]
    fn three_way_shuffle_counts() {
        let w = WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .op(ProcId(1), Invocation::Inc, Response::Ack)
            .op(ProcId(2), Invocation::Read, Response::Value(2))
            .build();
        let shuffle = Shuffle::of_projections(&w, 3);
        // multinomial(6; 2,2,2) = 90
        assert_eq!(shuffle.count(), Some(90));
        assert_eq!(shuffle.enumerate().len(), 90);
    }

    #[test]
    fn of_words_behaves_like_of_locals() {
        let a = WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .build();
        let b = WordBuilder::new()
            .op(ProcId(1), Invocation::Read, Response::Value(0))
            .build();
        let shuffle = Shuffle::of_words(&[a, b]);
        assert_eq!(shuffle.enumerate().len(), 6);
    }
}
