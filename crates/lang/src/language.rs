//! Distributed languages (Definition 2.2) and a finitary evaluation interface.
//!
//! A distributed language is a set of well-formed ω-words.  Runtime monitors
//! only ever see finite prefixes, so this crate exposes languages through two
//! finitary views:
//!
//! * [`Language::accepts_prefix`] — the *safety* view: is this finite prefix
//!   consistent with membership?  For prefix-closed languages (linearizability,
//!   sequential consistency) this is exact: an ω-word is in the language iff
//!   every finite prefix is accepted.
//! * [`Language::accepts_run`] — the *cut-based* view used for eventual
//!   ("Büchi-style") properties: the finite word is interpreted as a prefix
//!   `α` (up to `cut`) followed by a probe suffix `β`; eventual clauses (e.g.
//!   clause (3) of the weakly-eventual counter) are evaluated on the suffix.
//!
//! The same interface is used by the decidability evaluators in `drv-core` and
//! by the real-time obliviousness tester of [`crate::oblivious`].

use crate::word::Word;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Outcome of evaluating a finite run against a language, with an explanation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunVerdict {
    /// The run is consistent with membership.
    Member,
    /// The run witnesses non-membership; the string explains why.
    NonMember(String),
}

impl RunVerdict {
    /// Returns `true` for [`RunVerdict::Member`].
    #[must_use]
    pub fn is_member(&self) -> bool {
        matches!(self, RunVerdict::Member)
    }

    /// Builds a verdict from a boolean and a lazily-computed reason.
    #[must_use]
    pub fn from_bool(member: bool, reason: impl FnOnce() -> String) -> Self {
        if member {
            RunVerdict::Member
        } else {
            RunVerdict::NonMember(reason())
        }
    }
}

impl fmt::Display for RunVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunVerdict::Member => write!(f, "member"),
            RunVerdict::NonMember(reason) => write!(f, "non-member: {reason}"),
        }
    }
}

/// A distributed language over the concrete alphabet of this crate.
///
/// Implementations live mostly in `drv-consistency` (the seven Table 1
/// languages).  The trait is object safe so languages can be composed and
/// passed to generic evaluators as `&dyn Language` or `Arc<dyn Language>`.
pub trait Language: Send + Sync {
    /// Human-readable name of the language (e.g. `"LIN_REG"`).
    fn name(&self) -> String;

    /// Safety view: is the finite prefix consistent with membership?
    fn accepts_prefix(&self, prefix: &Word) -> bool;

    /// Whether the language is *prefix-closed*: a violation in some prefix can
    /// never be fixed by future symbols.  Linearizability and sequential
    /// consistency are prefix-closed; the eventual languages are not.
    fn is_prefix_closed(&self) -> bool {
        true
    }

    /// Cut-based view for eventual properties.  The word is read as `α·β` with
    /// `|α| = cut`; safety clauses are evaluated on the whole word and
    /// eventual clauses on the suffix `β`.  The default implementation simply
    /// ignores the cut and delegates to [`Language::accepts_prefix`], which is
    /// exact for prefix-closed languages.
    fn accepts_run(&self, word: &Word, cut: usize) -> bool {
        let _ = cut;
        self.accepts_prefix(word)
    }

    /// Like [`Language::accepts_run`] but returns an explanation for
    /// non-membership.  The default implementation has a generic reason.
    fn judge_run(&self, word: &Word, cut: usize) -> RunVerdict {
        RunVerdict::from_bool(self.accepts_run(word, cut), || {
            format!("{} rejects the run", self.name())
        })
    }
}

impl<L: Language + ?Sized> Language for &L {
    fn name(&self) -> String {
        (**self).name()
    }
    fn accepts_prefix(&self, prefix: &Word) -> bool {
        (**self).accepts_prefix(prefix)
    }
    fn is_prefix_closed(&self) -> bool {
        (**self).is_prefix_closed()
    }
    fn accepts_run(&self, word: &Word, cut: usize) -> bool {
        (**self).accepts_run(word, cut)
    }
    fn judge_run(&self, word: &Word, cut: usize) -> RunVerdict {
        (**self).judge_run(word, cut)
    }
}

impl<L: Language + ?Sized> Language for Arc<L> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn accepts_prefix(&self, prefix: &Word) -> bool {
        (**self).accepts_prefix(prefix)
    }
    fn is_prefix_closed(&self) -> bool {
        (**self).is_prefix_closed()
    }
    fn accepts_run(&self, word: &Word, cut: usize) -> bool {
        (**self).accepts_run(word, cut)
    }
    fn judge_run(&self, word: &Word, cut: usize) -> RunVerdict {
        (**self).judge_run(word, cut)
    }
}

impl<L: Language + ?Sized> Language for Box<L> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn accepts_prefix(&self, prefix: &Word) -> bool {
        (**self).accepts_prefix(prefix)
    }
    fn is_prefix_closed(&self) -> bool {
        (**self).is_prefix_closed()
    }
    fn accepts_run(&self, word: &Word, cut: usize) -> bool {
        (**self).accepts_run(word, cut)
    }
    fn judge_run(&self, word: &Word, cut: usize) -> RunVerdict {
        (**self).judge_run(word, cut)
    }
}

/// The complement of a language (Section 7 asks whether the complement of
/// `EC_LED` is in PWD; the combinator makes such questions expressible).
///
/// Note the complement of a prefix-closed language is generally *not*
/// prefix-closed, so [`Language::is_prefix_closed`] is `false`.
#[derive(Clone)]
pub struct Complement<L> {
    inner: L,
}

impl<L: Language> Complement<L> {
    /// Wraps a language into its complement.
    pub fn new(inner: L) -> Self {
        Complement { inner }
    }
}

impl<L: Language> Language for Complement<L> {
    fn name(&self) -> String {
        format!("¬{}", self.inner.name())
    }

    fn accepts_prefix(&self, prefix: &Word) -> bool {
        !self.inner.accepts_prefix(prefix)
    }

    fn is_prefix_closed(&self) -> bool {
        false
    }

    fn accepts_run(&self, word: &Word, cut: usize) -> bool {
        !self.inner.accepts_run(word, cut)
    }
}

/// The intersection of two languages.
#[derive(Clone)]
pub struct Intersection<A, B> {
    left: A,
    right: B,
}

impl<A: Language, B: Language> Intersection<A, B> {
    /// Builds the intersection `left ∩ right`.
    pub fn new(left: A, right: B) -> Self {
        Intersection { left, right }
    }
}

impl<A: Language, B: Language> Language for Intersection<A, B> {
    fn name(&self) -> String {
        format!("({} ∩ {})", self.left.name(), self.right.name())
    }

    fn accepts_prefix(&self, prefix: &Word) -> bool {
        self.left.accepts_prefix(prefix) && self.right.accepts_prefix(prefix)
    }

    fn is_prefix_closed(&self) -> bool {
        self.left.is_prefix_closed() && self.right.is_prefix_closed()
    }

    fn accepts_run(&self, word: &Word, cut: usize) -> bool {
        self.left.accepts_run(word, cut) && self.right.accepts_run(word, cut)
    }
}

/// The union of two languages.
#[derive(Clone)]
pub struct Union<A, B> {
    left: A,
    right: B,
}

impl<A: Language, B: Language> Union<A, B> {
    /// Builds the union `left ∪ right`.
    pub fn new(left: A, right: B) -> Self {
        Union { left, right }
    }
}

impl<A: Language, B: Language> Language for Union<A, B> {
    fn name(&self) -> String {
        format!("({} ∪ {})", self.left.name(), self.right.name())
    }

    fn accepts_prefix(&self, prefix: &Word) -> bool {
        self.left.accepts_prefix(prefix) || self.right.accepts_prefix(prefix)
    }

    fn is_prefix_closed(&self) -> bool {
        // The union of prefix-closed languages is prefix-closed.
        self.left.is_prefix_closed() && self.right.is_prefix_closed()
    }

    fn accepts_run(&self, word: &Word, cut: usize) -> bool {
        self.left.accepts_run(word, cut) || self.right.accepts_run(word, cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Invocation, ProcId, Response};
    use crate::word::WordBuilder;

    /// A toy language: words with at most `max` symbols of process p1.
    struct AtMost {
        max: usize,
    }

    impl Language for AtMost {
        fn name(&self) -> String {
            format!("AT_MOST_{}", self.max)
        }
        fn accepts_prefix(&self, prefix: &Word) -> bool {
            let ops_of_p1 = prefix
                .project(ProcId(0))
                .symbols
                .iter()
                .filter(|s| s.is_invocation())
                .count();
            ops_of_p1 <= self.max
        }
    }

    fn word(len: usize) -> Word {
        let mut b = WordBuilder::new();
        for _ in 0..len {
            b = b.op(ProcId(0), Invocation::Inc, Response::Ack);
        }
        b.build()
    }

    #[test]
    fn default_run_semantics_ignores_cut() {
        let l = AtMost { max: 2 };
        assert!(l.accepts_run(&word(1), 0));
        assert!(!l.accepts_run(&word(3), 1));
        assert!(l.is_prefix_closed());
    }

    #[test]
    fn judge_run_explains_rejection() {
        let l = AtMost { max: 0 };
        match l.judge_run(&word(1), 0) {
            RunVerdict::NonMember(reason) => assert!(reason.contains("AT_MOST_0")),
            RunVerdict::Member => panic!("expected rejection"),
        }
        assert!(l.judge_run(&Word::new(), 0).is_member());
    }

    #[test]
    fn complement_flips_membership() {
        let c = Complement::new(AtMost { max: 0 });
        assert!(!c.accepts_prefix(&Word::new()));
        assert!(c.accepts_prefix(&word(1)));
        assert!(!c.is_prefix_closed());
        assert!(c.name().starts_with('¬'));
    }

    #[test]
    fn intersection_and_union() {
        let i = Intersection::new(AtMost { max: 2 }, AtMost { max: 1 });
        assert!(i.accepts_prefix(&word(1)));
        assert!(!i.accepts_prefix(&word(2)));
        assert!(i.is_prefix_closed());
        assert!(i.name().contains('∩'));

        let u = Union::new(AtMost { max: 0 }, AtMost { max: 2 });
        assert!(u.accepts_prefix(&word(2)));
        assert!(!u.accepts_prefix(&word(3)));
        assert!(u.name().contains('∪'));
    }

    #[test]
    fn blanket_impls_forward() {
        let l = AtMost { max: 1 };
        let by_ref: &dyn Language = &l;
        assert_eq!(by_ref.name(), "AT_MOST_1");
        assert!(by_ref.accepts_prefix(&word(1)));
        let arc: Arc<dyn Language> = Arc::new(AtMost { max: 1 });
        assert!(arc.accepts_run(&word(1), 0));
        assert!(arc.judge_run(&word(1), 0).is_member());
        let boxed: Box<dyn Language> = Box::new(AtMost { max: 1 });
        assert!(boxed.is_prefix_closed());
        assert_eq!((&&l).name(), "AT_MOST_1");
    }

    #[test]
    fn run_verdict_display() {
        assert_eq!(RunVerdict::Member.to_string(), "member");
        assert!(RunVerdict::NonMember("bad".into())
            .to_string()
            .contains("bad"));
        assert!(RunVerdict::from_bool(true, || "x".into()).is_member());
    }
}
