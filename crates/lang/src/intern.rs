//! Interned, `Copy`-able representations of invocations, responses and
//! operations.
//!
//! The consistency checkers spend their inner loop comparing and hashing
//! operations.  With the plain [`Invocation`] / [`Response`] enums that means
//! cloning and hashing heap data (ledger sequences, `Custom` strings) once
//! per DFS node.  An [`Interner`] assigns each distinct payload a dense `u32`
//! arena id exactly once; afterwards operations are [`OpRecord`]s — small,
//! `Copy`, compared and hashed as integers — and the payloads are resolved
//! back only at the edges (calling into a sequential specification,
//! materializing a witness).
//!
//! Ids are only meaningful relative to the interner that produced them;
//! nothing enforces this at the type level, so keep one interner per engine
//! (the incremental checker owns its own).

use crate::operation::OpId;
use crate::symbol::{Invocation, ProcId, Response};
use std::collections::HashMap;
use std::fmt;

/// Dense arena id of an interned [`Invocation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InvocationId(pub u32);

/// Dense arena id of an interned [`Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResponseId(pub u32);

impl fmt::Display for InvocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv#{}", self.0)
    }
}

impl fmt::Display for ResponseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resp#{}", self.0)
    }
}

/// Two-sided arena mapping invocations and responses to dense `u32` ids.
///
/// Each distinct payload (including the strings inside
/// [`Invocation::Custom`] / [`Response::Custom`] and the record sequences
/// inside [`Response::Sequence`]) is cloned and hashed exactly once, on first
/// sight; every later occurrence costs one hash-map probe and yields a `Copy`
/// id.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    invocations: Vec<Invocation>,
    responses: Vec<Response>,
    invocation_ids: HashMap<Invocation, InvocationId>,
    response_ids: HashMap<Response, ResponseId>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns an invocation, returning its id (stable across repeats).
    pub fn invocation(&mut self, invocation: &Invocation) -> InvocationId {
        if let Some(id) = self.invocation_ids.get(invocation) {
            return *id;
        }
        let id = InvocationId(u32::try_from(self.invocations.len()).expect("< 2^32 invocations"));
        self.invocations.push(invocation.clone());
        self.invocation_ids.insert(invocation.clone(), id);
        id
    }

    /// Interns a response, returning its id (stable across repeats).
    pub fn response(&mut self, response: &Response) -> ResponseId {
        if let Some(id) = self.response_ids.get(response) {
            return *id;
        }
        let id = ResponseId(u32::try_from(self.responses.len()).expect("< 2^32 responses"));
        self.responses.push(response.clone());
        self.response_ids.insert(response.clone(), id);
        id
    }

    /// The invocation behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different interner.
    #[must_use]
    pub fn resolve_invocation(&self, id: InvocationId) -> &Invocation {
        &self.invocations[id.0 as usize]
    }

    /// The response behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different interner.
    #[must_use]
    pub fn resolve_response(&self, id: ResponseId) -> &Response {
        &self.responses[id.0 as usize]
    }

    /// Number of distinct invocations interned so far.
    #[must_use]
    pub fn invocation_count(&self) -> usize {
        self.invocations.len()
    }

    /// Number of distinct responses interned so far.
    #[must_use]
    pub fn response_count(&self) -> usize {
        self.responses.len()
    }

    /// The id of an already-interned invocation, without interning.
    #[must_use]
    pub fn lookup_invocation(&self, invocation: &Invocation) -> Option<InvocationId> {
        self.invocation_ids.get(invocation).copied()
    }

    /// The id of an already-interned response, without interning.
    #[must_use]
    pub fn lookup_response(&self, response: &Response) -> Option<ResponseId> {
        self.response_ids.get(response).copied()
    }

    /// The invocation arena entries appended since `from` (ids `from..`).
    #[must_use]
    pub fn invocations_since(&self, from: usize) -> &[Invocation] {
        &self.invocations[from.min(self.invocations.len())..]
    }

    /// The response arena entries appended since `from` (ids `from..`).
    #[must_use]
    pub fn responses_since(&self, from: usize) -> &[Response] {
        &self.responses[from.min(self.responses.len())..]
    }
}

/// A thread-safe interner shared by many engine shards.
///
/// The same versioned pattern as `drv_shmem::SharedArray`: the arenas only
/// ever *grow*, so a reader that remembers the arena lengths it has already
/// seen (its *version vector*) can refresh a lock-free local
/// [`InternerMirror`] by copying just the tail entries appended since —
/// resolving an id then never takes the lock on the hot path.
///
/// Interning takes a read lock for the (overwhelmingly common) already-known
/// probe and upgrades to a write lock only on first sight of a payload, so
/// concurrent shards interleave freely.
///
/// ```
/// use drv_lang::{Invocation, InternerMirror, SharedInterner};
///
/// let shared = SharedInterner::new();
/// let id = shared.invocation(&Invocation::Write(7));
/// let mut mirror = InternerMirror::new();
/// mirror.sync(&shared);
/// assert_eq!(mirror.resolve_invocation(id), &Invocation::Write(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedInterner {
    inner: std::sync::Arc<parking_lot::RwLock<Interner>>,
}

impl SharedInterner {
    /// Creates an empty shared interner.
    #[must_use]
    pub fn new() -> Self {
        SharedInterner::default()
    }

    /// Interns an invocation (read-probe fast path, write lock on first
    /// sight), returning its id.
    pub fn invocation(&self, invocation: &Invocation) -> InvocationId {
        if let Some(id) = self.inner.read().lookup_invocation(invocation) {
            return id;
        }
        self.inner.write().invocation(invocation)
    }

    /// Interns a response, returning its id.
    pub fn response(&self, response: &Response) -> ResponseId {
        if let Some(id) = self.inner.read().lookup_response(response) {
            return id;
        }
        self.inner.write().response(response)
    }

    /// The arena lengths `(invocations, responses)` — the version vector of
    /// the mirror pattern.
    #[must_use]
    pub fn versions(&self) -> (usize, usize) {
        let guard = self.inner.read();
        (guard.invocation_count(), guard.response_count())
    }

    /// Clones the invocation behind an id out of the arena (mirror-free
    /// slow path; use an [`InternerMirror`] in loops).
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different interner.
    #[must_use]
    pub fn resolve_invocation(&self, id: InvocationId) -> Invocation {
        self.inner.read().resolve_invocation(id).clone()
    }

    /// Clones the response behind an id out of the arena.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different interner.
    #[must_use]
    pub fn resolve_response(&self, id: ResponseId) -> Response {
        self.inner.read().resolve_response(id).clone()
    }
}

/// A reader's lock-free local copy of a [`SharedInterner`]'s arenas, grown
/// by version deltas: [`InternerMirror::sync`] copies only the entries
/// appended since the previous sync.
#[derive(Debug, Clone, Default)]
pub struct InternerMirror {
    invocations: Vec<Invocation>,
    responses: Vec<Response>,
}

impl InternerMirror {
    /// Creates an empty mirror (version vector `(0, 0)`).
    #[must_use]
    pub fn new() -> Self {
        InternerMirror::default()
    }

    /// Refreshes the mirror: copies the arena entries appended since the
    /// last sync and returns how many `(invocations, responses)` arrived.
    pub fn sync(&mut self, shared: &SharedInterner) -> (usize, usize) {
        let guard = shared.inner.read();
        let new_invocations = guard.invocations_since(self.invocations.len());
        let new_responses = guard.responses_since(self.responses.len());
        let delta = (new_invocations.len(), new_responses.len());
        self.invocations.extend_from_slice(new_invocations);
        self.responses.extend_from_slice(new_responses);
        delta
    }

    /// The invocation behind an id, without locking.
    ///
    /// # Panics
    ///
    /// Panics when the id is newer than the last [`InternerMirror::sync`]
    /// (or came from a different interner).
    #[must_use]
    pub fn resolve_invocation(&self, id: InvocationId) -> &Invocation {
        &self.invocations[id.0 as usize]
    }

    /// The response behind an id, without locking.
    ///
    /// # Panics
    ///
    /// Panics when the id is newer than the last sync.
    #[must_use]
    pub fn resolve_response(&self, id: ResponseId) -> &Response {
        &self.responses[id.0 as usize]
    }

    /// The mirror's version vector (how much of the arenas it has copied).
    #[must_use]
    pub fn versions(&self) -> (usize, usize) {
        (self.invocations.len(), self.responses.len())
    }
}

/// A matched invocation/response pair in interned form: 32 bytes, `Copy`,
/// integer-compared — the operation representation of the incremental
/// checking engine (the heavyweight sibling is [`crate::Operation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRecord {
    /// Identifier of this operation (its index in the history).
    pub id: OpId,
    /// The invoking process.
    pub proc: ProcId,
    /// Interned invocation payload.
    pub invocation: InvocationId,
    /// Interned response payload, if the operation is complete.
    pub response: Option<ResponseId>,
    /// Position of the invocation symbol in the word.
    pub inv_pos: u32,
    /// Position of the response symbol in the word, if complete.
    pub resp_pos: Option<u32>,
    /// 0-based sequence number among the operations of the same process.
    pub local_index: u32,
}

impl OpRecord {
    /// Returns `true` when the operation has a response.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.resp_pos.is_some()
    }

    /// Returns `true` when the operation is pending.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.resp_pos.is_none()
    }

    /// Returns `true` when `self` precedes `other` in real time.
    #[must_use]
    pub fn precedes(&self, other: &OpRecord) -> bool {
        match self.resp_pos {
            Some(r) => r < other.inv_pos,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_interner_is_idempotent_across_threads() {
        let shared = SharedInterner::new();
        let ids: Vec<InvocationId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let shared = shared.clone();
                    scope.spawn(move || shared.invocation(&Invocation::Write(42)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(shared.versions().0, 1);
        assert_eq!(shared.resolve_invocation(ids[0]), Invocation::Write(42));
    }

    #[test]
    fn mirror_syncs_only_deltas() {
        let shared = SharedInterner::new();
        let w = shared.invocation(&Invocation::Write(1));
        let ack = shared.response(&Response::Ack);
        let mut mirror = InternerMirror::new();
        assert_eq!(mirror.sync(&shared), (1, 1));
        assert_eq!(mirror.resolve_invocation(w), &Invocation::Write(1));
        assert_eq!(mirror.resolve_response(ack), &Response::Ack);
        // No growth → empty delta.
        assert_eq!(mirror.sync(&shared), (0, 0));
        let r = shared.invocation(&Invocation::Read);
        assert_eq!(mirror.sync(&shared), (1, 0));
        assert_eq!(mirror.resolve_invocation(r), &Invocation::Read);
        assert_eq!(mirror.versions(), shared.versions());
    }

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let mut interner = Interner::new();
        let w1 = interner.invocation(&Invocation::Write(1));
        let w1_again = interner.invocation(&Invocation::Write(1));
        let w2 = interner.invocation(&Invocation::Write(2));
        assert_eq!(w1, w1_again);
        assert_ne!(w1, w2);
        assert_eq!(interner.resolve_invocation(w1), &Invocation::Write(1));
        assert_eq!(interner.invocation_count(), 2);

        let ack = interner.response(&Response::Ack);
        let seq = interner.response(&Response::Sequence(vec![1, 2]));
        assert_eq!(interner.response(&Response::Ack), ack);
        assert_eq!(
            interner.resolve_response(seq),
            &Response::Sequence(vec![1, 2])
        );
        assert_eq!(interner.response_count(), 2);
    }

    #[test]
    fn custom_strings_are_interned_once() {
        let mut interner = Interner::new();
        let a = interner.invocation(&Invocation::Custom("cas".into(), 1));
        let b = interner.invocation(&Invocation::Custom("cas".into(), 1));
        let c = interner.invocation(&Invocation::Custom("cas".into(), 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.invocation_count(), 2);
    }

    #[test]
    fn op_record_is_small_and_copy() {
        // The whole point of the record: pass-by-value in the inner loop.
        assert!(std::mem::size_of::<OpRecord>() <= 48);
        let record = OpRecord {
            id: OpId(0),
            proc: ProcId(1),
            invocation: InvocationId(0),
            response: Some(ResponseId(0)),
            inv_pos: 0,
            resp_pos: Some(3),
            local_index: 0,
        };
        let copy = record;
        assert_eq!(copy, record);
        assert!(record.is_complete());
        assert!(!record.is_pending());
    }

    #[test]
    fn op_record_precedence_matches_operation_semantics() {
        let a = OpRecord {
            id: OpId(0),
            proc: ProcId(0),
            invocation: InvocationId(0),
            response: Some(ResponseId(0)),
            inv_pos: 0,
            resp_pos: Some(1),
            local_index: 0,
        };
        let b = OpRecord {
            id: OpId(1),
            proc: ProcId(1),
            invocation: InvocationId(1),
            response: None,
            inv_pos: 2,
            resp_pos: None,
            local_index: 0,
        };
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
    }
}
