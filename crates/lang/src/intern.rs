//! Interned, `Copy`-able representations of invocations, responses and
//! operations.
//!
//! The consistency checkers spend their inner loop comparing and hashing
//! operations.  With the plain [`Invocation`] / [`Response`] enums that means
//! cloning and hashing heap data (ledger sequences, `Custom` strings) once
//! per DFS node.  An [`Interner`] assigns each distinct payload a dense `u32`
//! arena id exactly once; afterwards operations are [`OpRecord`]s — small,
//! `Copy`, compared and hashed as integers — and the payloads are resolved
//! back only at the edges (calling into a sequential specification,
//! materializing a witness).
//!
//! Ids are only meaningful relative to the interner that produced them;
//! nothing enforces this at the type level, so keep one interner per engine
//! (the incremental checker owns its own).

use crate::operation::OpId;
use crate::symbol::{Invocation, ProcId, Response};
use std::collections::HashMap;
use std::fmt;

/// Dense arena id of an interned [`Invocation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InvocationId(pub u32);

/// Dense arena id of an interned [`Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResponseId(pub u32);

impl fmt::Display for InvocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv#{}", self.0)
    }
}

impl fmt::Display for ResponseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resp#{}", self.0)
    }
}

/// Two-sided arena mapping invocations and responses to dense `u32` ids.
///
/// Each distinct payload (including the strings inside
/// [`Invocation::Custom`] / [`Response::Custom`] and the record sequences
/// inside [`Response::Sequence`]) is cloned and hashed exactly once, on first
/// sight; every later occurrence costs one hash-map probe and yields a `Copy`
/// id.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    invocations: Vec<Invocation>,
    responses: Vec<Response>,
    invocation_ids: HashMap<Invocation, InvocationId>,
    response_ids: HashMap<Response, ResponseId>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns an invocation, returning its id (stable across repeats).
    pub fn invocation(&mut self, invocation: &Invocation) -> InvocationId {
        if let Some(id) = self.invocation_ids.get(invocation) {
            return *id;
        }
        let id = InvocationId(u32::try_from(self.invocations.len()).expect("< 2^32 invocations"));
        self.invocations.push(invocation.clone());
        self.invocation_ids.insert(invocation.clone(), id);
        id
    }

    /// Interns a response, returning its id (stable across repeats).
    pub fn response(&mut self, response: &Response) -> ResponseId {
        if let Some(id) = self.response_ids.get(response) {
            return *id;
        }
        let id = ResponseId(u32::try_from(self.responses.len()).expect("< 2^32 responses"));
        self.responses.push(response.clone());
        self.response_ids.insert(response.clone(), id);
        id
    }

    /// The invocation behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different interner.
    #[must_use]
    pub fn resolve_invocation(&self, id: InvocationId) -> &Invocation {
        &self.invocations[id.0 as usize]
    }

    /// The response behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different interner.
    #[must_use]
    pub fn resolve_response(&self, id: ResponseId) -> &Response {
        &self.responses[id.0 as usize]
    }

    /// Number of distinct invocations interned so far.
    #[must_use]
    pub fn invocation_count(&self) -> usize {
        self.invocations.len()
    }

    /// Number of distinct responses interned so far.
    #[must_use]
    pub fn response_count(&self) -> usize {
        self.responses.len()
    }
}

/// A matched invocation/response pair in interned form: 32 bytes, `Copy`,
/// integer-compared — the operation representation of the incremental
/// checking engine (the heavyweight sibling is [`crate::Operation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRecord {
    /// Identifier of this operation (its index in the history).
    pub id: OpId,
    /// The invoking process.
    pub proc: ProcId,
    /// Interned invocation payload.
    pub invocation: InvocationId,
    /// Interned response payload, if the operation is complete.
    pub response: Option<ResponseId>,
    /// Position of the invocation symbol in the word.
    pub inv_pos: u32,
    /// Position of the response symbol in the word, if complete.
    pub resp_pos: Option<u32>,
    /// 0-based sequence number among the operations of the same process.
    pub local_index: u32,
}

impl OpRecord {
    /// Returns `true` when the operation has a response.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.resp_pos.is_some()
    }

    /// Returns `true` when the operation is pending.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.resp_pos.is_none()
    }

    /// Returns `true` when `self` precedes `other` in real time.
    #[must_use]
    pub fn precedes(&self, other: &OpRecord) -> bool {
        match self.resp_pos {
            Some(r) => r < other.inv_pos,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let mut interner = Interner::new();
        let w1 = interner.invocation(&Invocation::Write(1));
        let w1_again = interner.invocation(&Invocation::Write(1));
        let w2 = interner.invocation(&Invocation::Write(2));
        assert_eq!(w1, w1_again);
        assert_ne!(w1, w2);
        assert_eq!(interner.resolve_invocation(w1), &Invocation::Write(1));
        assert_eq!(interner.invocation_count(), 2);

        let ack = interner.response(&Response::Ack);
        let seq = interner.response(&Response::Sequence(vec![1, 2]));
        assert_eq!(interner.response(&Response::Ack), ack);
        assert_eq!(
            interner.resolve_response(seq),
            &Response::Sequence(vec![1, 2])
        );
        assert_eq!(interner.response_count(), 2);
    }

    #[test]
    fn custom_strings_are_interned_once() {
        let mut interner = Interner::new();
        let a = interner.invocation(&Invocation::Custom("cas".into(), 1));
        let b = interner.invocation(&Invocation::Custom("cas".into(), 1));
        let c = interner.invocation(&Invocation::Custom("cas".into(), 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.invocation_count(), 2);
    }

    #[test]
    fn op_record_is_small_and_copy() {
        // The whole point of the record: pass-by-value in the inner loop.
        assert!(std::mem::size_of::<OpRecord>() <= 48);
        let record = OpRecord {
            id: OpId(0),
            proc: ProcId(1),
            invocation: InvocationId(0),
            response: Some(ResponseId(0)),
            inv_pos: 0,
            resp_pos: Some(3),
            local_index: 0,
        };
        let copy = record;
        assert_eq!(copy, record);
        assert!(record.is_complete());
        assert!(!record.is_pending());
    }

    #[test]
    fn op_record_precedence_matches_operation_semantics() {
        let a = OpRecord {
            id: OpId(0),
            proc: ProcId(0),
            invocation: InvocationId(0),
            response: Some(ResponseId(0)),
            inv_pos: 0,
            resp_pos: Some(1),
            local_index: 0,
        };
        let b = OpRecord {
            id: OpId(1),
            proc: ProcId(1),
            invocation: InvocationId(1),
            response: None,
            inv_pos: 2,
            resp_pos: None,
            local_index: 0,
        };
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
    }
}
