//! Operations (matched invocation/response pairs) and the real-time order.
//!
//! Given a well-formed word `x`, every invocation symbol of a process is
//! matched with the next response symbol of the same process (if any).  The
//! pair is an *operation*; operations are ordered by the real-time precedence
//! relation `op ≺ₓ op'` (the response of `op` appears before the invocation of
//! `op'`), and two operations are *concurrent* when neither precedes the other.

use crate::symbol::{Invocation, ProcId, Response};
use crate::word::Word;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operation inside an [`OperationSet`] (its index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// A matched invocation/response pair of one process.
///
/// `resp`/`resp_pos` are `None` for operations that are *pending* in the word
/// (their invocation appears but the response does not).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// The identifier of this operation within its [`OperationSet`].
    pub id: OpId,
    /// The invoking process.
    pub proc: ProcId,
    /// The invocation payload.
    pub invocation: Invocation,
    /// The response payload, if the operation is complete.
    pub response: Option<Response>,
    /// Position of the invocation symbol in the word.
    pub inv_pos: usize,
    /// Position of the response symbol in the word, if complete.
    pub resp_pos: Option<usize>,
    /// 0-based sequence number of this operation among the operations of the
    /// same process (i.e. its index in the local word `x|ᵢ` divided by two).
    pub local_index: usize,
}

impl Operation {
    /// Returns `true` when the operation has both its invocation and response
    /// in the word.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.resp_pos.is_some()
    }

    /// Returns `true` when the operation is pending (its response has not yet
    /// appeared).
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.resp_pos.is_none()
    }

    /// Returns `true` when `self` precedes `other` in real time
    /// (`self ≺ₓ other`): the response of `self` appears before the
    /// invocation of `other`.
    #[must_use]
    pub fn precedes(&self, other: &Operation) -> bool {
        match self.resp_pos {
            Some(r) => r < other.inv_pos,
            None => false,
        }
    }

    /// Returns `true` when `self` and `other` are concurrent (`self ‖ₓ other`):
    /// neither precedes the other.
    #[must_use]
    pub fn concurrent_with(&self, other: &Operation) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.response {
            Some(resp) => write!(f, "{}:{}→{}", self.proc, self.invocation, resp),
            None => write!(f, "{}:{}→⟂", self.proc, self.invocation),
        }
    }
}

/// Relation between two operations under the real-time order of a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ordering {
    /// The first operation precedes the second.
    Precedes,
    /// The second operation precedes the first.
    Follows,
    /// The operations are concurrent.
    Concurrent,
}

/// The set of operations extracted from a word, with helpers for the
/// real-time precedence relation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationSet {
    ops: Vec<Operation>,
}

impl OperationSet {
    /// Extracts the operations of a word.  See [`operations`].
    #[must_use]
    pub fn from_word(word: &Word) -> Self {
        OperationSet {
            ops: operations(word),
        }
    }

    /// The operations, ordered by invocation position.
    #[must_use]
    pub fn all(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when there are no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns the operation with the given id.
    #[must_use]
    pub fn get(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(id.0)
    }

    /// The complete operations.
    pub fn complete(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter().filter(|o| o.is_complete())
    }

    /// The pending operations.
    pub fn pending(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter().filter(|o| o.is_pending())
    }

    /// The operations of one process, in program order.
    pub fn of_proc(&self, proc: ProcId) -> impl Iterator<Item = &Operation> {
        self.ops.iter().filter(move |o| o.proc == proc)
    }

    /// The real-time relation between two operations.
    #[must_use]
    pub fn ordering(&self, a: OpId, b: OpId) -> Option<Ordering> {
        let (a, b) = (self.get(a)?, self.get(b)?);
        Some(if a.precedes(b) {
            Ordering::Precedes
        } else if b.precedes(a) {
            Ordering::Follows
        } else {
            Ordering::Concurrent
        })
    }

    /// Number of precedence edges `a ≺ b` (used to compare histories and to
    /// validate that sketches only *add* precedence).
    #[must_use]
    pub fn precedence_edges(&self) -> Vec<(OpId, OpId)> {
        let mut edges = Vec::new();
        for a in &self.ops {
            for b in &self.ops {
                if a.id != b.id && a.precedes(b) {
                    edges.push((a.id, b.id));
                }
            }
        }
        edges
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }
}

impl<'a> IntoIterator for &'a OperationSet {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// Pairs the invocation and response symbols of a word into operations.
///
/// Symbols of each process are matched in order: an invocation opens an
/// operation, the next response symbol of the same process closes it.  The
/// word is assumed well-formed as a prefix (see
/// [`Word::check_well_formed_prefix`]); unmatched response symbols are
/// ignored.
#[must_use]
pub fn operations(word: &Word) -> Vec<Operation> {
    use std::collections::HashMap;
    let mut ops: Vec<Operation> = Vec::new();
    // Index of the currently-open operation per process.
    let mut open: HashMap<ProcId, usize> = HashMap::new();
    let mut local_counts: HashMap<ProcId, usize> = HashMap::new();

    for (pos, symbol) in word.symbols().iter().enumerate() {
        match (&symbol.action, open.get(&symbol.proc).copied()) {
            (crate::symbol::Action::Invoke(inv), None) => {
                let local_index = *local_counts.entry(symbol.proc).or_insert(0);
                *local_counts.get_mut(&symbol.proc).expect("just inserted") += 1;
                let id = OpId(ops.len());
                open.insert(symbol.proc, ops.len());
                ops.push(Operation {
                    id,
                    proc: symbol.proc,
                    invocation: inv.clone(),
                    response: None,
                    inv_pos: pos,
                    resp_pos: None,
                    local_index,
                });
            }
            (crate::symbol::Action::Invoke(_), Some(_)) => {
                // Ill-formed: invocation while pending; skip (checked elsewhere).
            }
            (crate::symbol::Action::Respond(resp), Some(idx)) => {
                ops[idx].response = Some(resp.clone());
                ops[idx].resp_pos = Some(pos);
                open.remove(&symbol.proc);
            }
            (crate::symbol::Action::Respond(_), None) => {
                // Ill-formed: orphan response; skip (checked elsewhere).
            }
        }
    }
    ops
}

impl Word {
    /// Extracts the matched invocation/response pairs of the word.
    ///
    /// Convenience wrapper around [`operations`].
    #[must_use]
    pub fn operations(&self) -> Vec<Operation> {
        operations(self)
    }

    /// Extracts the operations of the word together with the real-time
    /// precedence helpers of [`OperationSet`].
    #[must_use]
    pub fn operation_set(&self) -> OperationSet {
        OperationSet::from_word(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::WordBuilder;

    fn word_with_concurrency() -> Word {
        // p1: |--write(1)--|        |--write(2)--|
        // p2:        |------read:1------|
        WordBuilder::new()
            .invoke(ProcId(0), Invocation::Write(1))
            .invoke(ProcId(1), Invocation::Read)
            .respond(ProcId(0), Response::Ack)
            .respond(ProcId(1), Response::Value(1))
            .invoke(ProcId(0), Invocation::Write(2))
            .respond(ProcId(0), Response::Ack)
            .build()
    }

    #[test]
    fn operations_are_paired_in_order() {
        let ops = operations(&word_with_concurrency());
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].proc, ProcId(0));
        assert_eq!(ops[0].invocation, Invocation::Write(1));
        assert_eq!(ops[0].response, Some(Response::Ack));
        assert_eq!(ops[0].local_index, 0);
        assert_eq!(ops[1].proc, ProcId(1));
        assert_eq!(ops[1].local_index, 0);
        assert_eq!(ops[2].invocation, Invocation::Write(2));
        assert_eq!(ops[2].local_index, 1);
        assert!(ops.iter().all(Operation::is_complete));
    }

    #[test]
    fn pending_operations_have_no_response() {
        let w = WordBuilder::new()
            .invoke(ProcId(0), Invocation::Write(1))
            .invoke(ProcId(1), Invocation::Read)
            .respond(ProcId(0), Response::Ack)
            .build();
        let set = OperationSet::from_word(&w);
        assert_eq!(set.len(), 2);
        assert_eq!(set.complete().count(), 1);
        assert_eq!(set.pending().count(), 1);
        let pending = set.pending().next().expect("one pending op");
        assert!(pending.is_pending());
        assert_eq!(pending.proc, ProcId(1));
    }

    #[test]
    fn precedence_and_concurrency() {
        let set = OperationSet::from_word(&word_with_concurrency());
        let ops = set.all();
        // write(1) is concurrent with read (their intervals overlap).
        assert!(ops[0].concurrent_with(&ops[1]));
        assert_eq!(set.ordering(OpId(0), OpId(1)), Some(Ordering::Concurrent));
        // write(1) precedes write(2).
        assert!(ops[0].precedes(&ops[2]));
        assert_eq!(set.ordering(OpId(0), OpId(2)), Some(Ordering::Precedes));
        assert_eq!(set.ordering(OpId(2), OpId(0)), Some(Ordering::Follows));
        // read precedes write(2).
        assert!(ops[1].precedes(&ops[2]));
        assert_eq!(set.ordering(OpId(0), OpId(9)), None);
    }

    #[test]
    fn pending_operation_precedes_nothing() {
        let w = WordBuilder::new()
            .invoke(ProcId(0), Invocation::Read)
            .invoke(ProcId(1), Invocation::Read)
            .respond(ProcId(1), Response::Value(0))
            .build();
        let set = OperationSet::from_word(&w);
        let p0 = &set.all()[0];
        let p1 = &set.all()[1];
        assert!(!p0.precedes(p1));
        assert!(p1.concurrent_with(p0));
    }

    #[test]
    fn precedence_edges_counts_pairs() {
        let set = OperationSet::from_word(&word_with_concurrency());
        let edges = set.precedence_edges();
        assert_eq!(edges.len(), 2); // write(1)≺write(2), read≺write(2)
        assert!(edges.contains(&(OpId(0), OpId(2))));
        assert!(edges.contains(&(OpId(1), OpId(2))));
    }

    #[test]
    fn of_proc_filters_by_process() {
        let set = OperationSet::from_word(&word_with_concurrency());
        assert_eq!(set.of_proc(ProcId(0)).count(), 2);
        assert_eq!(set.of_proc(ProcId(1)).count(), 1);
        assert_eq!(set.of_proc(ProcId(5)).count(), 0);
    }

    #[test]
    fn ill_formed_symbols_are_skipped() {
        let w = WordBuilder::new()
            .respond(ProcId(0), Response::Ack)
            .invoke(ProcId(0), Invocation::Read)
            .invoke(ProcId(0), Invocation::Read)
            .build();
        let ops = operations(&w);
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn display_formats() {
        let set = OperationSet::from_word(&word_with_concurrency());
        assert!(set.all()[0].to_string().contains("write(1)"));
        assert_eq!(OpId(3).to_string(), "op3");
        let w = WordBuilder::new().invoke(ProcId(0), Invocation::Read).build();
        let pending = operations(&w);
        assert!(pending[0].to_string().ends_with('⟂'));
    }

    #[test]
    fn iteration() {
        let set = OperationSet::from_word(&word_with_concurrency());
        assert_eq!(set.iter().count(), 3);
        assert_eq!((&set).into_iter().count(), 3);
        assert!(!set.is_empty());
        assert!(OperationSet::default().is_empty());
    }
}
