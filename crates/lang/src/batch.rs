//! Arena-backed event batches: the one interchange type of the event path.
//!
//! The codebase grew three parallel encodings of "a stream of invocation /
//! response events" — [`Symbol`]s inside a [`crate::Word`], the incremental
//! checker's interned operation deltas, and (formerly) a private
//! `InternedEvent` inside the engine.  [`EventBatch`] unifies them: a
//! struct-of-arrays batch of `(object, proc, action, payload-ref)` events
//! whose rows are the `Copy`-able [`EventRecord`].  Payloads (the heap data
//! inside [`crate::Invocation`] / [`crate::Response`]) are interned exactly
//! once into a [`SharedInterner`] arena when the batch is built; afterwards
//! every layer — submission routing, shard queues, worker-side resolution —
//! moves 24-byte integer records around.
//!
//! The batch is deliberately *order-preserving*: iterating a batch yields the
//! events in the order they were pushed, which is the per-object FIFO order
//! every consumer (engine shards, checkers) relies on.  [`EventBatch::runs`]
//! exposes the maximal runs of consecutive same-object events, the unit that
//! batched consumers (`ObjectMonitor::on_batch`, `IncrementalChecker::
//! feed_batch`) process with one monitor lookup instead of one per event.
//!
//! ```
//! use drv_lang::{EventBatch, Invocation, ObjectId, ProcId, Response,
//!     SharedInterner, Symbol};
//!
//! let arena = SharedInterner::new();
//! let mut batch = EventBatch::new();
//! batch.push_symbol(ObjectId(7), &Symbol::invoke(ProcId(0), Invocation::Write(1)), &arena);
//! batch.push_symbol(ObjectId(7), &Symbol::respond(ProcId(0), Response::Ack), &arena);
//! batch.push_symbol(ObjectId(9), &Symbol::invoke(ProcId(1), Invocation::Read), &arena);
//! assert_eq!(batch.len(), 3);
//! let runs: Vec<_> = batch.runs().collect();
//! assert_eq!(runs[0], (ObjectId(7), 0..2));
//! assert_eq!(runs[1], (ObjectId(9), 2..3));
//! ```

use crate::intern::{InternerMirror, InvocationId, ResponseId, SharedInterner};
use crate::symbol::{Action, ObjectId, ProcId, Symbol};
use std::ops::Range;

/// A 16-byte distributed-tracing context, born at the client and carried
/// with an [`EventBatch`] through every pipeline layer (wire frame → engine
/// shard queues → journal → verdict router).
///
/// The wire form is fixed at [`TraceContext::WIRE_LEN`] bytes, little
/// endian: `trace_id u64 | parent_span u32 | flags u32`.  Only the
/// [`TraceContext::FLAG_SAMPLED`] bit of `flags` is defined today; the rest
/// are reserved and round-trip untouched.  This crate defines the *carrier*
/// only — sampling decisions and span recording live in `drv-telemetry`,
/// which deliberately depends on nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Globally unique (per deployment, probabilistically) trace id.
    pub trace_id: u64,
    /// The sender-side span this batch's pipeline spans hang under
    /// (`0` = the trace root).
    pub parent_span: u32,
    /// Bit flags; see [`TraceContext::FLAG_SAMPLED`].
    pub flags: u32,
}

impl TraceContext {
    /// Encoded size on the wire (and in the journal), in bytes.
    pub const WIRE_LEN: usize = 16;

    /// `flags` bit 0: the trace was selected by the client's sampler and
    /// every layer should record spans for it.
    pub const FLAG_SAMPLED: u32 = 1;

    /// A sampled root context for `trace_id`.
    #[must_use]
    pub fn sampled_root(trace_id: u64) -> TraceContext {
        TraceContext { trace_id, parent_span: 0, flags: TraceContext::FLAG_SAMPLED }
    }

    /// Whether the sampled flag is set.
    #[must_use]
    pub fn sampled(self) -> bool {
        self.flags & TraceContext::FLAG_SAMPLED != 0
    }

    /// The fixed 16-byte little-endian wire form.
    #[must_use]
    pub fn to_bytes(self) -> [u8; TraceContext::WIRE_LEN] {
        let mut bytes = [0u8; TraceContext::WIRE_LEN];
        bytes[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        bytes[8..12].copy_from_slice(&self.parent_span.to_le_bytes());
        bytes[12..16].copy_from_slice(&self.flags.to_le_bytes());
        bytes
    }

    /// Decodes the fixed 16-byte wire form (infallible: every bit pattern
    /// is a structurally valid context).
    #[must_use]
    pub fn from_bytes(bytes: &[u8; TraceContext::WIRE_LEN]) -> TraceContext {
        TraceContext {
            trace_id: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            parent_span: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            flags: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
        }
    }
}

/// The action half of an [`EventRecord`]: an interned invocation or response
/// payload reference into the batch's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventAction {
    /// An invocation event (payload id from the shared arena).
    Invoke(InvocationId),
    /// A response event.
    Respond(ResponseId),
}

impl EventAction {
    /// Interns `action`'s payload into `arena` and returns the reference.
    #[must_use]
    pub fn intern(action: &Action, arena: &SharedInterner) -> EventAction {
        match action {
            Action::Invoke(invocation) => EventAction::Invoke(arena.invocation(invocation)),
            Action::Respond(response) => EventAction::Respond(arena.response(response)),
        }
    }

    /// Resolves the payload back out of a (synced) [`InternerMirror`].
    ///
    /// # Panics
    ///
    /// Panics when the id is newer than the mirror's last sync or came from
    /// a different arena.
    #[must_use]
    pub fn resolve(self, mirror: &InternerMirror) -> Action {
        match self {
            EventAction::Invoke(id) => Action::Invoke(mirror.resolve_invocation(id).clone()),
            EventAction::Respond(id) => Action::Respond(mirror.resolve_response(id).clone()),
        }
    }
}

/// One event of a batch: 24 bytes, `Copy`, no heap payloads — the row view
/// of [`EventBatch`] and the queue record of the engine's shard queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// The object stream the event belongs to.
    pub object: ObjectId,
    /// The process that issued it.
    pub proc: ProcId,
    /// The interned invocation or response.
    pub action: EventAction,
}

impl EventRecord {
    /// Interns one symbol of `object`'s stream into `arena`.
    #[must_use]
    pub fn intern(object: ObjectId, symbol: &Symbol, arena: &SharedInterner) -> EventRecord {
        EventRecord {
            object,
            proc: symbol.proc,
            action: EventAction::intern(&symbol.action, arena),
        }
    }

    /// Resolves the record back into a payload-carrying [`Symbol`].
    ///
    /// # Panics
    ///
    /// Panics when the payload id is newer than the mirror's last sync.
    #[must_use]
    pub fn resolve(self, mirror: &InternerMirror) -> Symbol {
        Symbol {
            proc: self.proc,
            action: self.action.resolve(mirror),
        }
    }
}

/// A struct-of-arrays batch of events: parallel `objects` / `procs` /
/// `actions` columns, one entry per event, in submission order.
///
/// See the module docs for the role this type plays; see
/// [`EventBatch::runs`] for the grouped consumption pattern.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventBatch {
    objects: Vec<ObjectId>,
    procs: Vec<ProcId>,
    actions: Vec<EventAction>,
    /// The distributed-tracing context stamped by the producer, `None` for
    /// the (overwhelmingly common) unsampled batch.  Rides along through
    /// `submit_batch` so the engine can attribute spans; never affects
    /// verdicts.
    trace: Option<TraceContext>,
}

impl EventBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        EventBatch::default()
    }

    /// An empty batch with room for `capacity` events per column.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventBatch {
            objects: Vec::with_capacity(capacity),
            procs: Vec::with_capacity(capacity),
            actions: Vec::with_capacity(capacity),
            trace: None,
        }
    }

    /// Builds a batch from a `(object, symbol)` stream, interning every
    /// payload into `arena`.
    #[must_use]
    pub fn from_stream(events: &[(ObjectId, Symbol)], arena: &SharedInterner) -> EventBatch {
        let mut batch = EventBatch::with_capacity(events.len());
        for (object, symbol) in events {
            batch.push_symbol(*object, symbol, arena);
        }
        batch
    }

    /// Number of events in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the batch holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Empties the batch, keeping the column allocations (the reuse pattern
    /// of a producer loop: fill, submit, clear).
    pub fn clear(&mut self) {
        self.objects.clear();
        self.procs.clear();
        self.actions.clear();
        self.trace = None;
    }

    /// The distributed-tracing context stamped on this batch, if any.
    #[must_use]
    pub fn trace(&self) -> Option<TraceContext> {
        self.trace
    }

    /// Stamps (or clears) the batch's tracing context.  Purely
    /// observational: two batches differing only in context produce
    /// identical verdict streams.
    pub fn set_trace(&mut self, trace: Option<TraceContext>) {
        self.trace = trace;
    }

    /// Appends an already-interned record.
    pub fn push(&mut self, record: EventRecord) {
        self.objects.push(record.object);
        self.procs.push(record.proc);
        self.actions.push(record.action);
    }

    /// Interns one symbol of `object`'s stream into `arena` and appends it.
    pub fn push_symbol(&mut self, object: ObjectId, symbol: &Symbol, arena: &SharedInterner) {
        self.push(EventRecord::intern(object, symbol, arena));
    }

    /// The record at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> EventRecord {
        EventRecord {
            object: self.objects[index],
            proc: self.procs[index],
            action: self.actions[index],
        }
    }

    /// The object column (one entry per event, in submission order).
    #[must_use]
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// The process column.
    #[must_use]
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// The action column.
    #[must_use]
    pub fn actions(&self) -> &[EventAction] {
        &self.actions
    }

    /// Iterates the rows in submission order.
    pub fn iter(&self) -> impl Iterator<Item = EventRecord> + '_ {
        (0..self.len()).map(|index| self.get(index))
    }

    /// Iterates the maximal runs of consecutive same-object events as
    /// `(object, index range)` pairs — the unit batched consumers process
    /// with one per-object decision (the engine routes one *run*, not one
    /// event, per shard lookup).
    pub fn runs(&self) -> impl Iterator<Item = (ObjectId, Range<usize>)> + '_ {
        self.runs_between(0, self.len())
    }

    /// [`EventBatch::runs`] restricted to the events in `start..end` (runs
    /// straddling a boundary are clipped) — for consumers that ingest a
    /// batch in chunks.
    ///
    /// # Panics
    ///
    /// Panics when `start > end` or `end > len()`.
    pub fn runs_between(
        &self,
        start: usize,
        end: usize,
    ) -> impl Iterator<Item = (ObjectId, Range<usize>)> + '_ {
        assert!(start <= end && end <= self.len());
        let mut cursor = start;
        std::iter::from_fn(move || {
            if cursor >= end {
                return None;
            }
            let object = self.objects[cursor];
            let mut run_end = cursor + 1;
            while run_end < end && self.objects[run_end] == object {
                run_end += 1;
            }
            let run = (object, cursor..run_end);
            cursor = run_end;
            Some(run)
        })
    }
}

/// A struct-of-arrays batch of verdicts: parallel `objects` / `seqs` /
/// `verdicts` columns, one entry per delivered verdict, in delivery order —
/// the return half of the pipeline, mirroring [`EventBatch`] on the
/// ingestion half.
///
/// The verdict type is generic (`V: Copy`) because this crate sits below the
/// crate that defines the concrete verdict enum; consumers instantiate it
/// with their own `Copy` verdict.  Like [`EventBatch`], the container is
/// order-preserving and reusable: a consumer loop drains a subscription into
/// the same batch (`clear` keeps the column allocations), then walks
/// [`VerdictBatch::runs`] to process maximal same-object spans with one
/// lookup each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictBatch<V: Copy> {
    objects: Vec<ObjectId>,
    seqs: Vec<u64>,
    verdicts: Vec<V>,
}

impl<V: Copy> Default for VerdictBatch<V> {
    fn default() -> Self {
        VerdictBatch {
            objects: Vec::new(),
            seqs: Vec::new(),
            verdicts: Vec::new(),
        }
    }
}

impl<V: Copy> VerdictBatch<V> {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        VerdictBatch::default()
    }

    /// An empty batch with room for `capacity` verdicts per column.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        VerdictBatch {
            objects: Vec::with_capacity(capacity),
            seqs: Vec::with_capacity(capacity),
            verdicts: Vec::with_capacity(capacity),
        }
    }

    /// Number of verdicts in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the batch holds no verdicts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Empties the batch, keeping the column allocations (the reuse pattern
    /// of a consumer loop: drain, process, clear).
    pub fn clear(&mut self) {
        self.objects.clear();
        self.seqs.clear();
        self.verdicts.clear();
    }

    /// Appends one `(object, seq, verdict)` row.
    pub fn push(&mut self, object: ObjectId, seq: u64, verdict: V) {
        self.objects.push(object);
        self.seqs.push(seq);
        self.verdicts.push(verdict);
    }

    /// The row at `index` as an `(object, seq, verdict)` triple.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> (ObjectId, u64, V) {
        (self.objects[index], self.seqs[index], self.verdicts[index])
    }

    /// The object column (one entry per verdict, in delivery order).
    #[must_use]
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// The per-object sequence-number column.
    #[must_use]
    pub fn seqs(&self) -> &[u64] {
        &self.seqs
    }

    /// The verdict column.
    #[must_use]
    pub fn verdicts(&self) -> &[V] {
        &self.verdicts
    }

    /// Iterates the rows in delivery order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, u64, V)> + '_ {
        (0..self.len()).map(|index| self.get(index))
    }

    /// Iterates the maximal runs of consecutive same-object verdicts as
    /// `(object, index range)` pairs — the grouped-consumption unit, exactly
    /// like [`EventBatch::runs`].
    pub fn runs(&self) -> impl Iterator<Item = (ObjectId, Range<usize>)> + '_ {
        let mut cursor = 0;
        std::iter::from_fn(move || {
            if cursor >= self.len() {
                return None;
            }
            let object = self.objects[cursor];
            let mut run_end = cursor + 1;
            while run_end < self.len() && self.objects[run_end] == object {
                run_end += 1;
            }
            let run = (object, cursor..run_end);
            cursor = run_end;
            Some(run)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Invocation, Response};

    fn sample() -> (EventBatch, SharedInterner) {
        let arena = SharedInterner::new();
        let mut batch = EventBatch::new();
        batch.push_symbol(
            ObjectId(1),
            &Symbol::invoke(ProcId(0), Invocation::Write(7)),
            &arena,
        );
        batch.push_symbol(
            ObjectId(1),
            &Symbol::respond(ProcId(0), Response::Ack),
            &arena,
        );
        batch.push_symbol(
            ObjectId(2),
            &Symbol::invoke(ProcId(1), Invocation::Read),
            &arena,
        );
        batch.push_symbol(
            ObjectId(1),
            &Symbol::invoke(ProcId(1), Invocation::Read),
            &arena,
        );
        (batch, arena)
    }

    #[test]
    fn records_are_small_and_copy() {
        assert!(std::mem::size_of::<EventRecord>() <= 24);
        let (batch, _) = sample();
        let record = batch.get(0);
        let copy = record;
        assert_eq!(copy, record);
    }

    #[test]
    fn round_trips_through_the_arena() {
        let (batch, arena) = sample();
        let mut mirror = InternerMirror::new();
        mirror.sync(&arena);
        let symbols: Vec<Symbol> = batch.iter().map(|record| record.resolve(&mirror)).collect();
        assert_eq!(symbols[0], Symbol::invoke(ProcId(0), Invocation::Write(7)));
        assert_eq!(symbols[1], Symbol::respond(ProcId(0), Response::Ack));
        assert_eq!(symbols[2], Symbol::invoke(ProcId(1), Invocation::Read));
        // Identical payloads share one arena entry.
        assert_eq!(batch.actions()[2], batch.actions()[3]);
    }

    #[test]
    fn runs_group_consecutive_same_object_events() {
        let (batch, _) = sample();
        let runs: Vec<_> = batch.runs().collect();
        assert_eq!(
            runs,
            vec![
                (ObjectId(1), 0..2),
                (ObjectId(2), 2..3),
                (ObjectId(1), 3..4),
            ]
        );
        assert!(EventBatch::new().runs().next().is_none());
        // A chunk boundary clips the straddling run.
        let clipped: Vec<_> = batch.runs_between(1, 4).collect();
        assert_eq!(
            clipped,
            vec![
                (ObjectId(1), 1..2),
                (ObjectId(2), 2..3),
                (ObjectId(1), 3..4),
            ]
        );
        assert!(batch.runs_between(2, 2).next().is_none());
    }

    #[test]
    fn clear_keeps_capacity_and_from_stream_matches_pushes() {
        let (mut batch, arena) = sample();
        let events: Vec<(ObjectId, Symbol)> = {
            let mut mirror = InternerMirror::new();
            mirror.sync(&arena);
            batch
                .iter()
                .map(|record| (record.object, record.resolve(&mirror)))
                .collect()
        };
        let rebuilt = EventBatch::from_stream(&events, &arena);
        assert_eq!(rebuilt, batch);
        batch.clear();
        assert!(batch.is_empty());
        assert!(batch.objects.capacity() >= 4);
    }

    #[test]
    fn trace_context_round_trips_and_clear_resets_it() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF_CAFE_F00D, parent_span: 7, flags: 0b101 };
        assert_eq!(TraceContext::from_bytes(&ctx.to_bytes()), ctx);
        assert!(ctx.sampled());
        assert!(!TraceContext { flags: 0, ..ctx }.sampled());
        let root = TraceContext::sampled_root(42);
        assert_eq!(root.trace_id, 42);
        assert_eq!(root.parent_span, 0);
        assert!(root.sampled());

        let (mut batch, _) = sample();
        assert_eq!(batch.trace(), None);
        batch.set_trace(Some(ctx));
        assert_eq!(batch.trace(), Some(ctx));
        batch.clear();
        assert_eq!(batch.trace(), None, "clear drops the stamped context");
    }

    #[test]
    fn verdict_batch_preserves_order_and_groups_runs() {
        let mut batch: VerdictBatch<u8> = VerdictBatch::new();
        batch.push(ObjectId(1), 0, 10);
        batch.push(ObjectId(1), 1, 11);
        batch.push(ObjectId(2), 5, 20);
        batch.push(ObjectId(1), 2, 12);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.get(2), (ObjectId(2), 5, 20));
        assert_eq!(
            batch.iter().collect::<Vec<_>>(),
            vec![
                (ObjectId(1), 0, 10),
                (ObjectId(1), 1, 11),
                (ObjectId(2), 5, 20),
                (ObjectId(1), 2, 12),
            ]
        );
        assert_eq!(
            batch.runs().collect::<Vec<_>>(),
            vec![
                (ObjectId(1), 0..2),
                (ObjectId(2), 2..3),
                (ObjectId(1), 3..4),
            ]
        );
        batch.clear();
        assert!(batch.is_empty());
        assert!(batch.objects.capacity() >= 4);
        assert!(VerdictBatch::<u8>::with_capacity(8).is_empty());
    }
}
