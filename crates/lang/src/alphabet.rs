//! Object alphabets and invocation sampling.
//!
//! In the paper's model (Figure 1, line 01) each process *non-deterministically
//! picks* an invocation symbol from its local invocation alphabet Σ<ᵢ.  The
//! [`SymbolSampler`] resolves that non-determinism pseudo-randomly for a given
//! [`ObjectKind`], which is how workload generators drive the monitors.

use crate::symbol::Invocation;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of sequential object whose alphabet a process uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Read/write register (Example 1).
    Register,
    /// Counter with `inc()`/`read()` (Example 3).
    Counter,
    /// Ledger with `append(r)`/`get()` (Example 2 and 4).
    Ledger,
    /// FIFO queue.
    Queue,
    /// LIFO stack.
    Stack,
}

impl ObjectKind {
    /// All object kinds, in a fixed order.
    pub const ALL: [ObjectKind; 5] = [
        ObjectKind::Register,
        ObjectKind::Counter,
        ObjectKind::Ledger,
        ObjectKind::Queue,
        ObjectKind::Stack,
    ];

    /// Returns `true` when `invocation` belongs to this object's invocation
    /// alphabet.
    #[must_use]
    pub fn contains(&self, invocation: &Invocation) -> bool {
        matches!(
            (self, invocation),
            (ObjectKind::Register, Invocation::Write(_))
                | (ObjectKind::Register, Invocation::Read)
                | (ObjectKind::Counter, Invocation::Inc)
                | (ObjectKind::Counter, Invocation::Read)
                | (ObjectKind::Ledger, Invocation::Append(_))
                | (ObjectKind::Ledger, Invocation::Get)
                | (ObjectKind::Queue, Invocation::Enqueue(_))
                | (ObjectKind::Queue, Invocation::Dequeue)
                | (ObjectKind::Stack, Invocation::Push(_))
                | (ObjectKind::Stack, Invocation::Pop)
        )
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObjectKind::Register => "register",
            ObjectKind::Counter => "counter",
            ObjectKind::Ledger => "ledger",
            ObjectKind::Queue => "queue",
            ObjectKind::Stack => "stack",
        };
        write!(f, "{name}")
    }
}

/// Pseudo-random resolution of the non-deterministic invocation pick of
/// Figure 1, line 01.
///
/// The sampler is deliberately simple: a ratio of mutator invocations
/// (`write`/`inc`/`append`/`enqueue`/`push`) versus observer invocations
/// (`read`/`get`/`dequeue`/`pop`), and a bounded value domain so that
/// histories remain readable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolSampler {
    /// The object whose alphabet is sampled.
    pub kind: ObjectKind,
    /// Probability in `[0, 1]` of picking a mutator invocation.
    pub mutator_ratio: f64,
    /// Values/records are drawn uniformly from `1..=max_value`.
    pub max_value: u64,
    next_fresh: u64,
}

impl SymbolSampler {
    /// Creates a sampler with a 50/50 mutator/observer mix and values in
    /// `1..=100`.
    #[must_use]
    pub fn new(kind: ObjectKind) -> Self {
        SymbolSampler {
            kind,
            mutator_ratio: 0.5,
            max_value: 100,
            next_fresh: 1,
        }
    }

    /// Sets the mutator ratio.
    #[must_use]
    pub fn with_mutator_ratio(mut self, ratio: f64) -> Self {
        self.mutator_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum sampled value.
    #[must_use]
    pub fn with_max_value(mut self, max_value: u64) -> Self {
        self.max_value = max_value.max(1);
        self
    }

    /// Samples the next invocation.  Ledger records are made unique
    /// (monotonically increasing) so that eventual-visibility checks are
    /// unambiguous; other values are drawn uniformly.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Invocation {
        let mutate = rng.gen_bool(self.mutator_ratio);
        match (self.kind, mutate) {
            (ObjectKind::Register, true) => Invocation::Write(rng.gen_range(1..=self.max_value)),
            (ObjectKind::Register, false) => Invocation::Read,
            (ObjectKind::Counter, true) => Invocation::Inc,
            (ObjectKind::Counter, false) => Invocation::Read,
            (ObjectKind::Ledger, true) => {
                let r = self.next_fresh;
                self.next_fresh += 1;
                Invocation::Append(r)
            }
            (ObjectKind::Ledger, false) => Invocation::Get,
            (ObjectKind::Queue, true) => Invocation::Enqueue(rng.gen_range(1..=self.max_value)),
            (ObjectKind::Queue, false) => Invocation::Dequeue,
            (ObjectKind::Stack, true) => Invocation::Push(rng.gen_range(1..=self.max_value)),
            (ObjectKind::Stack, false) => Invocation::Pop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contains_classifies_invocations() {
        assert!(ObjectKind::Register.contains(&Invocation::Write(1)));
        assert!(ObjectKind::Register.contains(&Invocation::Read));
        assert!(!ObjectKind::Register.contains(&Invocation::Inc));
        assert!(ObjectKind::Counter.contains(&Invocation::Inc));
        assert!(ObjectKind::Counter.contains(&Invocation::Read));
        assert!(ObjectKind::Ledger.contains(&Invocation::Append(1)));
        assert!(ObjectKind::Ledger.contains(&Invocation::Get));
        assert!(!ObjectKind::Ledger.contains(&Invocation::Read));
        assert!(ObjectKind::Queue.contains(&Invocation::Enqueue(1)));
        assert!(ObjectKind::Queue.contains(&Invocation::Dequeue));
        assert!(ObjectKind::Stack.contains(&Invocation::Push(1)));
        assert!(ObjectKind::Stack.contains(&Invocation::Pop));
    }

    #[test]
    fn sampler_respects_alphabet() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in ObjectKind::ALL {
            let mut sampler = SymbolSampler::new(kind);
            for _ in 0..100 {
                let inv = sampler.sample(&mut rng);
                assert!(kind.contains(&inv), "{kind}: {inv} outside alphabet");
            }
        }
    }

    #[test]
    fn sampler_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut all_readers = SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.0);
        let mut all_incs = SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(1.0);
        for _ in 0..50 {
            assert_eq!(all_readers.sample(&mut rng), Invocation::Read);
            assert_eq!(all_incs.sample(&mut rng), Invocation::Inc);
        }
    }

    #[test]
    fn ledger_records_are_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = SymbolSampler::new(ObjectKind::Ledger).with_mutator_ratio(1.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            if let Invocation::Append(r) = sampler.sample(&mut rng) {
                assert!(seen.insert(r), "record {r} repeated");
            } else {
                panic!("expected append");
            }
        }
    }

    #[test]
    fn ratio_is_clamped() {
        let s = SymbolSampler::new(ObjectKind::Register).with_mutator_ratio(7.0);
        assert!((s.mutator_ratio - 1.0).abs() < f64::EPSILON);
        let s = SymbolSampler::new(ObjectKind::Register).with_max_value(0);
        assert_eq!(s.max_value, 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(ObjectKind::Register.to_string(), "register");
        assert_eq!(ObjectKind::Ledger.to_string(), "ledger");
    }
}
