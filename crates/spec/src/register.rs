//! The read/write register of Example 1.

use crate::sequential::SequentialSpec;
use drv_lang::{Invocation, ObjectKind, Response};
use serde::{Deserialize, Serialize};

/// A sequential read/write register with initial value `0`.
///
/// Operations: `write(x)` stores `x` and returns [`Response::Ack`];
/// `read()` returns the current value as [`Response::Value`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Register {
    initial: u64,
}

impl Register {
    /// Creates a register with initial value `0` (the paper's convention).
    #[must_use]
    pub fn new() -> Self {
        Register { initial: 0 }
    }

    /// Creates a register with the given initial value.
    #[must_use]
    pub fn with_initial(initial: u64) -> Self {
        Register { initial }
    }
}

impl SequentialSpec for Register {
    type State = u64;

    fn name(&self) -> String {
        "register".into()
    }

    fn kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn initial(&self) -> u64 {
        self.initial
    }

    fn apply(&self, state: &u64, invocation: &Invocation) -> Option<(u64, Response)> {
        match invocation {
            Invocation::Write(x) => Some((*x, Response::Ack)),
            Invocation::Read => Some((*state, Response::Value(*state))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_return_last_written_value() {
        let reg = Register::new();
        let s0 = reg.initial();
        assert_eq!(s0, 0);
        let (s1, r) = reg.apply(&s0, &Invocation::Write(42)).unwrap();
        assert_eq!(r, Response::Ack);
        let (s2, r) = reg.apply(&s1, &Invocation::Read).unwrap();
        assert_eq!(r, Response::Value(42));
        assert_eq!(s2, 42);
    }

    #[test]
    fn initial_value_is_configurable() {
        let reg = Register::with_initial(7);
        let (_, r) = reg.apply(&reg.initial(), &Invocation::Read).unwrap();
        assert_eq!(r, Response::Value(7));
    }

    #[test]
    fn foreign_invocations_are_rejected() {
        let reg = Register::new();
        assert!(reg.apply(&0, &Invocation::Inc).is_none());
        assert!(reg.apply(&0, &Invocation::Get).is_none());
    }

    #[test]
    fn metadata() {
        assert_eq!(Register::new().name(), "register");
        assert_eq!(Register::new().kind(), ObjectKind::Register);
    }
}
