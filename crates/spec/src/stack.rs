//! A LIFO stack object (one of the objects for which [17] proved the original
//! sound-and-complete impossibility).

use crate::sequential::SequentialSpec;
use drv_lang::{Invocation, ObjectKind, Response};
use serde::{Deserialize, Serialize};

/// A sequential LIFO stack.
///
/// Operations: `push(x)` returns [`Response::Ack`]; `pop()` returns the newest
/// element as [`Response::MaybeValue`] (`None` when empty).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stack;

impl Stack {
    /// Creates an empty stack specification.
    #[must_use]
    pub fn new() -> Self {
        Stack
    }
}

impl SequentialSpec for Stack {
    type State = Vec<u64>;

    fn name(&self) -> String {
        "stack".into()
    }

    fn kind(&self) -> ObjectKind {
        ObjectKind::Stack
    }

    fn initial(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u64>, invocation: &Invocation) -> Option<(Vec<u64>, Response)> {
        match invocation {
            Invocation::Push(x) => {
                let mut next = state.clone();
                next.push(*x);
                Some((next, Response::Ack))
            }
            Invocation::Pop => {
                let mut next = state.clone();
                let top = next.pop();
                Some((next, Response::MaybeValue(top)))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_invocations;

    #[test]
    fn lifo_order() {
        let responses = run_invocations(
            &Stack::new(),
            &[
                Invocation::Push(1),
                Invocation::Push(2),
                Invocation::Pop,
                Invocation::Pop,
                Invocation::Pop,
            ],
        )
        .unwrap();
        assert_eq!(responses[2], Response::MaybeValue(Some(2)));
        assert_eq!(responses[3], Response::MaybeValue(Some(1)));
        assert_eq!(responses[4], Response::MaybeValue(None));
    }

    #[test]
    fn foreign_invocations_are_rejected() {
        assert!(Stack::new().apply(&vec![], &Invocation::Dequeue).is_none());
    }

    #[test]
    fn metadata() {
        assert_eq!(Stack::new().name(), "stack");
        assert_eq!(Stack::new().kind(), ObjectKind::Stack);
    }
}
