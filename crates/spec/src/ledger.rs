//! The ledger object of Examples 2 and 4, after Fernández Anta et al. \[3\].

use crate::sequential::SequentialSpec;
use drv_lang::{Invocation, ObjectKind, Record, Response};
use serde::{Deserialize, Serialize};

/// A sequential ledger: an append-only list of records.
///
/// Operations: `append(r)` appends record `r` and returns [`Response::Ack`];
/// `get()` returns the whole list as [`Response::Sequence`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ledger;

impl Ledger {
    /// Creates a ledger with the empty initial list.
    #[must_use]
    pub fn new() -> Self {
        Ledger
    }
}

impl SequentialSpec for Ledger {
    type State = Vec<Record>;

    fn name(&self) -> String {
        "ledger".into()
    }

    fn kind(&self) -> ObjectKind {
        ObjectKind::Ledger
    }

    fn initial(&self) -> Vec<Record> {
        Vec::new()
    }

    fn apply(
        &self,
        state: &Vec<Record>,
        invocation: &Invocation,
    ) -> Option<(Vec<Record>, Response)> {
        match invocation {
            Invocation::Append(r) => {
                let mut next = state.clone();
                next.push(*r);
                Some((next, Response::Ack))
            }
            Invocation::Get => Some((state.clone(), Response::Sequence(state.clone()))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_invocations;

    #[test]
    fn appends_preserve_order() {
        let responses = run_invocations(
            &Ledger::new(),
            &[
                Invocation::Get,
                Invocation::Append(5),
                Invocation::Append(6),
                Invocation::Get,
            ],
        )
        .unwrap();
        assert_eq!(responses[0], Response::Sequence(vec![]));
        assert_eq!(responses[3], Response::Sequence(vec![5, 6]));
    }

    #[test]
    fn duplicate_records_are_allowed_sequentially() {
        let responses = run_invocations(
            &Ledger::new(),
            &[Invocation::Append(1), Invocation::Append(1), Invocation::Get],
        )
        .unwrap();
        assert_eq!(responses[2], Response::Sequence(vec![1, 1]));
    }

    #[test]
    fn foreign_invocations_are_rejected() {
        assert!(Ledger::new().apply(&vec![], &Invocation::Read).is_none());
    }

    #[test]
    fn metadata() {
        assert_eq!(Ledger::new().name(), "ledger");
        assert_eq!(Ledger::new().kind(), ObjectKind::Ledger);
        assert!(Ledger::new().initial().is_empty());
    }
}
