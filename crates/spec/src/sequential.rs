//! The [`SequentialSpec`] trait and helpers for validating sequential words.

use drv_lang::{Action, Invocation, ObjectKind, Response, Word};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hash;

/// A deterministic, total sequential object specification.
///
/// The object is a state machine: [`SequentialSpec::initial`] gives the
/// initial state and [`SequentialSpec::apply`] maps a state and an invocation
/// to the successor state and the response the sequential object returns.
///
/// `apply` returns `None` when the invocation does not belong to the object's
/// alphabet (e.g. `inc()` applied to a register); this is how checkers detect
/// alphabet mismatches early.
pub trait SequentialSpec: Send + Sync {
    /// The type of object states.  States must be hashable so checkers can
    /// memoize explored configurations.
    type State: Clone + Eq + Hash + fmt::Debug + Send + Sync;

    /// Human-readable object name (e.g. `"register"`).
    fn name(&self) -> String;

    /// The [`ObjectKind`] whose alphabet this object uses.
    fn kind(&self) -> ObjectKind;

    /// The initial state of the object.
    fn initial(&self) -> Self::State;

    /// Applies an invocation to a state, producing the successor state and the
    /// response.  Returns `None` when the invocation is not part of this
    /// object's alphabet.
    fn apply(&self, state: &Self::State, invocation: &Invocation)
        -> Option<(Self::State, Response)>;

    /// Checks whether `(invocation, response)` is a legal step from `state`,
    /// returning the successor state when it is.
    ///
    /// The default implementation applies the invocation and compares the
    /// produced response with the observed one, which is correct for
    /// deterministic objects.
    fn step_if_legal(
        &self,
        state: &Self::State,
        invocation: &Invocation,
        response: &Response,
    ) -> Option<Self::State> {
        let (next, expected) = self.apply(state, invocation)?;
        if &expected == response {
            Some(next)
        } else {
            None
        }
    }
}

/// Blanket implementation so `&S` can be used wherever a spec is expected.
impl<S: SequentialSpec + ?Sized> SequentialSpec for &S {
    type State = S::State;

    fn name(&self) -> String {
        (**self).name()
    }
    fn kind(&self) -> ObjectKind {
        (**self).kind()
    }
    fn initial(&self) -> Self::State {
        (**self).initial()
    }
    fn apply(
        &self,
        state: &Self::State,
        invocation: &Invocation,
    ) -> Option<(Self::State, Response)> {
        (**self).apply(state, invocation)
    }
    fn step_if_legal(
        &self,
        state: &Self::State,
        invocation: &Invocation,
        response: &Response,
    ) -> Option<Self::State> {
        (**self).step_if_legal(state, invocation, response)
    }
}

/// Error produced when validating a sequential word against a specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationError {
    /// The word is not sequential: an invocation is not immediately followed
    /// by its matching response.
    NotSequential {
        /// Position of the offending symbol.
        position: usize,
    },
    /// An invocation outside the object's alphabet was found.
    ForeignInvocation {
        /// Position of the offending symbol.
        position: usize,
    },
    /// A response does not match what the sequential object would return.
    IllegalResponse {
        /// Position of the offending response symbol.
        position: usize,
        /// The response the specification expected.
        expected: Response,
        /// The response observed in the word.
        observed: Response,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NotSequential { position } => {
                write!(f, "word is not sequential at position {position}")
            }
            ValidationError::ForeignInvocation { position } => {
                write!(f, "invocation at position {position} is outside the object alphabet")
            }
            ValidationError::IllegalResponse {
                position,
                expected,
                observed,
            } => write!(
                f,
                "response at position {position} is {observed}, specification expects {expected}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks that a *sequential* word (globally alternating invocation/response,
/// each response immediately following its invocation) is legal for the
/// specification, i.e. the word is a valid sequential history of the object.
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered.
pub fn is_legal_sequential_word<S: SequentialSpec>(
    spec: &S,
    word: &Word,
) -> Result<(), ValidationError> {
    let mut state = spec.initial();
    let symbols = word.symbols();
    let mut i = 0;
    while i < symbols.len() {
        let inv_symbol = &symbols[i];
        let Action::Invoke(invocation) = &inv_symbol.action else {
            return Err(ValidationError::NotSequential { position: i });
        };
        // A trailing pending invocation is allowed (it has no response yet).
        let Some(resp_symbol) = symbols.get(i + 1) else {
            return Ok(());
        };
        let Action::Respond(response) = &resp_symbol.action else {
            return Err(ValidationError::NotSequential { position: i + 1 });
        };
        if resp_symbol.proc != inv_symbol.proc {
            return Err(ValidationError::NotSequential { position: i + 1 });
        }
        let (next, expected) = spec
            .apply(&state, invocation)
            .ok_or(ValidationError::ForeignInvocation { position: i })?;
        if &expected != response {
            return Err(ValidationError::IllegalResponse {
                position: i + 1,
                expected,
                observed: response.clone(),
            });
        }
        state = next;
        i += 2;
    }
    Ok(())
}

/// Runs a sequence of invocations from the initial state, returning the
/// responses the sequential object produces, or `None` if an invocation is
/// outside the alphabet.
#[must_use]
pub fn run_invocations<S: SequentialSpec>(
    spec: &S,
    invocations: &[Invocation],
) -> Option<Vec<Response>> {
    let mut state = spec.initial();
    let mut responses = Vec::with_capacity(invocations.len());
    for invocation in invocations {
        let (next, response) = spec.apply(&state, invocation)?;
        responses.push(response);
        state = next;
    }
    Some(responses)
}

/// A dynamically-dispatched handle on any of the built-in specifications.
///
/// The enum form is convenient for workloads that are parameterized by
/// [`ObjectKind`] (e.g. the Table 1 harness) without making every consumer
/// generic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecObject {
    /// A read/write register.
    Register,
    /// An `inc`/`read` counter.
    Counter,
    /// An `append`/`get` ledger.
    Ledger,
    /// A FIFO queue.
    Queue,
    /// A LIFO stack.
    Stack,
}

impl SpecObject {
    /// The [`ObjectKind`] of this specification.
    #[must_use]
    pub fn kind(&self) -> ObjectKind {
        match self {
            SpecObject::Register => ObjectKind::Register,
            SpecObject::Counter => ObjectKind::Counter,
            SpecObject::Ledger => ObjectKind::Ledger,
            SpecObject::Queue => ObjectKind::Queue,
            SpecObject::Stack => ObjectKind::Stack,
        }
    }
}

/// The universal state used by [`SpecObject`]'s [`SequentialSpec`]
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecState {
    /// Register contents.
    Register(u64),
    /// Counter value.
    Counter(u64),
    /// Ledger contents.
    Ledger(Vec<u64>),
    /// Queue contents (front first).
    Queue(Vec<u64>),
    /// Stack contents (bottom first).
    Stack(Vec<u64>),
}

impl SequentialSpec for SpecObject {
    type State = SpecState;

    fn name(&self) -> String {
        self.kind().to_string()
    }

    fn kind(&self) -> ObjectKind {
        SpecObject::kind(self)
    }

    fn initial(&self) -> SpecState {
        match self {
            SpecObject::Register => SpecState::Register(0),
            SpecObject::Counter => SpecState::Counter(0),
            SpecObject::Ledger => SpecState::Ledger(Vec::new()),
            SpecObject::Queue => SpecState::Queue(Vec::new()),
            SpecObject::Stack => SpecState::Stack(Vec::new()),
        }
    }

    fn apply(&self, state: &SpecState, invocation: &Invocation) -> Option<(SpecState, Response)> {
        match (self, state, invocation) {
            (SpecObject::Register, SpecState::Register(_), Invocation::Write(x)) => {
                Some((SpecState::Register(*x), Response::Ack))
            }
            (SpecObject::Register, SpecState::Register(v), Invocation::Read) => {
                Some((state.clone(), Response::Value(*v)))
            }
            (SpecObject::Counter, SpecState::Counter(v), Invocation::Inc) => {
                Some((SpecState::Counter(v + 1), Response::Ack))
            }
            (SpecObject::Counter, SpecState::Counter(v), Invocation::Read) => {
                Some((state.clone(), Response::Value(*v)))
            }
            (SpecObject::Ledger, SpecState::Ledger(s), Invocation::Append(r)) => {
                let mut next = s.clone();
                next.push(*r);
                Some((SpecState::Ledger(next), Response::Ack))
            }
            (SpecObject::Ledger, SpecState::Ledger(s), Invocation::Get) => {
                Some((state.clone(), Response::Sequence(s.clone())))
            }
            (SpecObject::Queue, SpecState::Queue(q), Invocation::Enqueue(x)) => {
                let mut next = q.clone();
                next.push(*x);
                Some((SpecState::Queue(next), Response::Ack))
            }
            (SpecObject::Queue, SpecState::Queue(q), Invocation::Dequeue) => {
                if q.is_empty() {
                    Some((state.clone(), Response::MaybeValue(None)))
                } else {
                    let mut next = q.clone();
                    let head = next.remove(0);
                    Some((SpecState::Queue(next), Response::MaybeValue(Some(head))))
                }
            }
            (SpecObject::Stack, SpecState::Stack(s), Invocation::Push(x)) => {
                let mut next = s.clone();
                next.push(*x);
                Some((SpecState::Stack(next), Response::Ack))
            }
            (SpecObject::Stack, SpecState::Stack(s), Invocation::Pop) => {
                if s.is_empty() {
                    Some((state.clone(), Response::MaybeValue(None)))
                } else {
                    let mut next = s.clone();
                    let top = next.pop();
                    Some((SpecState::Stack(next), Response::MaybeValue(top)))
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drv_lang::{ProcId, WordBuilder};

    #[test]
    fn run_invocations_counter() {
        let responses = run_invocations(
            &SpecObject::Counter,
            &[Invocation::Inc, Invocation::Inc, Invocation::Read],
        )
        .expect("alphabet ok");
        assert_eq!(
            responses,
            vec![Response::Ack, Response::Ack, Response::Value(2)]
        );
    }

    #[test]
    fn run_invocations_rejects_foreign() {
        assert!(run_invocations(&SpecObject::Register, &[Invocation::Inc]).is_none());
    }

    #[test]
    fn legal_sequential_word_register() {
        let w = WordBuilder::new()
            .op(ProcId(0), Invocation::Write(3), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(3))
            .build();
        assert!(is_legal_sequential_word(&SpecObject::Register, &w).is_ok());
    }

    #[test]
    fn illegal_response_is_reported() {
        let w = WordBuilder::new()
            .op(ProcId(0), Invocation::Write(3), Response::Ack)
            .op(ProcId(1), Invocation::Read, Response::Value(9))
            .build();
        let err = is_legal_sequential_word(&SpecObject::Register, &w).unwrap_err();
        assert_eq!(
            err,
            ValidationError::IllegalResponse {
                position: 3,
                expected: Response::Value(3),
                observed: Response::Value(9),
            }
        );
        assert!(err.to_string().contains("position 3"));
    }

    #[test]
    fn non_sequential_word_is_reported() {
        let w = WordBuilder::new()
            .invoke(ProcId(0), Invocation::Write(3))
            .invoke(ProcId(1), Invocation::Read)
            .respond(ProcId(0), Response::Ack)
            .respond(ProcId(1), Response::Value(3))
            .build();
        assert!(matches!(
            is_legal_sequential_word(&SpecObject::Register, &w),
            Err(ValidationError::NotSequential { position: 1 })
        ));
    }

    #[test]
    fn trailing_pending_invocation_is_ok() {
        let w = WordBuilder::new()
            .op(ProcId(0), Invocation::Write(3), Response::Ack)
            .invoke(ProcId(1), Invocation::Read)
            .build();
        assert!(is_legal_sequential_word(&SpecObject::Register, &w).is_ok());
    }

    #[test]
    fn foreign_invocation_is_reported() {
        let w = WordBuilder::new()
            .op(ProcId(0), Invocation::Inc, Response::Ack)
            .build();
        assert!(matches!(
            is_legal_sequential_word(&SpecObject::Register, &w),
            Err(ValidationError::ForeignInvocation { position: 0 })
        ));
    }

    #[test]
    fn queue_and_stack_semantics() {
        let q = run_invocations(
            &SpecObject::Queue,
            &[
                Invocation::Enqueue(1),
                Invocation::Enqueue(2),
                Invocation::Dequeue,
                Invocation::Dequeue,
                Invocation::Dequeue,
            ],
        )
        .unwrap();
        assert_eq!(q[2], Response::MaybeValue(Some(1)));
        assert_eq!(q[3], Response::MaybeValue(Some(2)));
        assert_eq!(q[4], Response::MaybeValue(None));

        let s = run_invocations(
            &SpecObject::Stack,
            &[
                Invocation::Push(1),
                Invocation::Push(2),
                Invocation::Pop,
                Invocation::Pop,
                Invocation::Pop,
            ],
        )
        .unwrap();
        assert_eq!(s[2], Response::MaybeValue(Some(2)));
        assert_eq!(s[3], Response::MaybeValue(Some(1)));
        assert_eq!(s[4], Response::MaybeValue(None));
    }

    #[test]
    fn ledger_semantics() {
        let l = run_invocations(
            &SpecObject::Ledger,
            &[
                Invocation::Append(10),
                Invocation::Get,
                Invocation::Append(20),
                Invocation::Get,
            ],
        )
        .unwrap();
        assert_eq!(l[1], Response::Sequence(vec![10]));
        assert_eq!(l[3], Response::Sequence(vec![10, 20]));
    }

    #[test]
    fn spec_object_metadata() {
        assert_eq!(SpecObject::Register.kind(), ObjectKind::Register);
        assert_eq!(SpecObject::Ledger.name(), "ledger");
        assert_eq!(
            SequentialSpec::kind(&SpecObject::Counter),
            ObjectKind::Counter
        );
    }

    #[test]
    fn step_if_legal_default() {
        let spec = SpecObject::Counter;
        let s0 = spec.initial();
        let s1 = spec
            .step_if_legal(&s0, &Invocation::Inc, &Response::Ack)
            .expect("inc is legal");
        assert!(spec
            .step_if_legal(&s1, &Invocation::Read, &Response::Value(0))
            .is_none());
        assert!(spec
            .step_if_legal(&s1, &Invocation::Read, &Response::Value(1))
            .is_some());
    }

    #[test]
    fn reference_blanket_impl() {
        let spec = &SpecObject::Register;
        assert_eq!(spec.name(), "register");
        let s0 = spec.initial();
        assert!(spec.apply(&s0, &Invocation::Read).is_some());
    }
}
