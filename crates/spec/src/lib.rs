//! # drv-spec
//!
//! Sequential object specifications for distributed runtime verification.
//!
//! The correctness properties studied in the paper (linearizability,
//! sequential consistency, eventual consistency) are all defined *relative to
//! a sequential object*: a state machine with an initial state and a
//! deterministic transition function mapping `(state, invocation)` to
//! `(state', response)`.  This crate provides the [`SequentialSpec`] trait and
//! the concrete objects used by the paper:
//!
//! * [`Register`] — read/write register (Example 1),
//! * [`Counter`] — `inc()`/`read()` counter (Example 3),
//! * [`Ledger`] — `append(r)`/`get()` ledger (Examples 2 and 4, after \[3\]),
//! * [`Queue`] and [`Stack`] — the objects for which [17] proved the original
//!   strong-decidability impossibility.
//!
//! All objects are *total* (every operation can be invoked in every state),
//! which is the only assumption the paper needs for the language `LIN_O`
//! (Section 6.2, footnote 3).
//!
//! ```
//! use drv_spec::{Register, SequentialSpec};
//! use drv_lang::{Invocation, Response};
//!
//! let reg = Register::new();
//! let s0 = reg.initial();
//! let (s1, r1) = reg.apply(&s0, &Invocation::Write(4)).unwrap();
//! assert_eq!(r1, Response::Ack);
//! let (_, r2) = reg.apply(&s1, &Invocation::Read).unwrap();
//! assert_eq!(r2, Response::Value(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod ledger;
pub mod queue;
pub mod register;
pub mod sequential;
pub mod stack;

pub use counter::Counter;
pub use ledger::Ledger;
pub use queue::Queue;
pub use register::Register;
pub use sequential::{
    is_legal_sequential_word, run_invocations, SequentialSpec, SpecObject, ValidationError,
};
pub use stack::Stack;
