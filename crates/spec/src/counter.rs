//! The counter object of Example 3.

use crate::sequential::SequentialSpec;
use drv_lang::{Invocation, ObjectKind, Response};
use serde::{Deserialize, Serialize};

/// A sequential counter with initial value `0`.
///
/// Operations: `inc()` increments the counter and returns [`Response::Ack`];
/// `read()` returns the current value as [`Response::Value`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter;

impl Counter {
    /// Creates a counter with initial value `0`.
    #[must_use]
    pub fn new() -> Self {
        Counter
    }
}

impl SequentialSpec for Counter {
    type State = u64;

    fn name(&self) -> String {
        "counter".into()
    }

    fn kind(&self) -> ObjectKind {
        ObjectKind::Counter
    }

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, invocation: &Invocation) -> Option<(u64, Response)> {
        match invocation {
            Invocation::Inc => Some((state + 1, Response::Ack)),
            Invocation::Read => Some((*state, Response::Value(*state))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_invocations;

    #[test]
    fn increments_accumulate() {
        let responses = run_invocations(
            &Counter::new(),
            &[
                Invocation::Read,
                Invocation::Inc,
                Invocation::Inc,
                Invocation::Read,
            ],
        )
        .unwrap();
        assert_eq!(responses[0], Response::Value(0));
        assert_eq!(responses[3], Response::Value(2));
    }

    #[test]
    fn foreign_invocations_are_rejected() {
        assert!(Counter::new().apply(&0, &Invocation::Write(1)).is_none());
    }

    #[test]
    fn metadata() {
        assert_eq!(Counter::new().name(), "counter");
        assert_eq!(Counter::new().kind(), ObjectKind::Counter);
        assert_eq!(Counter::new().initial(), 0);
    }
}
