//! A FIFO queue object (one of the objects for which [17] proved the original
//! sound-and-complete impossibility).

use crate::sequential::SequentialSpec;
use drv_lang::{Invocation, ObjectKind, Response};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A sequential FIFO queue.
///
/// Operations: `enqueue(x)` returns [`Response::Ack`]; `dequeue()` returns the
/// oldest element as [`Response::MaybeValue`] (`None` when empty).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Queue;

impl Queue {
    /// Creates an empty queue specification.
    #[must_use]
    pub fn new() -> Self {
        Queue
    }
}

impl SequentialSpec for Queue {
    type State = VecDeque<u64>;

    fn name(&self) -> String {
        "queue".into()
    }

    fn kind(&self) -> ObjectKind {
        ObjectKind::Queue
    }

    fn initial(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn apply(
        &self,
        state: &VecDeque<u64>,
        invocation: &Invocation,
    ) -> Option<(VecDeque<u64>, Response)> {
        match invocation {
            Invocation::Enqueue(x) => {
                let mut next = state.clone();
                next.push_back(*x);
                Some((next, Response::Ack))
            }
            Invocation::Dequeue => {
                let mut next = state.clone();
                let head = next.pop_front();
                Some((next, Response::MaybeValue(head)))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_invocations;

    #[test]
    fn fifo_order() {
        let responses = run_invocations(
            &Queue::new(),
            &[
                Invocation::Enqueue(1),
                Invocation::Enqueue(2),
                Invocation::Dequeue,
                Invocation::Dequeue,
                Invocation::Dequeue,
            ],
        )
        .unwrap();
        assert_eq!(responses[2], Response::MaybeValue(Some(1)));
        assert_eq!(responses[3], Response::MaybeValue(Some(2)));
        assert_eq!(responses[4], Response::MaybeValue(None));
    }

    #[test]
    fn foreign_invocations_are_rejected() {
        assert!(Queue::new()
            .apply(&VecDeque::new(), &Invocation::Pop)
            .is_none());
    }

    #[test]
    fn metadata() {
        assert_eq!(Queue::new().name(), "queue");
        assert_eq!(Queue::new().kind(), ObjectKind::Queue);
    }
}
