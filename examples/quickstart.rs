//! Quickstart: monitor a counter service for weakly-eventual consistency.
//!
//! Runs the paper's Figure 5 distributed monitor (composed with the Figure 3
//! transformation, i.e. the full weak-decidability monitor for `WEC_COUNT`)
//! against a correct atomic counter and against a counter that silently drops
//! increments, and shows how the verdict streams and the weak-decidability
//! evaluation differ.
//!
//! ```text
//! cargo run -p drv-core --example quickstart
//! ```

use drv_adversary::{AtomicObject, Behavior, LossyCounter};
use drv_consistency::languages::wec_count;
use drv_core::decidability::{Decider, Notion};
use drv_core::monitors::WecCountFamily;
use drv_core::runtime::{run, RunConfig, Schedule};
use drv_core::transform::WadAllFamily;
use drv_lang::{ObjectKind, SymbolSampler};
use drv_spec::Counter;
use std::sync::Arc;

fn main() {
    let n = 3;
    let iterations = 60;
    let config = RunConfig::new(n, iterations)
        .with_schedule(Schedule::Random { seed: 2026 })
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
        .stop_mutators_after(iterations / 2);
    let monitor = WadAllFamily::new(WecCountFamily::new());
    let decider = Decider::new(Arc::new(wec_count()));

    let behaviors: Vec<Box<dyn Behavior>> = vec![
        Box::new(AtomicObject::new(Counter::new())),
        Box::new(LossyCounter::new(2)),
    ];

    for behavior in behaviors {
        let name = behavior.name();
        let trace = run(&config, &monitor, behavior);
        println!("── service under inspection: {name}");
        println!("   input word x(E): {} symbols, cut at {}", trace.word().len(), trace.cut());
        println!(
            "   is the behaviour weakly-eventual consistent? {}",
            if trace.is_member(&wec_count()) { "yes" } else { "NO" }
        );
        for p in 0..n {
            let stream = trace.verdicts(p);
            let tail = stream.len() * 3 / 4;
            println!(
                "   p{}: {} reports, {} NO total, {} NO in the final quarter, last verdict {}",
                p + 1,
                stream.len(),
                stream.no_count(),
                stream.no_count_from(tail),
                stream.reports().last().map_or("—".to_string(), |r| r.verdict.to_string()),
            );
        }
        let evaluation = decider
            .evaluate(&trace, Notion::Weak)
            .expect("plain runs never fail sketch reconstruction");
        println!("   weak decidability (Definition 4.4): {evaluation}");
        println!();
    }

    println!("The correct counter quiesces to YES everywhere; the lossy counter keeps");
    println!("every monitor process reporting NO — exactly the WD contract of Lemma 5.3.");
}
