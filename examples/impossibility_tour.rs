//! A tour of the paper's impossibility results, executed.
//!
//! Runs the proof constructions of Lemmas 5.1, 5.2, 6.2 and 6.5 against the
//! actual monitor implementations and prints what the adversary manages to do
//! in each case.
//!
//! ```text
//! cargo run -p drv-core --example impossibility_tour
//! ```

use drv_consistency::languages::{ec_led, lin_reg, sc_reg, sec_count, wec_count};
use drv_core::impossibility::{lemma_5_1, lemma_5_2, lemma_6_2, lemma_6_5};
use drv_core::monitors::{EcLedgerGuessFamily, SecCountFamily, WecCountFamily};

fn main() {
    println!("══ Lemma 5.1: LIN_REG and SC_REG are not weakly decidable against A ══");
    let pair = lemma_5_1(&WecCountFamily::new(), 6);
    println!(
        "  execution E (writes before reads): linearizable = {}",
        pair.member_trace.is_member(&lin_reg(2))
    );
    println!(
        "  execution F (reads moved before their writes): linearizable = {}, sequentially consistent = {}",
        pair.non_member_trace.is_member(&lin_reg(2)),
        pair.non_member_trace.is_member(&sc_reg(2))
    );
    println!(
        "  verdict streams identical in E and F: {} → no monitor can tell them apart",
        pair.verdicts_identical
    );
    println!();

    println!("══ Lemma 5.2: WEC_COUNT is not strongly decidable ══");
    let extension = lemma_5_2(&WecCountFamily::new(), &wec_count(), 6, 6);
    match extension.first_no {
        Some((proc, report)) => println!(
            "  on the non-member word (inc, then reads of 0) p{} reports NO at report #{report}",
            proc + 1
        ),
        None => println!("  the monitor never reported NO on the non-member word"),
    }
    println!(
        "  extending the rejected prefix into a member word replays the NO: {}",
        extension.no_replayed
    );
    println!(
        "  ⇒ strong decidability refuted: {}",
        extension.refutes_strong_decidability()
    );
    println!();

    println!("══ Lemma 6.2: not even predictively strongly decidable against Aτ ══");
    let tight = lemma_6_2(&SecCountFamily::new(), &sec_count(), 6, 6);
    println!(
        "  the member extension is a tight execution (x~(E) = x(E)): {}",
        tight.tight
    );
    println!(
        "  so the replayed NO cannot be justified by the sketch ⇒ PSD refuted: {}",
        tight.refutes_predictive_strong_decidability()
    );
    println!();

    println!("══ Lemma 6.5: EC_LED is not even predictively weakly decidable ══");
    let alternation = lemma_6_5(&EcLedgerGuessFamily::new(), &ec_led(), 4, 3);
    println!(
        "  alternating stale/fresh ledger phases: {} NO bursts forced in {} alternations",
        alternation.no_bursts, alternation.alternations
    );
    println!(
        "  the final input is still a member of EC_LED: {} (and tight: {})",
        alternation.final_is_member, alternation.tight
    );
    println!(
        "  per-process NO totals so far: {:?} — iterating forever contradicts PWD",
        alternation.no_totals
    );
}
