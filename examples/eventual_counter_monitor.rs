//! Monitoring eventually-consistent counters: WEC vs SEC, two-valued vs
//! three-valued verdicts.
//!
//! The weakly-eventual counter (`WEC_COUNT`) has no real-time clause, so the
//! Figure 5 monitor decides it weakly against the plain adversary A.  The
//! strongly-eventual counter (`SEC_COUNT`) adds the real-time clause (4), is
//! therefore undecidable against A (Theorem 5.2), and needs the timed
//! adversary Aτ and the Figure 9 monitor, which decides it *predictively*
//! weakly.  This example runs both monitors on a replicated (correct) counter
//! and on an over-counting (incorrect) one, and also shows the Section 7
//! three-valued variant, whose NO verdicts are always conclusive.
//!
//! ```text
//! cargo run -p drv-core --example eventual_counter_monitor
//! ```

use drv_adversary::{Behavior, OverCounter, ReplicatedCounter};
use drv_consistency::languages::{sec_count, wec_count};
use drv_core::decidability::{Decider, Notion};
use drv_core::monitor::MonitorFamily;
use drv_core::monitors::three_valued::three_valued_holds;
use drv_core::monitors::{SecCountFamily, ThreeValuedSecFamily, WecCountFamily};
use drv_core::runtime::{run, RunConfig, Schedule};
use drv_core::transform::WadAllFamily;
use drv_lang::{Language, ObjectKind, SymbolSampler};
use std::sync::Arc;

fn config(n: usize, iterations: usize, timed: bool) -> RunConfig {
    let config = RunConfig::new(n, iterations)
        .with_schedule(Schedule::Random { seed: 99 })
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
        .stop_mutators_after(iterations / 2);
    if timed {
        config.timed()
    } else {
        config
    }
}

fn summarize(trace: &drv_core::ExecutionTrace, language: &dyn Language) {
    println!(
        "   member of {}: {}",
        language.name(),
        if trace.is_member(language) { "yes" } else { "NO" }
    );
    for p in 0..trace.process_count() {
        let stream = trace.verdicts(p);
        println!(
            "   p{}: {} YES / {} NO / {} MAYBE, final verdict {}",
            p + 1,
            stream.yes_count(),
            stream.no_count(),
            stream.maybe_count(),
            stream.reports().last().map_or("—".to_string(), |r| r.verdict.to_string())
        );
    }
}

fn main() {
    let n = 3;
    let iterations = 60;

    println!("════ WEC_COUNT with the Figure 3 ∘ Figure 5 monitor (plain adversary A) ════");
    let wec_monitor = WadAllFamily::new(WecCountFamily::new());
    let wec_decider = Decider::new(Arc::new(wec_count()));
    for behavior in [
        Box::new(ReplicatedCounter::new(3)) as Box<dyn Behavior>,
        Box::new(OverCounter::new(2)),
    ] {
        println!("── {}", behavior.name());
        let trace = run(&config(n, iterations, false), &wec_monitor, behavior);
        summarize(&trace, &wec_count());
        println!(
            "   WD evaluation: {}",
            wec_decider.evaluate(&trace, Notion::Weak).unwrap()
        );
        println!();
    }

    println!("════ SEC_COUNT with the Figure 3 ∘ Figure 9 monitor (timed adversary Aτ) ════");
    let sec_monitor = WadAllFamily::new(SecCountFamily::new());
    let sec_decider = Decider::new(Arc::new(sec_count()));
    for behavior in [
        Box::new(ReplicatedCounter::new(3)) as Box<dyn Behavior>,
        Box::new(OverCounter::new(2)),
    ] {
        println!("── {}", behavior.name());
        let trace = run(&config(n, iterations, true), &sec_monitor, behavior);
        summarize(&trace, &sec_count());
        println!(
            "   PWD evaluation: {}",
            sec_decider.evaluate(&trace, Notion::PredictiveWeak).unwrap()
        );
        println!();
    }

    println!("════ Section 7: the three-valued SEC monitor ════");
    let three_valued = ThreeValuedSecFamily::new();
    for behavior in [
        Box::new(ReplicatedCounter::new(3)) as Box<dyn Behavior>,
        Box::new(OverCounter::new(2)),
    ] {
        println!("── {} under {}", behavior.name(), three_valued.name());
        let trace = run(&config(n, iterations, true), &three_valued, behavior);
        summarize(&trace, &sec_count());
        println!(
            "   3-valued contract (members never NO, non-members never YES): {}",
            if three_valued_holds(&trace, &sec_count()) { "holds" } else { "violated" }
        );
        println!();
    }

    println!("The replicated counter lags but converges (member of both languages); the");
    println!("over-counting counter violates the real-time clause and every monitor that");
    println!("can see it — via the views of Aτ — keeps saying NO.");
}
