//! A monitoring *service*: thousands of objects, one always-on engine.
//!
//! The paper's monitors decide one distributed language for one object; a
//! production service multiplexes heavy traffic over many objects at once —
//! and it never reaches "end of run".  This example plays such a service
//! with the engine's long-running surface:
//!
//! * **Bounded ingestion** — `EngineConfig::with_max_pending` caps the
//!   submitted-but-unprocessed backlog; the producer's blocking `submit`
//!   rides the backpressure instead of ballooning memory.
//! * **Live verdict consumption** — a consumer thread drains a bounded
//!   [`VerdictSubscription`] and raises "pages" the moment an object's
//!   monitor says NO, long before the final report exists.
//! * **Eviction of quiesced objects** — every object is `evict`ed as soon
//!   as its stream completes, so per-object monitor state never grows with
//!   history length; the final report still carries every verdict.
//!
//! 2 000 register objects (even ids checked for linearizability, odd for
//! sequential consistency) emit interleaved invocation/response traffic, a
//! handful of them misbehave (stale reads), and a sharded
//! [`MonitoringEngine`] with a work-stealing worker pool checks everything
//! concurrently.
//!
//! ```text
//! cargo run --example engine_service --release
//! cargo run --example engine_service --release -- --batch 256
//! ```
//!
//! With `--batch N` the producer runs the batched production path: traffic
//! is interned into `EventBatch`es of `N` events and handed to
//! `submit_batch`, which scatters each batch across the shards in one
//! routing pass and wakes the pool once per batch.  Verdicts are identical
//! either way — batching only amortizes the submission overhead.
//!
//! [`MonitoringEngine`]: drv::engine::MonitoringEngine
//! [`VerdictSubscription`]: drv::engine::VerdictSubscription

use drv::core::{CheckerMonitorFactory, ObjectMonitorFactory, RoutingMonitorFactory, Verdict};
use drv::engine::{EngineConfig, MonitoringEngine};
use drv::lang::{EventBatch, Invocation, ObjectId, ProcId, Response, Symbol};
use drv::spec::Register;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Monitored objects.
const OBJECTS: u64 = 2_000;
/// Completed operations per object.
const OPS_PER_OBJECT: u64 = 6;
/// Client processes per object.
const PROCESSES: usize = 2;
/// Every 97th object serves a stale read (a `LIN_REG` violation; the odd
/// ones among them are still `SC_REG` members, which the aggregate shows).
const FAULT_STRIDE: u64 = 97;
/// Ingestion bound: at most this many submitted-but-unprocessed events.
const MAX_PENDING: usize = 4_096;
/// Verdict channel capacity.
const SUBSCRIPTION_CAPACITY: usize = 1_024;

/// Per-object monitor: LIN for even ids, SC for odd ids — one long-lived
/// incremental checker each, with the parallel Wing–Gong fallback armed.
fn mixed_factory() -> Arc<RoutingMonitorFactory> {
    let lin = Arc::new(
        CheckerMonitorFactory::linearizability(Register::new(), PROCESSES)
            .with_parallel_fallback(2),
    ) as Arc<dyn ObjectMonitorFactory>;
    let sc = Arc::new(
        CheckerMonitorFactory::sequential_consistency(Register::new(), PROCESSES)
            .with_parallel_fallback(2),
    ) as Arc<dyn ObjectMonitorFactory>;
    Arc::new(RoutingMonitorFactory::new("mixed LIN/SC", move |object: ObjectId| {
        if object.0.is_multiple_of(2) {
            Arc::clone(&lin)
        } else {
            Arc::clone(&sc)
        }
    }))
}

/// One round of an object's traffic: a write immediately acknowledged, then
/// a read.  Faulty objects return the *previous* value on the final read.
fn round(object: ObjectId, round: u64) -> Vec<Symbol> {
    let value = round + 1;
    let faulty = object.0.is_multiple_of(FAULT_STRIDE) && round + 1 == OPS_PER_OBJECT / 2;
    let read_value = if faulty { value - 1 } else { value };
    vec![
        Symbol::invoke(ProcId(0), Invocation::Write(value)),
        Symbol::respond(ProcId(0), Response::Ack),
        Symbol::invoke(ProcId(1), Invocation::Read),
        Symbol::respond(ProcId(1), Response::Value(read_value)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `--batch N`: ingest through `submit_batch` over N-event batches.
    let batch_size: Option<usize> = args
        .iter()
        .position(|arg| arg == "--batch")
        .map(|position| {
            args.get(position + 1)
                .and_then(|arg| arg.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256)
        });
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    match batch_size {
        Some(size) => println!(
            "engine service: {OBJECTS} objects on {workers} workers, batched ingestion ({size} events/batch)"
        ),
        None => println!("engine service: {OBJECTS} objects on {workers} workers"),
    }
    let start = std::time::Instant::now();
    let engine = Arc::new(MonitoringEngine::new(
        EngineConfig::new(workers).with_max_pending(MAX_PENDING),
        mixed_factory(),
    ));

    // The live consumer: pages on the first NO per object, counts the rest.
    // It sees verdicts while the producer is still submitting — no waiting
    // for the end-of-run report.
    let subscription = engine.subscribe(SUBSCRIPTION_CAPACITY);
    let consumer = std::thread::spawn(move || {
        let mut delivered = 0u64;
        let mut paged: BTreeSet<ObjectId> = BTreeSet::new();
        loop {
            let batch = subscription.wait_verdicts(Duration::from_millis(50));
            if batch.is_empty() && subscription.is_closed() {
                break;
            }
            for event in batch {
                delivered += 1;
                if event.verdict == Verdict::No && paged.insert(event.object) {
                    println!(
                        "  page: {} flagged NO at stream position {}",
                        event.object, event.seq
                    );
                }
            }
        }
        (delivered, paged.len(), subscription.missed())
    });

    // The service's firehose: round-robin over all objects, so consecutive
    // events almost never belong to the same object (the adversarial case
    // for the router).  Ingestion blocks at the MAX_PENDING bound — bounded
    // memory, not an unbounded queue.  In batch mode the symbols are
    // interned into reusable EventBatches and scattered shard-wise in one
    // routing pass per batch.
    let mut batch = EventBatch::with_capacity(batch_size.unwrap_or(0));
    for r in 0..OPS_PER_OBJECT / 2 {
        for object in 0..OBJECTS {
            let object = ObjectId(object);
            for symbol in round(object, r) {
                match batch_size {
                    Some(size) => {
                        batch.push_symbol(object, &symbol, engine.interner());
                        if batch.len() >= size {
                            engine.submit_batch(&batch);
                            batch.clear();
                        }
                    }
                    None => engine.submit(object, &symbol),
                }
            }
            if r == OPS_PER_OBJECT / 2 - 1 {
                // This object's stream is complete: retire its monitor now.
                // Its verdicts stay in the final report, its slot is freed —
                // per-object state does not grow with history length.  The
                // batch is flushed first so the eviction marker queues FIFO
                // behind the object's own buffered events.
                if !batch.is_empty() {
                    engine.submit_batch(&batch);
                    batch.clear();
                }
                engine.evict(object);
            }
        }
    }
    engine.submit_batch(&batch);

    let engine = Arc::into_inner(engine).expect("consumer holds no engine handle");
    // Quiesce before shutdown: once the backlog is drained every verdict
    // has been handed to the subscription, so none spill to `missed` when
    // finish() stops the workers.
    while engine.backlog() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = engine.finish().expect("no engine worker panicked");
    let (delivered, paged, missed) = consumer.join().expect("consumer finished");
    let elapsed = start.elapsed();
    let aggregate = report.aggregate();
    let stats = report.stats;

    println!(
        "ingested {} events in {:.1} ms ({:.0} events/s), backlog bounded at {MAX_PENDING}",
        stats.events,
        elapsed.as_secs_f64() * 1e3,
        stats.events as f64 / elapsed.as_secs_f64().max(1e-12),
    );
    println!(
        "pool: {} workers, {} shards, {} batches, {} steals, {} evicted, {} park wakeups",
        stats.workers, stats.shards, stats.batches, stats.steals, stats.evicted,
        stats.park_wakeups,
    );
    println!("subscription: {delivered} verdicts delivered live, {paged} objects paged, {missed} missed");
    println!("aggregate verdict: {aggregate}");

    // The stale read flips even (LIN-checked) fault objects to NO forever
    // (linearizability latches); odd fault objects recover — sequential
    // consistency tolerates a stale read once a later write legalizes it.
    let lin_faulty = ObjectId(2 * FAULT_STRIDE);
    let sc_faulty = ObjectId(FAULT_STRIDE);
    let lin_stream = report.verdicts(lin_faulty).expect("monitored");
    let sc_stream = report.verdicts(sc_faulty).expect("monitored");
    println!(
        "{lin_faulty} (LIN): final verdict {} — a stale read latches",
        lin_stream.last().expect("non-empty"),
    );
    println!(
        "{sc_faulty} (SC): dipped to NO {} time(s), final verdict {}",
        sc_stream.iter().filter(|v| v.is_no()).count(),
        sc_stream.last().expect("non-empty"),
    );
    assert_eq!(lin_stream.last(), Some(&Verdict::No));
    assert_eq!(sc_stream.last(), Some(&Verdict::Yes));
    assert_eq!(aggregate.overall, Verdict::No);
    assert_eq!(aggregate.yes + aggregate.no + aggregate.maybe, OBJECTS as usize);
    assert_eq!(missed, 0, "the service quiesced before shutdown");
    assert_eq!(delivered, stats.events, "every verdict was delivered live");
    assert_eq!(stats.evicted, OBJECTS, "every quiesced object was retired");
    println!("verdict streams: one per object, bit-identical to a sequential re-check");
}
