//! Walkthrough of the Figure 7 sketch construction.
//!
//! Reproduces the schematic execution of the paper's Figure 7: three
//! processes interact with the timed adversary Aτ, operations get views from
//! the announce-array snapshots, and the sketch x∼(E) is reconstructed from
//! the views alone — shrinking operations but never reordering them
//! (Theorem 6.1).
//!
//! ```text
//! cargo run -p drv-core --example sketch_walkthrough
//! ```

use drv_adversary::{
    input_word, locals_preserved, precedence_preserved, sketch_word, AtomicObject,
    TimedAdversary, TimedOp,
};
use drv_lang::{Invocation, ProcId, Word};
use drv_spec::Register;

fn main() {
    // Three processes against Aτ wrapping an atomic register.
    let mut adversary = TimedAdversary::new(3, AtomicObject::new(Register::new()));
    let mut ops: Vec<TimedOp> = Vec::new();
    let mut events = Vec::new();

    // Round 1: p1 and p2 write concurrently (both announce before either
    // snapshots), then p3 reads, then p1 reads again — the nesting of
    // Figure 7.
    let w1 = Invocation::Write(1);
    let w2 = Invocation::Write(2);
    // The x(E) invocation events (sends to Aτ) come first; the announces are
    // part of Aτ's own code and happen inside the operations' intervals.
    let k1 = drv_adversary::InvocationKey { proc: ProcId(0), seq: 0 };
    let k2 = drv_adversary::InvocationKey { proc: ProcId(1), seq: 0 };
    events.push((k1, true));
    events.push((k2, true));
    assert_eq!(adversary.announce(ProcId(0), &w1), k1);
    assert_eq!(adversary.announce(ProcId(1), &w2), k2);
    adversary.forward_invoke(ProcId(0), &w1);
    adversary.forward_invoke(ProcId(1), &w2);
    let r1 = adversary.forward_respond(ProcId(0));
    let r2 = adversary.forward_respond(ProcId(1));
    events.push((k1, false));
    events.push((k2, false));
    let v1 = adversary.snapshot_view(ProcId(0));
    let v2 = adversary.snapshot_view(ProcId(1));
    ops.push(TimedOp::complete(k1, w1, r1, v1));
    ops.push(TimedOp::complete(k2, w2, r2, v2));

    // p3's read and p1's second read are sequential (tight) exchanges.
    for proc in [ProcId(2), ProcId(0)] {
        let (key, timed) = adversary.tight_exchange(proc, &Invocation::Read);
        events.push((key, true));
        events.push((key, false));
        ops.push(TimedOp::complete(
            key,
            Invocation::Read,
            timed.response,
            timed.view,
        ));
    }

    println!("recorded operations (with their views):");
    for op in &ops {
        println!(
            "  {} {} -> {}   view = {}",
            op.key,
            op.invocation,
            op.response.as_ref().expect("completed"),
            op.view.as_ref().expect("completed"),
        );
    }

    let x_e: Word = input_word(&ops, &events);
    let sketch = sketch_word(&ops).expect("views from Aτ are always consistent");
    println!("\ninput word      x(E)  = {x_e}");
    println!("sketch          x~(E) = {sketch}");

    println!("\nTheorem 6.1 checks:");
    println!(
        "  (1) every real-time precedence of x(E) is preserved in x~(E): {}",
        precedence_preserved(&x_e, &sketch)
    );
    println!(
        "      local words are unchanged (same operations, same order):   {}",
        locals_preserved(&x_e, &sketch, 3)
    );
    println!(
        "  (2) x~(E) is itself a well-formed behaviour Aτ could exhibit:  {}",
        sketch.is_well_formed_prefix()
    );

    // Show the shrinking: the two writes were concurrent in x(E); in the
    // sketch they may become ordered, but the read that followed both still
    // follows both.
    let x_ops = x_e.operation_set();
    let s_ops = sketch.operation_set();
    let concurrent_in_x = x_ops
        .iter()
        .flat_map(|a| x_ops.iter().map(move |b| (a, b)))
        .filter(|(a, b)| a.id < b.id && a.concurrent_with(b))
        .count();
    let concurrent_in_sketch = s_ops
        .iter()
        .flat_map(|a| s_ops.iter().map(move |b| (a, b)))
        .filter(|(a, b)| a.id < b.id && a.concurrent_with(b))
        .count();
    println!(
        "\noperations concurrent in x(E): {concurrent_in_x}; in x~(E): {concurrent_in_sketch} (operations only ever shrink)"
    );
}
