//! A monitoring service over TCP: the `drv-net` loopback smoke.
//!
//! Binds a [`MonitorServer`] on 127.0.0.1 over a 2-worker service-mode
//! engine, connects several [`MonitorClient`]s, streams a few thousand
//! register events per connection in `EventBatch`es, receives every verdict
//! back over the wire, asks the server for a stats frame, and shuts
//! everything down cleanly.  Run with:
//!
//! ```text
//! cargo run --example net_service --release            # batch 16
//! cargo run --example net_service --release -- 256    # batch 256
//! ```

use drv::core::CheckerMonitorFactory;
use drv::engine::EngineConfig;
use drv::lang::{Invocation, ObjectId, ProcId, Response, Symbol};
use drv::net::{MonitorClient, MonitorServer, ServerConfig};
use drv::spec::Register;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CONNECTIONS: usize = 3;
const OBJECTS_PER_CONN: u64 = 8;
const OPS_PER_OBJECT: u64 = 100;

fn main() {
    let batch_size: usize = std::env::args()
        .nth(1)
        .map_or(16, |arg| arg.parse().expect("batch size is a number"));
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(2).with_max_pending(8192),
        Arc::new(CheckerMonitorFactory::linearizability(Register::new(), 2)),
        ServerConfig::new().with_window(2048),
    )
    .expect("bind a loopback port");
    let addr = server.local_addr();
    println!("serving on {addr} (window 2048 events, batch {batch_size})");

    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<(usize, u64)>> = (0..CONNECTIONS as u64)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut client = MonitorClient::connect(addr).expect("connect");
                // A clean per-object register history: write k, read k back.
                let mut events = Vec::new();
                for op in 0..OPS_PER_OBJECT {
                    for object in 0..OBJECTS_PER_CONN {
                        let id = ObjectId(conn * 1_000 + object);
                        let (invocation, response) = if op % 2 == 0 {
                            (Invocation::Write(op), Response::Ack)
                        } else {
                            (Invocation::Read, Response::Value(op - 1))
                        };
                        events.push((id, Symbol::invoke(ProcId(0), invocation)));
                        events.push((id, Symbol::respond(ProcId(0), response)));
                    }
                }
                client.send_stream(&events, batch_size).expect("stream events");
                let mut received = 0usize;
                let mut yes = 0u64;
                while received < events.len() {
                    let verdicts = client.wait_verdicts(Duration::from_secs(5));
                    assert!(
                        !verdicts.is_empty() || !client.is_closed(),
                        "connection died before all verdicts arrived"
                    );
                    received += verdicts.len();
                    yes += verdicts.iter().filter(|event| event.verdict.is_yes()).count() as u64;
                }
                // One connection also asks for the server's counters.
                if conn == 0 {
                    let stats = client.stats(Duration::from_secs(5)).expect("stats reply");
                    println!(
                        "stats frame: {} events checked, {} engine workers, {} connections, \
                         {} registry metrics over the wire",
                        stats.engine.events,
                        stats.engine.workers,
                        stats.engine.connections,
                        stats.telemetry.counters.len()
                            + stats.telemetry.gauges.len()
                            + stats.telemetry.histograms.len(),
                    );
                    let net_events = stats
                        .telemetry
                        .counter("net_events")
                        .expect("the live registry snapshot rides the same frame");
                    // This connection's own traffic is fully verdicted, so
                    // it is contained in both the net- and engine-side tallies.
                    let own = OBJECTS_PER_CONN * OPS_PER_OBJECT * 2;
                    assert!(net_events >= own && stats.engine.events >= own);
                }
                client.shutdown().expect("clean goodbye");
                (received, yes)
            })
        })
        .collect();
    let mut received = 0usize;
    let mut yes = 0u64;
    for handle in handles {
        let (r, y) = handle.join().expect("client thread");
        received += r;
        yes += y;
    }
    let elapsed = start.elapsed();

    let report = server.shutdown().expect("no engine worker panicked");
    let aggregate = report.aggregate();
    println!(
        "{received} verdicts over the wire in {:.2} ms ({:.0} events/s), {yes} YES live; \
         server report: {aggregate}",
        elapsed.as_secs_f64() * 1e3,
        received as f64 / elapsed.as_secs_f64().max(1e-12),
    );
    assert_eq!(received as u64, CONNECTIONS as u64 * OBJECTS_PER_CONN * OPS_PER_OBJECT * 2);
    assert_eq!(aggregate.yes, (CONNECTIONS as u64 * OBJECTS_PER_CONN) as usize);
    assert_eq!(aggregate.no, 0);
    println!("OK: every stream checked linearizable, end to end over TCP");
}
