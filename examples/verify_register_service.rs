//! Runtime-verify linearizability of a register service (Figure 8).
//!
//! The service is a black box: the monitor can only invoke operations and
//! observe responses.  Against the plain asynchronous adversary this is
//! hopeless (Lemma 5.1 / Theorem 5.2), so the monitor interacts with the
//! *timed* adversary Aτ — the service wrapped in the Figure 6 announce/view
//! code — and runs `V_O` (Figure 8), which is predictively strongly deciding:
//! every bad behaviour is flagged, and any false alarm comes with a
//! view-certified witness (the sketch) of a behaviour the service could have
//! exhibited.
//!
//! ```text
//! cargo run -p drv-core --example verify_register_service
//! ```

use drv_adversary::{AtomicObject, Behavior, StaleReadRegister};
use drv_consistency::languages::lin_reg;
use drv_core::decidability::{Decider, Notion};
use drv_core::monitors::PredictiveFamily;
use drv_core::runtime::{run, RunConfig, Schedule};
use drv_lang::{Language, ObjectKind, SymbolSampler};
use drv_spec::Register;
use std::sync::Arc;

fn main() {
    let n = 3;
    let iterations = 25;
    let config = RunConfig::new(n, iterations)
        .timed()
        .with_schedule(Schedule::Random { seed: 7 })
        .with_sampler(SymbolSampler::new(ObjectKind::Register).with_mutator_ratio(0.5));
    let monitor = PredictiveFamily::linearizable(Register::new());
    let decider = Decider::new(Arc::new(lin_reg(n)));

    let services: Vec<Box<dyn Behavior>> = vec![
        Box::new(AtomicObject::new(Register::new())),
        Box::new(StaleReadRegister::new(3, 2)),
    ];

    for service in services {
        let name = service.name();
        let trace = run(&config, &monitor, service);
        let member = trace.is_member(&lin_reg(n));
        println!("── register service: {name}");
        println!(
            "   produced history: {} operations, linearizable: {}",
            trace.word().operations().len(),
            if member { "yes" } else { "NO" }
        );

        // Detection latency: the earliest iteration at which some monitor
        // process reported NO.
        let first_no = (0..n)
            .filter_map(|p| {
                trace
                    .verdicts(p)
                    .first_no()
                    .map(|idx| (trace.verdicts(p).reports()[idx].iteration, p))
            })
            .min();
        match first_no {
            Some((iteration, p)) => println!(
                "   first NO reported by p{} in its iteration {iteration}",
                p + 1
            ),
            None => println!("   no process ever reported NO"),
        }

        // The sketch is the monitor's justification device.
        let sketch = trace
            .sketch()
            .expect("views recorded by Aτ are always consistent")
            .expect("timed runs always have a sketch");
        println!(
            "   sketch x~(E): {} symbols, linearizable: {}",
            sketch.len(),
            if lin_reg(n).accepts_prefix(&sketch) { "yes" } else { "NO" }
        );

        let evaluation = decider
            .evaluate(&trace, Notion::PredictiveStrong)
            .expect("views recorded by Aτ are always consistent");
        println!("   predictive strong decidability (Definition 6.1): {evaluation}");
        println!();
    }

    println!("The atomic register is never flagged (or only with a sketch that justifies");
    println!("the alarm); the stale-read register is always flagged — Theorem 6.2 at work.");
}
