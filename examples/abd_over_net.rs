//! The paper's message-passing scenario on the full network path: live ABD
//! register simulations streamed through `MonitorClient`s to a TCP
//! monitoring server, one monitored object per cluster.
//!
//! Each connection runs an independent ABD cluster (Attiya–Bar-Noy–Dolev
//! atomic register emulation over a seeded asynchronous network, one with a
//! crashed minority) and ships every invocation/response symbol the moment
//! the simulation produces it.  The server checks linearizability per
//! object and streams verdicts back.  Run with:
//!
//! ```text
//! cargo run --example abd_over_net --release
//! ```

use drv::abd::{NetConfig, Workload};
use drv::core::CheckerMonitorFactory;
use drv::engine::EngineConfig;
use drv::lang::ObjectId;
use drv::net::{stream_abd, MonitorClient, MonitorServer, ServerConfig};
use drv::spec::Register;
use std::sync::Arc;
use std::time::Duration;

/// Nodes per ABD cluster (each node is one monitor process).
const NODES: usize = 3;
/// Independent clusters, each one monitored object.
const CLUSTERS: u64 = 4;
/// Rounds of the mixed write-then-read workload per node.
const ROUNDS: usize = 4;

fn main() {
    let server = MonitorServer::bind(
        ("127.0.0.1", 0),
        EngineConfig::new(2).with_max_pending(4096),
        Arc::new(CheckerMonitorFactory::linearizability(Register::new(), NODES)),
        ServerConfig::new().with_window(512),
    )
    .expect("bind a loopback port");
    let addr = server.local_addr();
    println!("monitoring {CLUSTERS} ABD clusters ({NODES} nodes each) over {addr}");

    let handles: Vec<std::thread::JoinHandle<(u64, usize, usize)>> = (0..CLUSTERS)
        .map(|cluster| {
            std::thread::spawn(move || {
                let mut client = MonitorClient::connect(addr).expect("connect");
                let config = if cluster == 0 {
                    // One cluster loses a minority node mid-run: ABD
                    // tolerates it, and the history must stay linearizable.
                    NetConfig::new(NODES, 0xABD + cluster).crash(2, 60)
                } else {
                    NetConfig::new(NODES, 0xABD + cluster)
                };
                let object = ObjectId(cluster);
                let report = stream_abd(
                    &mut client,
                    object,
                    config,
                    &Workload::mixed(NODES, ROUNDS),
                    8,
                )
                .expect("bridge the simulation");
                let sent = report.invocations + report.responses;
                let mut verdicts = Vec::new();
                while verdicts.len() < sent {
                    let batch = client.wait_verdicts(Duration::from_secs(5));
                    assert!(
                        !batch.is_empty() || !client.is_closed(),
                        "connection died before all verdicts arrived"
                    );
                    verdicts.extend(batch);
                }
                let last = verdicts.last().expect("at least one symbol").verdict;
                println!(
                    "cluster {cluster}: {sent} symbols ({} incomplete ops), \
                     simulated {} ticks, final verdict {last}",
                    report.incomplete, report.duration
                );
                assert!(last.is_yes(), "an ABD history must linearize");
                client.shutdown().expect("clean goodbye");
                (cluster, sent, report.incomplete)
            })
        })
        .collect();
    let mut total_symbols = 0usize;
    for handle in handles {
        let (_, sent, _) = handle.join().expect("cluster thread");
        total_symbols += sent;
    }

    let report = server.shutdown().expect("no engine worker panicked");
    let aggregate = report.aggregate();
    println!("server report over {total_symbols} streamed symbols: {aggregate}");
    assert_eq!(aggregate.overall, drv::core::Verdict::Yes);
    assert_eq!(aggregate.yes, CLUSTERS as usize);
    println!("OK: the message-passing scenario exercised the full network path");
}
