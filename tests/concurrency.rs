//! Concurrency and fault-tolerance integration tests: wait-freedom of the
//! monitors and behaviour under real threads and under crash injection.

use drv_adversary::{AtomicObject, ReplicatedCounter};
use drv_core::monitors::{SecCountFamily, WecCountFamily};
use drv_core::runtime::{run, RunConfig, Schedule};
use drv_core::threaded::{run_threaded, ThreadedConfig};
use drv_lang::{ObjectKind, ProcId, SymbolSampler};
use drv_shmem::{CrashPlan, SchedulePolicy, SharedArray, StepSim};
use drv_spec::Counter;

/// Wait-freedom in the model: a monitor process keeps completing iterations
/// and reporting verdicts even when the scheduler starves every other
/// process.  (The phase script runs only p1 for its whole run; p2 and p3
/// never move.)
#[test]
fn monitors_are_wait_free_under_starvation() {
    let n = 3;
    let iterations = 20;
    // 4 plain-mode phases per iteration, all given to process 0.
    let script = vec![0usize; iterations * 4];
    let config = RunConfig::new(n, iterations)
        .with_schedule(Schedule::PhaseScript(script))
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.3));
    let trace = run(
        &config,
        &WecCountFamily::new(),
        Box::new(AtomicObject::new(Counter::new())),
    );
    // p1 completed all its iterations although nobody else took a single
    // step until p1's whole script was consumed: the first 2·iterations
    // symbols of x(E) all belong to p1.
    assert_eq!(trace.verdicts(0).len(), iterations);
    assert!(trace.word().symbols()[..iterations * 2]
        .iter()
        .all(|symbol| symbol.proc == ProcId(0)));
    assert!(trace.word().is_well_formed_prefix());
}

/// The same property under the timed adversary: the Figure 9 monitor needs
/// only its own announce/snapshot steps.
#[test]
fn timed_monitors_are_wait_free_under_starvation() {
    let n = 3;
    let iterations = 15;
    // 7 timed-mode phases per iteration.
    let script = vec![0usize; iterations * 7];
    let config = RunConfig::new(n, iterations)
        .timed()
        .with_schedule(Schedule::PhaseScript(script))
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.3));
    let trace = run(
        &config,
        &SecCountFamily::new(),
        Box::new(AtomicObject::new(Counter::new())),
    );
    assert_eq!(trace.verdicts(0).len(), iterations);
    assert!(trace.word().symbols()[..iterations * 2]
        .iter()
        .all(|symbol| symbol.proc == ProcId(0)));
}

/// Real threads, many processes: the monitors stay sound and the evaluation
/// still holds (the OS scheduler plays the adversary).
#[test]
fn threaded_runs_scale_to_more_processes() {
    let config = ThreadedConfig::new(6, 25)
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
        .stop_mutators_after(12);
    let trace = run_threaded(
        &config,
        &WecCountFamily::new(),
        Box::new(ReplicatedCounter::new(3)),
    );
    assert_eq!(trace.process_count(), 6);
    assert_eq!(trace.min_iterations(), 25);
    assert!(trace.word().is_well_formed_prefix());
    // The safety clauses of WEC_COUNT are schedule-independent for a correct
    // replicated counter; the eventual clause is evaluated on deterministic
    // runs, where per-process progress cannot be skewed by the OS scheduler.
    assert!(drv_consistency::check_wec_safety(trace.word()).is_ok());
}

/// Threaded timed runs keep the sketch machinery consistent under real
/// concurrency.
#[test]
fn threaded_timed_runs_have_consistent_sketches() {
    let config = ThreadedConfig::new(4, 20)
        .timed()
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
        .stop_mutators_after(10);
    let trace = run_threaded(
        &config,
        &SecCountFamily::new(),
        Box::new(AtomicObject::new(Counter::new())),
    );
    let sketch = trace.sketch().unwrap().expect("timed run");
    assert!(sketch.is_well_formed_prefix());
    assert!(drv_adversary::precedence_preserved(trace.word(), &sketch));
    // Schedule-independent clauses of SEC_COUNT hold on every interleaving of
    // a correct atomic counter.
    assert!(drv_consistency::check_wec_safety(trace.word()).is_ok());
    assert!(drv_consistency::check_sec_realtime(trace.word()).is_ok());
}

/// The shared-memory substrate under crash injection: the monitors' shared
/// arrays are ordinary wait-free objects, so a process that crashes mid-run
/// does not prevent the others from completing their iterations.
#[test]
fn shared_array_users_survive_crashes_of_other_processes() {
    let n = 4;
    let incs = SharedArray::new(n, 0u64);
    let plan = CrashPlan::none(n).crash(1, 3).crash(2, 6);
    let sim = StepSim::new(n)
        .with_policy(SchedulePolicy::Random { seed: 13 })
        .with_crash_plan(plan);
    let report = sim.run(|ctx| {
        let incs = incs.clone();
        move || {
            let mut last_sum = 0u64;
            for k in 1..=10u64 {
                ctx.exec(|| incs.write(ctx.pid(), k));
                let snapshot = ctx.exec(|| incs.snapshot());
                last_sum = snapshot.iter().sum();
            }
            last_sum
        }
    });
    // The two surviving processes finished all their work.
    assert!(report.results[0].is_some());
    assert!(report.results[3].is_some());
    assert!(report.results[0].unwrap() >= 10);
}

/// ProcId bookkeeping across crates stays coherent (0-based indices, 1-based
/// display).
#[test]
fn proc_id_conventions_are_consistent() {
    assert_eq!(ProcId(0).to_string(), "p1");
    assert_eq!(ProcId(0).index(), 0);
    let trace = run(
        &RunConfig::new(2, 1)
            .with_sampler(SymbolSampler::new(ObjectKind::Counter)),
        &WecCountFamily::new(),
        Box::new(AtomicObject::new(Counter::new())),
    );
    assert_eq!(trace.process_count(), 2);
}
