//! Cross-crate integration tests: the full pipeline from substrates to
//! decidability verdicts.

use drv_abd::{run_abd, NetConfig, Workload};
use drv_adversary::{AtomicObject, ReplicatedCounter, ScriptedBehavior, StaleReadRegister};
use drv_bench::{reproduce_table1, Table1Config};
use drv_consistency::languages::{lin_reg, sec_count, wec_count};
use drv_core::decidability::{Decider, Notion};
use drv_core::impossibility::{lemma_5_1, lemma_5_2};
use drv_core::monitors::{PredictiveFamily, SecCountFamily, WecCountFamily};
use drv_core::runtime::{run, RunConfig, Schedule};
use drv_core::transform::WadAllFamily;
use drv_lang::{Language, ObjectKind, SymbolSampler};
use drv_spec::{Counter, Register};
use std::sync::Arc;

/// The paper's headline port: the possibility results carry over to message
/// passing.  An ABD cluster produces a register history; the Figure 8 monitor
/// replays it (as the Claim 3.1 scripted execution against Aτ) and the
/// predictive-strong evaluation holds.
#[test]
fn abd_histories_flow_into_the_figure8_monitor() {
    let abd_run = run_abd(NetConfig::new(3, 21), &Workload::mixed(3, 2));
    assert_eq!(abd_run.incomplete, 0);
    let history = abd_run.history;
    assert!(lin_reg(3).accepts_prefix(&history));

    let config = RunConfig::new(3, history.len())
        .timed()
        .with_schedule(Schedule::WordScript(history.clone()));
    let monitor = PredictiveFamily::linearizable(Register::new());
    let trace = run(
        &config,
        &monitor,
        Box::new(ScriptedBehavior::from_word(&history, 3)),
    );
    assert_eq!(trace.word().symbols(), history.symbols());
    let decider = Decider::new(Arc::new(lin_reg(3)));
    let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
    assert!(evaluation.holds, "{evaluation}");
    // The sketch reconstructed from the replay's views can only shrink the
    // ABD operations, never reorder them (Theorem 6.1(1)).
    let sketch = trace.sketch().unwrap().unwrap();
    assert!(drv_adversary::precedence_preserved(&history, &sketch));
}

/// A crashed minority in the ABD cluster does not disturb the monitors: the
/// surviving clients' history is still linearizable and still accepted.
#[test]
fn abd_with_minority_crashes_still_passes_verification() {
    let net = NetConfig::new(5, 33).crash(4, 60);
    assert!(net.majority_correct());
    let abd_run = run_abd(net, &Workload::mixed(5, 2));
    assert!(abd_run.history.is_well_formed_prefix());
    assert!(lin_reg(5).accepts_prefix(&abd_run.history));
}

/// The deterministic and the threaded runtimes agree on language membership
/// for the same behaviour (the words differ, the conclusions do not).
#[test]
fn deterministic_and_threaded_runtimes_agree_on_membership() {
    let deterministic = run(
        &RunConfig::new(3, 40)
            .with_schedule(Schedule::Random { seed: 5 })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .stop_mutators_after(20),
        &WecCountFamily::new(),
        Box::new(ReplicatedCounter::new(2)),
    );
    let threaded = drv_core::threaded::run_threaded(
        &drv_core::threaded::ThreadedConfig::new(3, 40)
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .stop_mutators_after(20),
        &WecCountFamily::new(),
        Box::new(ReplicatedCounter::new(2)),
    );
    assert!(deterministic.is_member(&wec_count()));
    assert!(threaded.is_member(&wec_count()));
}

/// End-to-end possibility + impossibility: the same monitor family that
/// weakly decides WEC_COUNT is provably unable to strongly decide it.
#[test]
fn figure5_monitor_is_weak_but_not_strong() {
    let family = WadAllFamily::new(WecCountFamily::new());
    let config = RunConfig::new(3, 60)
        .with_schedule(Schedule::Random { seed: 11 })
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
        .stop_mutators_after(30);
    let trace = run(&config, &family, Box::new(AtomicObject::new(Counter::new())));
    let decider = Decider::new(Arc::new(wec_count()));
    assert!(decider.evaluate(&trace, Notion::Weak).unwrap().holds);

    let refutation = lemma_5_2(&family, &wec_count(), 6, 6);
    assert!(refutation.refutes_strong_decidability());
}

/// The Lemma 5.1 pair fools the register monitor family end to end, while the
/// timed variant of the same service is verifiable — the before/after of
/// Section 6.
#[test]
fn timed_views_break_the_lemma51_indistinguishability() {
    // Against A: fooled.
    let pair = lemma_5_1(&WecCountFamily::new(), 5);
    assert!(pair.refutes_decidability(&lin_reg(2)));

    // Against Aτ: the stale service is detected.
    let config = RunConfig::new(2, 30)
        .timed()
        .with_schedule(Schedule::Random { seed: 3 })
        .with_sampler(SymbolSampler::new(ObjectKind::Register).with_mutator_ratio(0.5));
    let trace = run(
        &config,
        &PredictiveFamily::linearizable(Register::new()),
        Box::new(StaleReadRegister::new(3, 2)),
    );
    assert!(!trace.is_member(&lin_reg(2)));
    assert!(trace.no_counts().iter().any(|&c| c > 0));
}

/// The SEC_COUNT monitor stack: Figure 9 wrapped by Figure 3, against Aτ,
/// satisfies PWD on correct and incorrect services alike.
#[test]
fn sec_count_pipeline_satisfies_pwd() {
    let family = WadAllFamily::new(SecCountFamily::new());
    let decider = Decider::new(Arc::new(sec_count()));
    for (seed, behavior) in [
        (1u64, Box::new(AtomicObject::new(Counter::new())) as Box<dyn drv_adversary::Behavior>),
        (2u64, Box::new(drv_adversary::OverCounter::new(1))),
    ] {
        let config = RunConfig::new(3, 50)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .stop_mutators_after(25);
        let trace = run(&config, &family, behavior);
        let evaluation = decider.evaluate(&trace, Notion::PredictiveWeak).unwrap();
        assert!(evaluation.holds, "{evaluation}");
    }
}

/// The quick Table 1 reproduction matches the paper (the full configuration
/// is exercised by the `table1` binary and the benches).
#[test]
fn quick_table1_reproduction_matches_the_paper() {
    let report = reproduce_table1(&Table1Config::quick());
    assert!(
        report.matches_paper(),
        "mismatches: {:?}",
        report
            .mismatches()
            .iter()
            .map(|c| format!("{} {}", c.language, c.notion))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.cells.len(), 28);
}

/// Language combinators from drv-lang compose with the languages of Table 1:
/// the complement of WEC_COUNT classifies runs in the opposite way.
#[test]
fn language_combinators_compose_with_table1_languages() {
    let config = RunConfig::new(2, 40)
        .with_schedule(Schedule::Random { seed: 9 })
        .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
        .stop_mutators_after(20);
    let trace = run(
        &config,
        &WecCountFamily::new(),
        Box::new(AtomicObject::new(Counter::new())),
    );
    let wec = wec_count();
    let complement = drv_lang::Complement::new(wec_count());
    assert!(trace.is_member(&wec));
    assert!(!trace.is_member(&complement));
    assert_ne!(wec.name(), complement.name());
}
