//! Property-based integration tests: invariants that must hold for every
//! seed, schedule and system size.

use drv_abd::{run_abd, NetConfig, Workload};
use drv_adversary::{precedence_preserved, AtomicObject, ReplicatedCounter};
use drv_consistency::languages::{lin_reg, sec_count, wec_count};
use drv_core::decidability::{Decider, Notion};
use drv_core::monitors::{PredictiveFamily, SecCountFamily, WecCountFamily};
use drv_core::runtime::{run, RunConfig, Schedule};
use drv_lang::{Language, ObjectKind, SymbolSampler};
use drv_spec::{Counter, Register};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every run of the deterministic runtime yields a well-formed prefix of
    /// an ω-word, whatever the schedule seed, system size or object.
    #[test]
    fn runtime_words_are_always_well_formed(
        seed in 0u64..10_000,
        n in 2usize..6,
        iterations in 1usize..30,
        mutators in 0.0f64..1.0,
    ) {
        let config = RunConfig::new(n, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(mutators))
            .with_sampler_seed(seed ^ 0xABCD);
        let trace = run(
            &config,
            &WecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        prop_assert!(trace.word().is_well_formed_prefix());
        prop_assert_eq!(trace.word().len(), n * iterations * 2);
        prop_assert_eq!(trace.min_iterations(), iterations);
    }

    /// Theorem 6.1(1) as a property: on every timed run, the sketch preserves
    /// all real-time precedences of the input word.
    #[test]
    fn sketches_always_preserve_precedence(
        seed in 0u64..10_000,
        n in 2usize..5,
        iterations in 1usize..20,
    ) {
        let config = RunConfig::new(n, iterations)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.5))
            .with_sampler_seed(seed);
        let trace = run(
            &config,
            &SecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        let sketch = trace.sketch().unwrap().expect("timed run");
        prop_assert!(sketch.is_well_formed_prefix());
        prop_assert!(precedence_preserved(trace.word(), &sketch));
    }

    /// Soundness of the counter monitors on correct services: runs against an
    /// atomic or replicated counter always satisfy the corresponding
    /// decidability notion.
    #[test]
    fn counter_monitors_are_sound_on_correct_services(
        seed in 0u64..10_000,
        replicated in proptest::bool::ANY,
        delay in 1u64..5,
    ) {
        let iterations = 50;
        let config = RunConfig::new(3, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed)
            .stop_mutators_after(iterations / 2);
        let behavior: Box<dyn drv_adversary::Behavior> = if replicated {
            Box::new(ReplicatedCounter::new(delay))
        } else {
            Box::new(AtomicObject::new(Counter::new()))
        };
        let trace = run(&config, &WecCountFamily::new(), behavior);
        prop_assert!(trace.is_member(&wec_count()));
        let decider = Decider::new(Arc::new(wec_count()));
        let evaluation = decider.evaluate(&trace, Notion::WeakAll).unwrap();
        prop_assert!(evaluation.holds, "{}", evaluation);
    }

    /// Soundness of the Figure 9 monitor on correct services, against Aτ.
    #[test]
    fn sec_monitor_is_sound_on_correct_services(seed in 0u64..10_000) {
        let iterations = 40;
        let config = RunConfig::new(2, iterations)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed)
            .stop_mutators_after(iterations / 2);
        let trace = run(
            &config,
            &SecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        prop_assert!(trace.is_member(&sec_count()));
        let decider = Decider::new(Arc::new(sec_count()));
        prop_assert!(decider.evaluate(&trace, Notion::PredictiveWeak).unwrap().holds);
    }

    /// The Figure 8 monitor never mis-flags an atomic register without
    /// justification, for any schedule seed.
    #[test]
    fn figure8_monitor_is_psd_sound_on_atomic_registers(seed in 0u64..10_000) {
        let config = RunConfig::new(2, 15)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Register).with_mutator_ratio(0.5))
            .with_sampler_seed(seed);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Register::new()),
            Box::new(AtomicObject::new(Register::new())),
        );
        prop_assert!(trace.is_member(&lin_reg(2)));
        let decider = Decider::new(Arc::new(lin_reg(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        prop_assert!(evaluation.holds, "{}", evaluation);
    }

    /// The ABD emulation produces linearizable histories for every seed and
    /// cluster size — the invariant the message-passing port rests on.
    #[test]
    fn abd_emulation_is_always_linearizable(seed in 0u64..10_000, n in 3usize..6) {
        let abd_run = run_abd(NetConfig::new(n, seed), &Workload::mixed(n, 2));
        prop_assert!(abd_run.history.is_well_formed_prefix());
        prop_assert!(lin_reg(n).accepts_prefix(&abd_run.history));
    }
}
