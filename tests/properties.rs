//! Property-based integration tests: invariants that must hold for every
//! seed, schedule and system size.
//!
//! Deterministic replacement for the earlier proptest suite: each property is
//! exercised over a fixed number of cases whose parameters are derived from a
//! seeded [`StdRng`], so failures reproduce exactly (re-run the test; the
//! offending case index and parameters are printed in the panic message).

use drv_abd::{run_abd, NetConfig, Workload};
use drv_adversary::{precedence_preserved, AtomicObject, ReplicatedCounter};
use drv_consistency::languages::{lin_reg, sec_count, wec_count};
use drv_core::decidability::{Decider, Notion};
use drv_core::monitors::{PredictiveFamily, SecCountFamily, WecCountFamily};
use drv_core::runtime::{run, RunConfig, Schedule};
use drv_lang::{Language, ObjectKind, SymbolSampler};
use drv_spec::{Counter, Register};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: usize = 24;

/// Every run of the deterministic runtime yields a well-formed prefix of an
/// ω-word, whatever the schedule seed, system size or object.
#[test]
fn runtime_words_are_always_well_formed() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let seed = rng.gen_range(0..10_000u64);
        let n = rng.gen_range(2..6usize);
        let iterations = rng.gen_range(1..30usize);
        let mutators = rng.gen_range(0..=100u64) as f64 / 100.0;
        let config = RunConfig::new(n, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(mutators))
            .with_sampler_seed(seed ^ 0xABCD);
        let trace = run(
            &config,
            &WecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        let ctx = format!("case {case}: seed={seed} n={n} iterations={iterations}");
        assert!(trace.word().is_well_formed_prefix(), "{ctx}");
        assert_eq!(trace.word().len(), n * iterations * 2, "{ctx}");
        assert_eq!(trace.min_iterations(), iterations, "{ctx}");
    }
}

/// Theorem 6.1(1) as a property: on every timed run, the sketch preserves all
/// real-time precedences of the input word.
#[test]
fn sketches_always_preserve_precedence() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let seed = rng.gen_range(0..10_000u64);
        let n = rng.gen_range(2..5usize);
        let iterations = rng.gen_range(1..20usize);
        let config = RunConfig::new(n, iterations)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.5))
            .with_sampler_seed(seed);
        let trace = run(
            &config,
            &SecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        let sketch = trace.sketch().unwrap().expect("timed run");
        let ctx = format!("case {case}: seed={seed} n={n} iterations={iterations}");
        assert!(sketch.is_well_formed_prefix(), "{ctx}");
        assert!(precedence_preserved(trace.word(), &sketch), "{ctx}");
    }
}

/// Soundness of the counter monitors on correct services: runs against an
/// atomic or replicated counter always satisfy the corresponding decidability
/// notion.
#[test]
fn counter_monitors_are_sound_on_correct_services() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..CASES {
        let seed = rng.gen_range(0..10_000u64);
        let replicated = rng.gen_bool(0.5);
        let delay = rng.gen_range(1..5u64);
        let iterations = 50;
        let config = RunConfig::new(3, iterations)
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed)
            .stop_mutators_after(iterations / 2);
        let behavior: Box<dyn drv_adversary::Behavior> = if replicated {
            Box::new(ReplicatedCounter::new(delay))
        } else {
            Box::new(AtomicObject::new(Counter::new()))
        };
        let trace = run(&config, &WecCountFamily::new(), behavior);
        let ctx = format!("case {case}: seed={seed} replicated={replicated} delay={delay}");
        assert!(trace.is_member(&wec_count()), "{ctx}");
        let decider = Decider::new(Arc::new(wec_count()));
        let evaluation = decider.evaluate(&trace, Notion::WeakAll).unwrap();
        assert!(evaluation.holds, "{ctx}: {evaluation}");
    }
}

/// Soundness of the Figure 9 monitor on correct services, against Aτ.
#[test]
fn sec_monitor_is_sound_on_correct_services() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for case in 0..CASES {
        let seed = rng.gen_range(0..10_000u64);
        let iterations = 40;
        let config = RunConfig::new(2, iterations)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Counter).with_mutator_ratio(0.4))
            .with_sampler_seed(seed)
            .stop_mutators_after(iterations / 2);
        let trace = run(
            &config,
            &SecCountFamily::new(),
            Box::new(AtomicObject::new(Counter::new())),
        );
        let ctx = format!("case {case}: seed={seed}");
        assert!(trace.is_member(&sec_count()), "{ctx}");
        let decider = Decider::new(Arc::new(sec_count()));
        assert!(
            decider.evaluate(&trace, Notion::PredictiveWeak).unwrap().holds,
            "{ctx}"
        );
    }
}

/// The Figure 8 monitor never mis-flags an atomic register without
/// justification, for any schedule seed.
#[test]
fn figure8_monitor_is_psd_sound_on_atomic_registers() {
    let mut rng = StdRng::seed_from_u64(0xF18);
    for case in 0..CASES {
        let seed = rng.gen_range(0..10_000u64);
        let config = RunConfig::new(2, 15)
            .timed()
            .with_schedule(Schedule::Random { seed })
            .with_sampler(SymbolSampler::new(ObjectKind::Register).with_mutator_ratio(0.5))
            .with_sampler_seed(seed);
        let trace = run(
            &config,
            &PredictiveFamily::linearizable(Register::new()),
            Box::new(AtomicObject::new(Register::new())),
        );
        let ctx = format!("case {case}: seed={seed}");
        assert!(trace.is_member(&lin_reg(2)), "{ctx}");
        let decider = Decider::new(Arc::new(lin_reg(2)));
        let evaluation = decider.evaluate(&trace, Notion::PredictiveStrong).unwrap();
        assert!(evaluation.holds, "{ctx}: {evaluation}");
    }
}

/// The ABD emulation produces linearizable histories for every seed and
/// cluster size — the invariant the message-passing port rests on.
#[test]
fn abd_emulation_is_always_linearizable() {
    let mut rng = StdRng::seed_from_u64(0xABD);
    for case in 0..CASES {
        let seed = rng.gen_range(0..10_000u64);
        let n = rng.gen_range(3..6usize);
        let abd_run = run_abd(NetConfig::new(n, seed), &Workload::mixed(n, 2));
        let ctx = format!("case {case}: seed={seed} n={n}");
        assert!(abd_run.history.is_well_formed_prefix(), "{ctx}");
        assert!(lin_reg(n).accepts_prefix(&abd_run.history), "{ctx}");
    }
}
